#!/bin/bash
set -u
cd /root/repo
for b in table1_datasets example2_noise_vs_gain fig5_overall table2_ablation fig6_threshold_m fig7_subgraph_n fig8_indicator fig9_gnn_models fig13_theta fig15_indicator_eps table3_time ablation_design; do
  echo "=== START $b $(date +%T) ==="
  cargo run --release --quiet -p privim-bench --bin $b -- --repeats 3 --json results/$b.json --telemetry-out results/$b.jsonl > results/$b.txt 2> results/$b.log
  echo "=== DONE $b $(date +%T) exit $? ==="
done
echo "=== START kernelbench $(date +%T) ==="
cargo run --release --quiet -p privim-bench --bin kernelbench -- --seed 42 --measure --repeats 5 --json results/kernelbench.json > results/kernelbench.txt 2> results/kernelbench.log
echo "=== DONE kernelbench $(date +%T) exit $? ==="
echo "=== START auditbench $(date +%T) ==="
cargo run --release --quiet -p privim-bench --bin auditbench -- --seed 42 --json results/auditbench.json > results/auditbench.txt 2> results/auditbench.log
echo "=== DONE auditbench $(date +%T) exit $? ==="
echo ALL_EXPERIMENTS_DONE
