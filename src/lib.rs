//! # PrivIM — differentially private GNNs for influence maximization
//!
//! Facade crate re-exporting the whole PrivIM workspace under one roof.
//! This is the crate the `examples/` binaries and cross-crate integration
//! tests build against; downstream users can depend on it directly or pull
//! in the individual `privim-*` crates.
//!
//! ## Crate map
//!
//! - [`graph`] — CSR graph engine, θ-projection, r-hop neighborhoods.
//! - [`nn`] — dense matrices, reverse-mode autograd, five GNN models.
//! - [`dp`] — RDP accountant (Theorem 3), mechanisms, σ calibration.
//! - [`im`] — IC/LT/SIS diffusion, CELF greedy, spread metrics.
//! - [`datasets`] — synthetic datasets calibrated to the paper's Table I.
//! - [`core`] — the PrivIM / PrivIM* pipelines, sampling schemes, loss,
//!   the parameter-selection indicator, and all baselines.
//! - [`obs`] — structured tracing, metrics, and run telemetry
//!   (spans, counters/gauges/histograms, event sinks, `RunTelemetry`).
//! - [`serve`] — threaded HTTP inference server answering seed-selection
//!   and spread-estimation queries from a released checkpoint.

pub use privim_core as core;
pub use privim_datasets as datasets;
pub use privim_dp as dp;
pub use privim_graph as graph;
pub use privim_im as im;
pub use privim_nn as nn;
pub use privim_obs as obs;
pub use privim_serve as serve;
