//! Viral marketing scenario: a company wants to seed a campaign among the
//! most influential users of a Gowalla-like location-based social network,
//! but the network data is personal — the analysis must carry a node-level
//! DP guarantee.
//!
//! The example sweeps the privacy budget and shows the privacy/utility
//! trade-off, including how many of the privately selected seeds coincide
//! with the non-private optimum, and how the campaign's projected reach
//! changes under multi-step diffusion.
//!
//! ```sh
//! cargo run --release --example viral_marketing
//! ```

use privim::core::config::PrivImConfig;
use privim::core::pipeline::{run_method, Method};
use privim::datasets::paper::Dataset;
use privim::im::greedy::celf_coverage;
use privim::im::models::DiffusionConfig;
use privim::im::spread::influence_spread;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let graph = Dataset::Gowalla.generate(0.003, 11); // ~590-node replica
    let k = 12;
    println!(
        "campaign network: {} users, {} follow edges, budget {k} seed users\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    let (celf_seeds, celf_spread) = celf_coverage(&graph, k);
    println!("oracle (no privacy, CELF): reach {celf_spread}");

    let config = |eps: Option<f64>| PrivImConfig {
        epsilon: eps,
        seed_size: k,
        subgraph_size: 20,
        hops: 2,
        hidden: 16,
        iterations: 60,
        batch_size: 32,
        learning_rate: 0.02,
        ..PrivImConfig::default()
    };

    println!("\n eps | reach | % of oracle | overlap with oracle seeds");
    println!(" ----+-------+-------------+---------------------------");
    for eps in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let r = run_method(&graph, Method::PrivImStar, &config(Some(eps)), 3);
        let overlap = r.seeds.iter().filter(|s| celf_seeds.contains(s)).count();
        println!(
            " {eps:<3} | {:>5.0} | {:>10.1}% | {overlap}/{k}",
            r.spread,
            100.0 * r.spread / celf_spread
        );
    }
    let free = run_method(&graph, Method::NonPrivate, &config(None), 3);
    let overlap = free.seeds.iter().filter(|s| celf_seeds.contains(s)).count();
    println!(
        " inf | {:>5.0} | {:>10.1}% | {overlap}/{k}",
        free.spread,
        100.0 * free.spread / celf_spread
    );

    // Project the private campaign beyond the one-step horizon: word of
    // mouth with 25% forwarding probability, simulated to quiescence.
    let viral = graph.with_uniform_weight(0.25);
    let mut rng = StdRng::seed_from_u64(99);
    let long_run = influence_spread(
        &viral,
        &free.seeds,
        &DiffusionConfig::ic_unbounded(),
        2_000,
        &mut rng,
    );
    println!(
        "\nprojected long-run reach of the selected seeds at 25% word-of-mouth: {long_run:.0} users"
    );
}
