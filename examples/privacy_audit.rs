//! Privacy audit: the Figure 1 story, measured.
//!
//! The paper motivates PrivIM with the observation that removing a single
//! node changes influence scores — and hence the selected seed set — which
//! an adversary could exploit. This example quantifies that leakage: it
//! trains twice on adjacent graphs (G and G minus one influential node)
//! and compares how much the output seed sets differ, with and without DP
//! noise. Under DP the outputs should be statistically indistinguishable;
//! without it they visibly diverge.
//!
//! ```sh
//! cargo run --release --example privacy_audit
//! ```

use privim::core::config::PrivImConfig;
use privim::core::pipeline::{run_method, Method};
use privim::datasets::paper::Dataset;
use privim::graph::{Graph, GraphBuilder, NodeId};

/// Removes `victim` and all its edges (the unbounded node-level adjacency
/// of Definition 2), keeping ids stable by leaving the node isolated.
fn remove_node(g: &Graph, victim: NodeId) -> Graph {
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges());
    for (u, v, w) in g.edges() {
        if u != victim && v != victim {
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

/// Jaccard similarity of two seed sets.
fn jaccard(a: &[NodeId], b: &[NodeId]) -> f64 {
    let sa: std::collections::HashSet<_> = a.iter().collect();
    let sb: std::collections::HashSet<_> = b.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

fn main() {
    let graph = Dataset::Bitcoin.generate(0.08, 5);
    // The victim: the node with the highest out-degree (most exposed).
    let victim = graph
        .nodes()
        .max_by_key(|&v| graph.out_degree(v))
        .expect("non-empty graph");
    let neighbor_graph = remove_node(&graph, victim);
    println!(
        "adjacent graphs: G has {} edges; G' (without node {victim}, out-degree {}) has {}\n",
        graph.num_edges(),
        graph.out_degree(victim),
        neighbor_graph.num_edges()
    );

    let config = |eps: Option<f64>| PrivImConfig {
        epsilon: eps,
        seed_size: 15,
        subgraph_size: 16,
        hops: 2,
        hidden: 16,
        iterations: 60,
        batch_size: 32,
        learning_rate: 0.02,
        ..PrivImConfig::default()
    };

    // The distinguisher: does the victim's removal change the output MORE
    // than the mechanism's own run-to-run randomness does? If yes, an
    // adversary can detect the victim. "within" re-runs on the same graph
    // G with a different RNG seed; "between" compares G against G'.
    println!("                 | Jaccard within G | Jaccard between G, G' | detectable?");
    println!(" ----------------+------------------+-----------------------+------------");
    for (label, eps) in [("non-private", None), ("PrivIM* eps=2", Some(2.0))] {
        let mut within = Vec::new();
        let mut between = Vec::new();
        for seed in 0..5u64 {
            let a = run_method(&graph, Method::PrivImStar, &config(eps), seed);
            let a2 = run_method(&graph, Method::PrivImStar, &config(eps), seed + 100);
            let b = run_method(&neighbor_graph, Method::PrivImStar, &config(eps), seed + 200);
            within.push(jaccard(&a.seeds, &a2.seeds));
            between.push(jaccard(&a.seeds, &b.seeds));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (w, b) = (mean(&within), mean(&between));
        let detectable = (w - b).abs() > 0.15;
        println!(
            " {label:<15} | {w:>16.3} | {b:>21.3} | {}",
            if detectable { "YES — gap leaks the victim" } else { "no — hidden in noise" }
        );
    }

    println!(
        "\nReading the audit: under DP, comparing outputs across adjacent graphs looks \
         no different from re-running on the same graph — the victim's presence is \
         hidden inside the mechanism's own randomness (and Theorem 3 bounds exactly \
         how hidden). Without noise calibrated to the node-level sensitivity, the \
         between-graph divergence can exceed the within-graph one, which is the \
         signal a membership adversary exploits."
    );
}
