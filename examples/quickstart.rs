//! Quickstart: train a differentially private GNN for influence
//! maximization and compare its seed set against the CELF ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use privim::core::config::PrivImConfig;
use privim::core::pipeline::{run_method, Method};
use privim::datasets::paper::Dataset;
use privim::im::greedy::celf_coverage;
use privim::im::metrics::coverage_ratio;

fn main() {
    // 1. A synthetic LastFM replica (Table I statistics at 10% scale).
    let graph = Dataset::LastFm.generate(0.1, 42);
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. Configure PrivIM*: the paper's defaults, ε = 3 and k = 20 seeds.
    let config = PrivImConfig {
        epsilon: Some(3.0),
        seed_size: 20,
        subgraph_size: 20,
        hops: 2,
        hidden: 16,
        iterations: 60,
        batch_size: 32,
        learning_rate: 0.02,
        ..PrivImConfig::default()
    };

    // 3. Ground truth: CELF lazy greedy with the (1 - 1/e) guarantee.
    let (celf_seeds, celf_spread) = celf_coverage(&graph, config.seed_size);
    println!("CELF spread: {celf_spread} (seeds: {:?}...)", &celf_seeds[..5]);

    // 4. Train PrivIM* under node-level (ε, δ)-DP and select seeds.
    let result = run_method(&graph, Method::PrivImStar, &config, 7);
    println!(
        "PrivIM* spread: {:.0} | coverage ratio: {:.1}% | sigma: {:.2} | container: {} subgraphs",
        result.spread,
        coverage_ratio(result.spread, celf_spread),
        result.sigma.expect("private run"),
        result.container_size,
    );
    println!(
        "phases: preprocessing {:.2}s, training {:.2}s ({:.3}s/epoch)",
        result.preprocessing_secs, result.training_secs, result.per_epoch_secs
    );

    // 5. The non-private reference shows the cost of privacy.
    let free = run_method(&graph, Method::NonPrivate, &config, 7);
    println!(
        "Non-private spread: {:.0} | coverage ratio: {:.1}%",
        free.spread,
        coverage_ratio(free.spread, celf_spread),
    );
}
