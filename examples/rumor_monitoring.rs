//! Rumor monitoring: place k private monitors to catch cascades early.
//!
//! The paper lists rumor blocking among IM's applications and names the
//! Linear Threshold and SIS diffusion models as extensions. This example
//! combines both: influence maximization run on the *transpose* graph
//! selects nodes that are reached by many sources — ideal monitor
//! positions — and the monitors are chosen under node-level DP so the
//! placement reveals no individual's connections. Detection quality is
//! then measured against rumors simulated with the SIS model.
//!
//! ```sh
//! cargo run --release --example rumor_monitoring
//! ```

use privim::core::config::PrivImConfig;
use privim::core::pipeline::{run_method, Method};
use privim::datasets::paper::Dataset;
use privim::graph::NodeId;
use privim::im::models::{DiffusionConfig, DiffusionModel};
use privim::im::monitoring::detection_rate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let graph = Dataset::Gowalla.generate(0.003, 13).with_uniform_weight(0.10);
    let k = 10;
    println!(
        "network: {} users, {} edges; placing {k} rumor monitors under node-level DP\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Private monitor selection: IM on the transpose graph.
    let reversed = graph.transpose();
    let config = PrivImConfig {
        epsilon: Some(3.0),
        seed_size: k,
        subgraph_size: 20,
        hops: 2,
        hidden: 16,
        iterations: 60,
        batch_size: 32,
        learning_rate: 0.02,
        ..PrivImConfig::default()
    };
    let private = run_method(&reversed, Method::PrivImStar, &config, 17);

    // Baselines: random placement and degree placement.
    let mut rng = StdRng::seed_from_u64(99);
    let random: Vec<NodeId> = privim::im::greedy::random_seeds(&graph, k, &mut rng);
    let degree = privim::im::greedy::degree_heuristic(&reversed, k);

    println!(" placement        | SIS rumor detection rate (2 steps, 4000 rumors)");
    println!(" -----------------+------------------------------------------------");
    let sis = DiffusionConfig { model: DiffusionModel::Sis { recovery: 0.2 }, max_steps: Some(2) };
    for (label, monitors) in [
        ("PrivIM* (eps=3)", private.seeds.clone()),
        ("in-degree top-k", degree),
        ("random", random),
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let rate = detection_rate(&graph, &monitors, &sis, 4_000, &mut rng);
        println!(" {label:<16} | {:.1}%", 100.0 * rate);
    }
    println!(
        "\nThe DP-trained monitors approach the degree heuristic's detection rate \
         while guaranteeing that no individual's follower list influenced the \
         placement beyond the (ε, δ) bound."
    );
}
