//! Parameter tuning with the Gamma-pdf indicator (Section IV-C).
//!
//! Grid-searching the subgraph size `n` and frequency threshold `M` by
//! actually training consumes privacy budget on every probe; the paper's
//! indicator predicts the utility trend analytically from the dataset size
//! alone. This example (1) prints the indicator's recommendation for each
//! dataset, (2) fits fresh indicator constants from pilot observations
//! (Appendix H least squares), and (3) spot-checks the recommendation
//! against a real training run.
//!
//! ```sh
//! cargo run --release --example parameter_tuning
//! ```

use privim::core::config::PrivImConfig;
use privim::core::indicator::Indicator;
use privim::core::pipeline::{run_method, Method};
use privim::datasets::paper::Dataset;
use privim::im::greedy::celf_coverage;

fn main() {
    let indicator = Indicator::default();
    let n_grid = [20usize, 40, 60, 80];
    let m_grid = [2usize, 4, 6, 8, 10];

    println!("indicator recommendations (paper constants, Eq. 10-12):\n");
    println!(" dataset   |V|      beta_n  beta_M  n*     M*    grid best (n, M)");
    println!(" ----------+--------+-------+-------+------+-----+----------------");
    for dataset in Dataset::SIX {
        let spec = dataset.spec();
        let v = spec.num_nodes;
        let (n_star, m_star) = indicator.continuous_optimum(v);
        let best = indicator.best(&n_grid, &m_grid, v);
        println!(
            " {:<9} {:<8} {:<7.2} {:<7.2} {:<6.1} {:<5.1} ({}, {})",
            spec.name,
            v,
            indicator.beta_n(v),
            indicator.beta_m(v),
            n_star,
            m_star,
            best.0,
            best.1
        );
    }

    // Re-fit the constants from pilot observations, as a practitioner with
    // a new dataset family would (Appendix H).
    let pilots: Vec<(usize, f64, f64)> = Dataset::SIX
        .iter()
        .map(|d| {
            let v = d.spec().num_nodes;
            let (n, m) = indicator.continuous_optimum(v);
            (v, n, m)
        })
        .collect();
    let fitted = Indicator::fit(&pilots, 25.0, 5.0);
    println!(
        "\nre-fitted constants from the six pilot points: k_n = {:.2}, b_n = {:.2}, \
         k_M = {:.2}, b_M = {:.2} (paper: 0.47, -1.03, 4.02, 1.22)",
        fitted.k_n, fitted.b_n, fitted.k_m, fitted.b_m
    );

    // Spot check: does the recommended (n, M) beat a deliberately bad one?
    let graph = Dataset::LastFm.generate(0.06, 21);
    let (recommended_n, recommended_m) = (20, 4); // scaled-down replica optimum
    let (_, celf) = celf_coverage(&graph, 12);
    let run = |n: usize, m: usize| {
        let cfg = PrivImConfig {
            epsilon: Some(3.0),
            seed_size: 12,
            subgraph_size: n,
            freq_threshold: m,
            hops: 2,
            hidden: 16,
            iterations: 60,
            batch_size: 32,
            learning_rate: 0.02,
            ..PrivImConfig::default()
        };
        let spreads: Vec<f64> =
            (0..3).map(|s| run_method(&graph, Method::PrivImStar, &cfg, s).spread).collect();
        spreads.iter().sum::<f64>() / 3.0
    };
    let good = run(recommended_n, recommended_m);
    let bad = run(80, 10);
    println!(
        "\nspot check on a LastFM replica (CELF = {celf}): recommended (n=20, M=4) \
         reaches {good:.0}; oversized (n=80, M=10) reaches {bad:.0}"
    );
}
