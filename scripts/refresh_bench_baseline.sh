#!/bin/bash
# Refreshes the committed kernel-benchmark baseline (BENCH_kernels.json).
#
# Run this on a quiet machine when a deliberate kernel change shifts the
# baseline (new instrumentation, a real optimization, a new kernel), then
# commit the result. The flags below are the contract: CI's perf-smoke
# job runs kernelbench with the same seed/repeats, so a baseline produced
# with different flags would diff against nothing comparable.
#
# Before overwriting, the script checks the two invariants the baseline
# is trusted for:
#   1. determinism — two default-mode runs must be byte-identical;
#   2. self-consistency — the fresh measured run must pass bench_diff
#      against itself with zero tolerance.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${SEED:-42}"
REPEATS="${REPEATS:-5}"
OUT="BENCH_kernels.json"

cargo build --release -q -p privim-bench --bin kernelbench --bin bench_diff
KB=target/release/kernelbench
DIFF=target/release/bench_diff

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== determinism check (two seeded runs must be byte-identical)"
"$KB" --seed "$SEED" --json "$tmp/a.json" > /dev/null
"$KB" --seed "$SEED" --json "$tmp/b.json" > /dev/null
cmp "$tmp/a.json" "$tmp/b.json"

echo "== measured baseline (seed $SEED, $REPEATS repeats)"
"$KB" --seed "$SEED" --measure --repeats "$REPEATS" --json "$tmp/new.json"

echo "== self-diff sanity (identical envelopes, zero tolerance)"
"$DIFF" "$tmp/new.json" "$tmp/new.json" \
  --runtime-tol 0.0 --quality-tol 0.0 --strict > /dev/null

if [ -f "$OUT" ]; then
  echo "== drift vs committed baseline (informational)"
  "$DIFF" "$OUT" "$tmp/new.json" --runtime-tol 10.0 || true
fi

cp "$tmp/new.json" "$OUT"
echo "wrote $OUT — review and commit it"
