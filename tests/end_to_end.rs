//! End-to-end integration tests spanning every crate: dataset generation →
//! sampling → DP training → inference → seed selection → evaluation.

use privim::core::config::PrivImConfig;
use privim::core::pipeline::{run_method, Method};
use privim::core::train::{NoiseKind, PrivacySetup};
use privim::datasets::paper::Dataset;
use privim::datasets::split::NodeSplit;
use privim::im::greedy::celf_coverage;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_config(epsilon: Option<f64>) -> PrivImConfig {
    PrivImConfig {
        epsilon,
        seed_size: 10,
        subgraph_size: 20,
        hops: 2,
        hidden: 16,
        feature_dim: 8,
        iterations: 60,
        batch_size: 32,
        learning_rate: 0.02,
        ..PrivImConfig::default()
    }
}

#[test]
fn nonprivate_pipeline_approaches_celf() {
    let g = Dataset::LastFm.generate(0.06, 3);
    let cfg = fast_config(None);
    let (_, celf) = celf_coverage(&g, cfg.seed_size);
    // Mean over three seeds to absorb training variance.
    let mean: f64 = (0..3)
        .map(|s| run_method(&g, Method::NonPrivate, &cfg, s).spread)
        .sum::<f64>()
        / 3.0;
    assert!(
        mean >= 0.8 * celf,
        "non-private PrivIM* should approach CELF: got {mean}, CELF {celf}"
    );
}

#[test]
fn private_pipeline_stays_within_budget_and_below_nonprivate_noise_floor() {
    let g = Dataset::LastFm.generate(0.06, 4);
    let cfg = fast_config(Some(2.0));
    let r = run_method(&g, Method::PrivImStar, &cfg, 1);
    // σ was calibrated: re-deriving the spent ε must respect the target.
    let setup = PrivacySetup::calibrate(
        2.0,
        cfg.effective_delta(g.num_nodes()),
        &cfg,
        r.container_size,
        cfg.freq_threshold,
        NoiseKind::Gaussian,
    );
    let (spent, _alpha) = setup.spent_epsilon(&cfg, r.container_size);
    assert!(spent <= 2.0 * 1.001, "spent {spent} over budget");
    assert_eq!(r.sigma, Some(setup.sigma));
    assert!(r.spread >= cfg.seed_size as f64);
}

#[test]
fn dual_stage_beats_naive_under_tight_budget_on_average() {
    // The paper's headline claim (Table II): at small ε the dual-stage
    // scheme's lower sensitivity dominates. Averaged over repeats to damp
    // DP-SGD variance; the gap at ε=1 is large (paper: 85.5 vs 32.2 on
    // HepPh), so even a noisy test discriminates.
    let g = Dataset::HepPh.generate(0.04, 5);
    let cfg = fast_config(Some(1.0));
    let (_, celf) = celf_coverage(&g, cfg.seed_size);
    let avg = |method: Method| -> f64 {
        (0..4).map(|s| run_method(&g, method, &cfg, s).spread).sum::<f64>() / 4.0
    };
    let star = avg(Method::PrivImStar);
    let naive = avg(Method::PrivIm);
    assert!(
        star >= naive * 0.8,
        "PrivIM* ({star:.0}) should not lose badly to naive PrivIM ({naive:.0}) at eps=1; \
         CELF = {celf}"
    );
}

#[test]
fn all_methods_work_on_directed_and_undirected_datasets() {
    for (dataset, scale) in [(Dataset::Email, 0.25), (Dataset::LastFm, 0.04)] {
        let g = dataset.generate(scale, 6);
        let cfg = fast_config(Some(4.0));
        for method in Method::ALL {
            let r = run_method(&g, method, &cfg, 2);
            assert_eq!(r.seeds.len(), cfg.seed_size, "{dataset} {method}");
            assert!(r.spread >= cfg.seed_size as f64, "{dataset} {method}");
            assert!(r.spread <= g.num_nodes() as f64, "{dataset} {method}");
        }
    }
}

#[test]
fn train_test_split_protocol_runs() {
    let g = Dataset::Bitcoin.generate(0.08, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let split = NodeSplit::random(&g, 0.5, &mut rng);
    let cfg = fast_config(Some(3.0));
    let r = privim::core::pipeline::run_method_with_candidates(
        &g,
        Method::PrivImStar,
        &cfg,
        &split.train,
        9,
    );
    assert!(r.container_size > 0);
    assert_eq!(r.seeds.len(), cfg.seed_size);
    // δ defaults to the split-derived value: 1/(|V_train|+1) < 1/|V_train|.
    assert!(cfg.effective_delta(split.num_train()) < 1.0 / split.num_train() as f64);
}

#[test]
fn friendster_partitioned_protocol_runs() {
    let parts = Dataset::Friendster.generate_partitions(250, 2, 10);
    let cfg = fast_config(Some(3.0));
    let mut total = 0.0;
    for (i, p) in parts.iter().enumerate() {
        let r = run_method(p, Method::PrivImStar, &cfg, 11 + i as u64);
        total += r.spread;
    }
    assert!(total >= 2.0 * cfg.seed_size as f64);
}

#[test]
fn pipeline_is_fully_deterministic() {
    let g = Dataset::Gowalla.generate(0.0015, 12);
    let cfg = fast_config(Some(2.0));
    let a = run_method(&g, Method::PrivImStar, &cfg, 33);
    let b = run_method(&g, Method::PrivImStar, &cfg, 33);
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.spread, b.spread);
    assert_eq!(a.sigma, b.sigma);
    assert_eq!(a.container_size, b.container_size);
}
