//! Integration test: a trained DP model survives checkpointing and keeps
//! producing the same seed set — the deployment path (train privately once,
//! publish the checkpoint, serve seed selection from it).

use privim::core::config::PrivImConfig;
use privim::core::sampling::extract_dual_stage;
use privim::core::train::train;
use privim::datasets::paper::Dataset;
use privim::graph::NodeId;
use privim::im::metrics::top_k_seeds;
use privim::nn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trained_model_round_trips_through_checkpoint() {
    let g = Dataset::LastFm.generate(0.05, 21);
    let cfg = PrivImConfig {
        subgraph_size: 16,
        hops: 2,
        hidden: 12,
        feature_dim: 8,
        batch_size: 16,
        iterations: 20,
        sampling_rate: Some(0.8),
        ..PrivImConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(5);
    let candidates: Vec<NodeId> = g.nodes().collect();
    let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
    let mut model = build_model(cfg.model, cfg.feature_dim, cfg.hidden, cfg.hops, &mut rng);
    train(model.as_mut(), &out.container, &cfg, None, &mut rng);

    let gt = GraphTensors::with_structural_features(&g, cfg.feature_dim);
    let scores = model.seed_probabilities(&gt);
    let seeds = top_k_seeds(&scores, 15);

    // Save → load → identical behavior.
    let snapshot = Checkpoint::capture(model.as_ref(), cfg.feature_dim, cfg.hidden, cfg.hops);
    let path = std::env::temp_dir().join("privim-pipeline-checkpoint.json");
    snapshot.save(&path).unwrap();
    let restored = Checkpoint::load(&path).unwrap().restore().unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(restored.kind(), model.kind());
    let restored_scores = restored.seed_probabilities(&gt);
    assert_eq!(scores, restored_scores);
    assert_eq!(top_k_seeds(&restored_scores, 15), seeds);
}
