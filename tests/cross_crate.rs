//! Integration tests of individual crate seams: graph ↔ nn tensors,
//! dp accounting ↔ training, loss ↔ diffusion simulation.

use std::rc::Rc;

use privim::core::config::PrivImConfig;
use privim::core::loss::im_loss_value;
use privim::core::sampling::{extract_dual_stage, extract_naive};
use privim::datasets::generators::holme_kim;
use privim::datasets::paper::Dataset;
use privim::dp::rdp::{naive_occurrence_bound, RdpAccountant, SubsampledConfig};
use privim::graph::{GraphBuilder, NodeId};
use privim::im::models::{DiffusionConfig, DiffusionModel};
use privim::im::spread::influence_spread;
use privim::nn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn loss_agrees_with_monte_carlo_diffusion() {
    // For binary x (actual seed sets), Eq. 5's coverage term equals
    // |V| − E[spread] under one-step IC exactly (the product form is the
    // true probability, not just a bound).
    let mut rng = StdRng::seed_from_u64(1);
    let g = holme_kim(60, 3, 0.3, 1.0, &mut rng).with_uniform_weight(0.4);
    let gt = GraphTensors::with_structural_features(&g, 4);

    let seeds: Vec<NodeId> = vec![3, 17, 42];
    let mut x = vec![0.0; g.num_nodes()];
    for &s in &seeds {
        x[s as usize] = 1.0;
    }
    let uninfluenced = im_loss_value(&gt, &x, 1, 0.0);

    let cfg = DiffusionConfig::ic_with_steps(1);
    let mc = influence_spread(&g, &seeds, &cfg, 200_000, &mut rng);
    let expected_spread = g.num_nodes() as f64 - uninfluenced;
    assert!(
        (mc - expected_spread).abs() < 0.25,
        "loss-implied spread {expected_spread:.2} vs Monte Carlo {mc:.2}"
    );
}

#[test]
fn sampling_containers_feed_models_of_every_kind() {
    let g = Dataset::Facebook.generate(0.015, 2);
    let cfg = PrivImConfig {
        subgraph_size: 12,
        hops: 2,
        feature_dim: 6,
        sampling_rate: Some(0.5),
        ..PrivImConfig::default()
    };
    let candidates: Vec<NodeId> = g.nodes().collect();
    let mut rng = StdRng::seed_from_u64(3);
    let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
    assert!(!out.container.is_empty());
    for kind in ModelKind::ALL {
        let model = build_model(kind, 6, 8, 2, &mut rng);
        for sample in out.container.samples().iter().take(3) {
            let probs = model.seed_probabilities(&sample.tensors);
            assert_eq!(probs.len(), sample.len(), "{kind}");
            assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)), "{kind}");
        }
    }
}

#[test]
fn naive_container_occurrences_respect_lemma1() {
    let g = Dataset::Bitcoin.generate(0.06, 4);
    let cfg = PrivImConfig {
        subgraph_size: 10,
        hops: 2,
        theta: 4,
        sampling_rate: Some(1.0),
        feature_dim: 4,
        ..PrivImConfig::default()
    };
    let candidates: Vec<NodeId> = g.nodes().collect();
    let mut rng = StdRng::seed_from_u64(5);
    let (container, _) = extract_naive(&g, &cfg, &candidates, &mut rng);
    let bound = naive_occurrence_bound(cfg.theta, cfg.hops);
    let observed = container.observed_max_occurrence(g.num_nodes());
    assert!(
        observed <= bound,
        "Lemma 1 violated: observed {observed} > N_g = {bound}"
    );
}

#[test]
fn accountant_matches_training_noise_interface() {
    // The ε reported by the accountant must be monotone in T and σ across
    // the exact configs the trainer produces.
    let sub = SubsampledConfig { max_occurrences: 4, batch_size: 16, container_size: 120 };
    let eps_at = |sigma: f64, steps: usize| {
        let mut acct = RdpAccountant::default();
        acct.compose_subsampled_gaussian(sigma, &sub, steps);
        acct.epsilon(1e-4).0
    };
    assert!(eps_at(1.0, 10) < eps_at(1.0, 100));
    assert!(eps_at(2.0, 50) < eps_at(1.0, 50));
    assert!(eps_at(0.5, 1) > 0.0);
}

#[test]
fn gnn_training_gradient_matches_finite_difference_through_full_stack() {
    // One GCN parameter entry, perturbed: the full pipeline loss (model
    // forward + Eq. 5) must match its autograd gradient.
    let mut rng = StdRng::seed_from_u64(6);
    let g = holme_kim(30, 3, 0.3, 1.0, &mut rng);
    let gt = GraphTensors::with_structural_features(&g, 4);
    let mut model = build_model(ModelKind::Gcn, 4, 6, 2, &mut rng);

    let loss_of = |model: &dyn GnnModel| -> f64 {
        let mut tape = Tape::new();
        let pv = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &gt, &pv);
        let loss = privim::core::loss::im_loss(&mut tape, &gt, out, 1, 0.5);
        tape.value(loss).as_scalar()
    };

    // Analytic gradient of parameter 0, entry 0.
    let analytic = {
        let mut tape = Tape::new();
        let pv = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &gt, &pv);
        let loss = privim::core::loss::im_loss(&mut tape, &gt, out, 1, 0.5);
        let grads = tape.backward(loss);
        grads.get(pv[0]).unwrap().data()[0]
    };

    let h = 1e-6;
    let base = model.params().get(0).value.data()[0];
    model.params_mut().iter_mut().next().unwrap().value.data_mut()[0] = base + h;
    let plus = loss_of(model.as_ref());
    model.params_mut().iter_mut().next().unwrap().value.data_mut()[0] = base - h;
    let minus = loss_of(model.as_ref());
    let numeric = (plus - minus) / (2.0 * h);
    assert!(
        (analytic - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
        "full-stack gradient mismatch: analytic {analytic}, numeric {numeric}"
    );
}

#[test]
fn graph_io_round_trips_generated_datasets() {
    let g = Dataset::LastFm.generate(0.03, 7);
    let bytes = privim::graph::io::encode_binary(&g);
    let back = privim::graph::io::decode_binary(&bytes).unwrap();
    assert_eq!(g, back);
}

#[test]
fn lt_and_sis_extensions_run_on_paper_datasets() {
    let g = Dataset::Email.generate(0.2, 8).with_uniform_weight(0.3);
    let mut rng = StdRng::seed_from_u64(9);
    let seeds: Vec<NodeId> = vec![0, 1, 2];
    for model in [
        DiffusionModel::LinearThreshold,
        DiffusionModel::Sis { recovery: 0.5 },
    ] {
        let cfg = DiffusionConfig { model, max_steps: Some(5) };
        let spread = influence_spread(&g, &seeds, &cfg, 500, &mut rng);
        assert!(spread >= 3.0 && spread <= g.num_nodes() as f64, "{model:?}: {spread}");
    }
}

#[test]
fn spmm_matches_dense_adjacency_multiply() {
    // Cross-check the sparse kernel against an explicit dense A·X.
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, 0.5);
    b.add_edge(2, 1, 0.25);
    b.add_edge(1, 3, 1.0);
    let g = b.build();
    let x = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
    let gt = GraphTensors::new(&g, x.clone());

    let mut tape = Tape::new();
    let xv = tape.leaf(x.clone());
    let out = tape.spmm_fixed(
        xv,
        Rc::clone(&gt.src),
        Rc::clone(&gt.dst),
        Rc::clone(&gt.edge_weight),
        4,
    );

    // Dense A (A[u][v] = w_vu) times X.
    let mut a = Matrix::zeros(4, 4);
    for (v, u, w) in g.edges() {
        a[(u as usize, v as usize)] = w;
    }
    let dense = a.matmul(&x);
    assert_eq!(tape.value(out).data(), dense.data());
}
