//! Integration tests for the graph analytics on generated datasets:
//! centrality measures must agree with each other and with ground truth on
//! structured graphs.

use privim_graph::algorithms::{betweenness_centrality, core_numbers, pagerank, weighted_cascade};
use privim_graph::ops::shuffle_labels;
use privim_graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn barbell(k: usize) -> Graph {
    // Two k-cliques joined by a single bridge path of two nodes.
    let n = 2 * k + 2;
    let mut b = GraphBuilder::new(n);
    for i in 0..k as NodeId {
        for j in (i + 1)..k as NodeId {
            b.add_undirected_edge(i, j, 1.0);
        }
    }
    let offset = (k + 2) as NodeId;
    for i in 0..k as NodeId {
        for j in (i + 1)..k as NodeId {
            b.add_undirected_edge(offset + i, offset + j, 1.0);
        }
    }
    // Bridge: clique1 node 0 — bridge1 — bridge2 — clique2 node offset.
    let bridge1 = k as NodeId;
    let bridge2 = (k + 1) as NodeId;
    b.add_undirected_edge(0, bridge1, 1.0);
    b.add_undirected_edge(bridge1, bridge2, 1.0);
    b.add_undirected_edge(bridge2, offset, 1.0);
    b.build()
}

#[test]
fn bridge_nodes_dominate_betweenness() {
    let k = 5;
    let g = barbell(k);
    let c = betweenness_centrality(&g);
    let bridge1 = k;
    let bridge2 = k + 1;
    for v in 0..g.num_nodes() {
        if v != bridge1 && v != bridge2 {
            assert!(
                c[bridge1] >= c[v] && c[bridge2] >= c[v],
                "bridge centrality {}/{} vs node {v}: {}",
                c[bridge1],
                c[bridge2],
                c[v]
            );
        }
    }
}

#[test]
fn clique_members_dominate_core_numbers() {
    let k = 6;
    let g = barbell(k);
    let core = core_numbers(&g);
    let bridge1 = k;
    // All clique members share the top core; bridges are lower.
    assert!(core[0] > core[bridge1]);
    for v in 1..k {
        assert_eq!(core[v], core[0]);
    }
}

#[test]
fn pagerank_is_permutation_equivariant() {
    let mut rng = StdRng::seed_from_u64(4);
    let g = privim_datasets::generators::holme_kim(120, 3, 0.4, 1.0, &mut rng);
    let pr = pagerank(&g, 0.85, 1e-12, 300);
    // Relabel and recompute: the multiset of scores must be preserved.
    let mut rng2 = StdRng::seed_from_u64(9);
    let shuffled = shuffle_labels(&g, &mut rng2);
    let pr2 = pagerank(&shuffled, 0.85, 1e-12, 300);
    let mut a: Vec<_> = pr.iter().map(|x| (x * 1e12) as i64).collect();
    let mut b: Vec<_> = pr2.iter().map(|x| (x * 1e12) as i64).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn pagerank_correlates_with_in_degree_on_scale_free_graphs() {
    let mut rng = StdRng::seed_from_u64(6);
    let g = privim_datasets::generators::barabasi_albert(300, 3, 1.0, &mut rng);
    let pr = pagerank(&g, 0.85, 1e-10, 300);
    let top_pr = (0..g.num_nodes())
        .max_by(|&a, &b| pr[a].total_cmp(&pr[b]))
        .unwrap();
    let top_deg = g.nodes().max_by_key(|&v| g.in_degree(v)).unwrap() as usize;
    // The PageRank argmax must be a high-degree node (top decile).
    let mut degs: Vec<usize> = g.nodes().map(|v| g.in_degree(v)).collect();
    degs.sort_unstable();
    let decile = degs[degs.len() * 9 / 10];
    assert!(
        g.in_degree(top_pr as NodeId) >= decile,
        "PageRank argmax {top_pr} has degree {} (decile {decile}, degree argmax {top_deg})",
        g.in_degree(top_pr as NodeId)
    );
}

#[test]
fn weighted_cascade_composes_with_transpose() {
    let mut rng = StdRng::seed_from_u64(8);
    let g = privim_datasets::generators::holme_kim(60, 3, 0.3, 1.0, &mut rng);
    let wc = weighted_cascade(&g);
    let t = wc.transpose();
    assert_eq!(t.num_edges(), wc.num_edges());
    // In-weights of wc become out-weights of the transpose.
    for u in wc.nodes().take(10) {
        let mut a: Vec<u64> = wc.in_weights(u).iter().map(|w| w.to_bits()).collect();
        let mut b: Vec<u64> = t.out_weights(u).iter().map(|w| w.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "node {u}");
    }
}
