//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use privim_graph::io::{decode_binary, encode_binary, read_edge_list, write_edge_list};
use privim_graph::ops::{
    bfs_distances, induced_subgraph, khop_neighborhood, theta_projection,
    weakly_connected_components,
};
use privim_graph::{Graph, GraphBuilder, NodeId};

/// Strategy: a random directed graph with 1..=40 nodes and 0..=120 edges.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..=40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.0f64..=1.0), 0..=120);
        edges.prop_map(move |es| {
            let mut b = GraphBuilder::new(n);
            for (s, d, w) in es {
                b.add_edge(s, d, w);
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn degree_sums_equal_edge_count(g in arb_graph()) {
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
    }

    #[test]
    fn in_and_out_adjacency_are_mirrors(g in arb_graph()) {
        // Every out-edge (v, u, w) must appear as an in-edge of u and
        // vice versa, with matching multiplicity.
        let mut out_edges: Vec<(NodeId, NodeId, u64)> = g
            .edges()
            .map(|(v, u, w)| (v, u, w.to_bits()))
            .collect();
        let mut in_edges: Vec<(NodeId, NodeId, u64)> = g
            .nodes()
            .flat_map(|u| {
                g.in_neighbors(u)
                    .iter()
                    .zip(g.in_weights(u))
                    .map(move |(&v, &w)| (v, u, w.to_bits()))
            })
            .collect();
        out_edges.sort_unstable();
        in_edges.sort_unstable();
        prop_assert_eq!(out_edges, in_edges);
    }

    #[test]
    fn binary_round_trip_is_identity(g in arb_graph()) {
        prop_assert_eq!(decode_binary(&encode_binary(&g)).unwrap(), g);
    }

    #[test]
    fn edge_list_round_trip_is_identity(g in arb_graph()) {
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..], g.num_nodes(), 1.0).unwrap();
        // Weights survive text formatting because Rust prints f64 with
        // round-trip precision.
        prop_assert_eq!(back, g);
    }

    #[test]
    fn theta_projection_never_exceeds_theta(g in arb_graph(), theta in 0usize..8, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = theta_projection(&g, theta, &mut rng);
        prop_assert_eq!(p.num_nodes(), g.num_nodes());
        for u in p.nodes() {
            prop_assert!(p.in_degree(u) <= theta.max(g.in_degree(u).min(theta)));
            prop_assert!(p.in_degree(u) <= g.in_degree(u));
            prop_assert!(p.in_degree(u) <= theta || g.in_degree(u) <= theta);
            prop_assert!(p.in_degree(u) == g.in_degree(u).min(theta));
        }
    }

    #[test]
    fn khop_is_monotone_in_r(g in arb_graph(), v0_raw in 0u32..40, r in 0usize..5) {
        let v0 = v0_raw % g.num_nodes() as u32;
        let small = khop_neighborhood(&g, v0, r);
        let big = khop_neighborhood(&g, v0, r + 1);
        prop_assert!(small.is_subset(&big));
        prop_assert!(small.contains(&v0));
    }

    #[test]
    fn khop_matches_bfs_distances(g in arb_graph(), v0_raw in 0u32..40, r in 0usize..5) {
        let v0 = v0_raw % g.num_nodes() as u32;
        let hop = khop_neighborhood(&g, v0, r);
        let dist = bfs_distances(&g, v0);
        for v in g.nodes() {
            let within = dist[v as usize] != usize::MAX && dist[v as usize] <= r;
            prop_assert_eq!(hop.contains(&v), within, "node {} r {}", v, r);
        }
    }

    #[test]
    fn induced_subgraph_edge_count_is_bounded(g in arb_graph(), pick in proptest::collection::vec(any::<bool>(), 40)) {
        let nodes: Vec<NodeId> = g
            .nodes()
            .filter(|&v| pick[v as usize % pick.len()])
            .collect();
        let sub = induced_subgraph(&g, &nodes);
        prop_assert_eq!(sub.num_nodes(), nodes.len());
        prop_assert!(sub.num_edges() <= g.num_edges());
    }

    #[test]
    fn wcc_labels_are_dense_and_consistent(g in arb_graph()) {
        let (labels, count) = weakly_connected_components(&g);
        prop_assert_eq!(labels.len(), g.num_nodes());
        let max = labels.iter().copied().max().unwrap_or(0);
        if g.num_nodes() > 0 {
            prop_assert_eq!(max as usize + 1, count);
        }
        // Endpoints of any edge share a label.
        for (v, u, _) in g.edges() {
            prop_assert_eq!(labels[v as usize], labels[u as usize]);
        }
    }
}
