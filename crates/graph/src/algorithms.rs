//! Classic graph algorithms used as IM heuristics and feature inputs:
//! PageRank, k-core decomposition, and the weighted-cascade reweighting.

use crate::csr::{Graph, NodeId};

/// Power-iteration PageRank with damping `d` (classically 0.85).
///
/// Dangling mass (nodes without out-edges) is redistributed uniformly, so
/// the scores always sum to 1. Iterates until the l1 change drops below
/// `tol` or `max_iters` is hit.
pub fn pagerank(g: &Graph, damping: f64, tol: f64, max_iters: usize) -> Vec<f64> {
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for v in g.nodes() {
            let out = g.out_degree(v);
            if out == 0 {
                dangling += rank[v as usize];
            } else {
                let share = rank[v as usize] / out as f64;
                for &u in g.out_neighbors(v) {
                    next[u as usize] += share;
                }
            }
        }
        let base = (1.0 - damping) * uniform + damping * dangling * uniform;
        let mut delta = 0.0;
        for (r, x) in rank.iter_mut().zip(&mut next) {
            let updated = base + damping * *x;
            delta += (updated - *r).abs();
            *r = updated;
        }
        if delta < tol {
            break;
        }
    }
    rank
}

/// Core number of every node: the largest `k` such that the node belongs
/// to a subgraph where every node has (total) degree ≥ `k`. Uses the
/// peeling algorithm over the undirected view (in-degree + out-degree).
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut degree: Vec<usize> = g
        .nodes()
        .map(|v| g.in_degree(v) + g.out_degree(v))
        .collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort by degree (standard O(V + E) peeling).
    let mut bins = vec![0usize; max_degree + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut order = vec![0 as NodeId; n];
    let mut position = vec![0usize; n];
    for v in g.nodes() {
        let d = degree[v as usize];
        position[v as usize] = bins[d];
        order[bins[d]] = v;
        bins[d] += 1;
    }
    // Restore bin starts.
    for d in (1..bins.len()).rev() {
        bins[d] = bins[d - 1];
    }
    bins[0] = 0;

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i];
        core[v as usize] = degree[v as usize] as u32;
        for &u in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
            if degree[u as usize] > degree[v as usize] {
                // Move u one bucket down: swap with the first node of its bin.
                let du = degree[u as usize];
                let pu = position[u as usize];
                let pw = bins[du];
                let w = order[pw];
                if u != w {
                    order.swap(pu, pw);
                    position[u as usize] = pw;
                    position[w as usize] = pu;
                }
                bins[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    core
}

/// Betweenness centrality via Brandes' algorithm (unweighted shortest
/// paths over out-edges). O(V·E); intended for analysis and as an IM
/// heuristic on the small-to-medium graphs this workspace evaluates.
pub fn betweenness_centrality(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut centrality = vec![0.0f64; n];
    let mut stack: Vec<NodeId> = Vec::with_capacity(n);
    let mut predecessors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut queue = std::collections::VecDeque::new();

    for s in g.nodes() {
        stack.clear();
        for p in &mut predecessors {
            p.clear();
        }
        sigma.iter_mut().for_each(|x| *x = 0.0);
        dist.iter_mut().for_each(|x| *x = -1);
        delta.iter_mut().for_each(|x| *x = 0.0);
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in g.out_neighbors(v) {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    predecessors[w as usize].push(v);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &v in &predecessors[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                centrality[w as usize] += delta[w as usize];
            }
        }
    }
    centrality
}

/// Returns a copy of `g` with weighted-cascade (WC) influence
/// probabilities: `w_vu = 1 / d_in(u)`, the standard alternative to the
/// uniform-probability IC setting (Kempe et al.).
pub fn weighted_cascade(g: &Graph) -> Graph {
    let mut b = crate::csr::GraphBuilder::with_capacity(g.num_nodes(), g.num_edges());
    for u in g.nodes() {
        let w = (g.in_degree(u) as f64).recip();
        for &v in g.in_neighbors(u) {
            b.add_edge(v, u, w);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i as NodeId, ((i + 1) % n) as NodeId, 1.0);
        }
        b.build()
    }

    #[test]
    fn pagerank_uniform_on_symmetric_cycle() {
        let g = cycle(8);
        let pr = pagerank(&g, 0.85, 1e-12, 200);
        for &r in &pr {
            assert!((r - 0.125).abs() < 1e-9, "cycle should be uniform: {r}");
        }
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pagerank_favors_in_hubs() {
        // All nodes point at 0.
        let mut b = GraphBuilder::new(5);
        for i in 1..5 {
            b.add_edge(i, 0, 1.0);
        }
        let g = b.build();
        let pr = pagerank(&g, 0.85, 1e-12, 200);
        for i in 1..5 {
            assert!(pr[0] > pr[i], "hub must outrank spokes");
        }
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pagerank_handles_dangling_nodes() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0); // node 1 and 2 dangling
        let g = b.build();
        let pr = pagerank(&g, 0.85, 1e-12, 500);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr.iter().all(|&r| r > 0.0));
        assert!(pr[1] > pr[2], "1 receives an extra edge");
    }

    #[test]
    fn core_numbers_on_clique_plus_tail() {
        // K4 (nodes 0-3) plus a path 3-4-5.
        let mut b = GraphBuilder::new(6);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_undirected_edge(i, j, 1.0);
            }
        }
        b.add_undirected_edge(3, 4, 1.0);
        b.add_undirected_edge(4, 5, 1.0);
        let g = b.build();
        let core = core_numbers(&g);
        // Undirected degree counts both directions: K4 members have
        // undirected-degree 3 → core 3·2 = 6 in the doubled-count view.
        assert_eq!(core[0], core[1]);
        assert_eq!(core[1], core[2]);
        assert!(core[0] > core[4], "clique core exceeds tail core");
        assert!(core[4] >= core[5]);
    }

    #[test]
    fn core_numbers_zero_for_isolated() {
        let g = Graph::empty(3);
        assert_eq!(core_numbers(&g), vec![0, 0, 0]);
    }

    #[test]
    fn betweenness_peaks_at_bridges() {
        // Path 0 - 1 - 2 - 3 - 4 (undirected): node 2 carries the most
        // shortest paths.
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_undirected_edge(i, i + 1, 1.0);
        }
        let g = b.build();
        let c = betweenness_centrality(&g);
        assert!(c[2] > c[1] && c[2] > c[3], "{c:?}");
        assert!(c[1] > c[0] && c[3] > c[4], "{c:?}");
        assert_eq!(c[0], 0.0);
        // Known values for an undirected path (both directions counted):
        // interior node 2 lies on paths {0,1}×{3,4} = 4 pairs × 2 dirs.
        assert!((c[2] - 8.0).abs() < 1e-9, "{c:?}");
    }

    #[test]
    fn betweenness_zero_on_complete_graph() {
        let mut b = GraphBuilder::new(4);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    b.add_edge(i, j, 1.0);
                }
            }
        }
        let g = b.build();
        let c = betweenness_centrality(&g);
        assert!(
            c.iter().all(|&x| x == 0.0),
            "no intermediaries in a clique: {c:?}"
        );
    }

    #[test]
    fn betweenness_splits_parallel_paths() {
        // 0 -> {1, 2} -> 3: the two middle nodes split the single 0→3 pair.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let c = betweenness_centrality(&g);
        assert!((c[1] - 0.5).abs() < 1e-9, "{c:?}");
        assert!((c[2] - 0.5).abs() < 1e-9, "{c:?}");
    }

    #[test]
    fn weighted_cascade_sets_inverse_in_degree() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let wc = weighted_cascade(&g);
        assert_eq!(wc.in_weights(2), &[0.5, 0.5]);
        assert_eq!(wc.num_edges(), 2);
        // Incoming probabilities of every node sum to 1.
        for u in wc.nodes() {
            if wc.in_degree(u) > 0 {
                let total: f64 = wc.in_weights(u).iter().sum();
                assert!((total - 1.0).abs() < 1e-12);
            }
        }
    }
}
