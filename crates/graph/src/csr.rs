//! Compressed-sparse-row graph storage.
//!
//! [`Graph`] stores a directed weighted graph in two mirrored CSR layouts:
//! one sorted by source (out-adjacency, used by diffusion simulation) and one
//! sorted by destination (in-adjacency, used by GNN message passing, which
//! aggregates over in-neighbors per Eq. 2 of the paper).

use crate::error::GraphError;

/// Node identifier. PrivIM graphs are bounded by `u32` (the paper's largest
/// dataset, Friendster, has 65.6M nodes), which halves index memory compared
/// to `usize` on 64-bit targets.
pub type NodeId = u32;

/// Incrementally accumulates edges, then freezes into a [`Graph`].
///
/// Duplicate edges are kept (parallel edges are legal but the PrivIM dataset
/// generators never emit them); self-loops are legal but ignored by the
/// diffusion simulator.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    srcs: Vec<NodeId>,
    dsts: Vec<NodeId>,
    weights: Vec<f64>,
}

impl GraphBuilder {
    /// Creates a builder for a graph over node ids `0..num_nodes`.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            srcs: Vec::new(),
            dsts: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Creates a builder with pre-reserved edge capacity.
    pub fn with_capacity(num_nodes: usize, num_edges: usize) -> Self {
        GraphBuilder {
            num_nodes,
            srcs: Vec::with_capacity(num_edges),
            dsts: Vec::with_capacity(num_edges),
            weights: Vec::with_capacity(num_edges),
        }
    }

    /// Number of nodes this builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.srcs.len()
    }

    /// Adds the directed edge `src -> dst` with influence probability
    /// `weight`. Panics if an endpoint is out of range (programmer error);
    /// use [`GraphBuilder::try_add_edge`] for validated input.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f64) {
        assert!(
            (src as usize) < self.num_nodes && (dst as usize) < self.num_nodes,
            "edge ({src}, {dst}) out of range for {} nodes",
            self.num_nodes
        );
        self.srcs.push(src);
        self.dsts.push(dst);
        self.weights.push(weight);
    }

    /// Adds both directions of an undirected edge with the same weight.
    pub fn add_undirected_edge(&mut self, a: NodeId, b: NodeId, weight: f64) {
        self.add_edge(a, b, weight);
        self.add_edge(b, a, weight);
    }

    /// Validated edge insertion for untrusted input (e.g. file parsing).
    pub fn try_add_edge(&mut self, src: u64, dst: u64, weight: f64) -> Result<(), GraphError> {
        if src >= self.num_nodes as u64 {
            return Err(GraphError::NodeOutOfRange {
                node: src,
                num_nodes: self.num_nodes,
            });
        }
        if dst >= self.num_nodes as u64 {
            return Err(GraphError::NodeOutOfRange {
                node: dst,
                num_nodes: self.num_nodes,
            });
        }
        if !(weight.is_finite() && (0.0..=1.0).contains(&weight)) {
            return Err(GraphError::InvalidWeight { weight });
        }
        self.add_edge(src as NodeId, dst as NodeId, weight);
        Ok(())
    }

    /// Freezes the accumulated edges into the immutable CSR [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.num_nodes;
        let m = self.srcs.len();

        // Counting sort by source for the out-CSR.
        let mut out_offsets = vec![0usize; n + 1];
        for &s in &self.srcs {
            out_offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = vec![0 as NodeId; m];
        let mut out_weights = vec![0f64; m];
        let mut cursor = out_offsets[..n].to_vec();
        for i in 0..m {
            let s = self.srcs[i] as usize;
            let at = cursor[s];
            out_targets[at] = self.dsts[i];
            out_weights[at] = self.weights[i];
            cursor[s] += 1;
        }

        // Counting sort by destination for the in-CSR.
        let mut in_offsets = vec![0usize; n + 1];
        for &d in &self.dsts {
            in_offsets[d as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![0 as NodeId; m];
        let mut in_weights = vec![0f64; m];
        let mut cursor = in_offsets[..n].to_vec();
        for i in 0..m {
            let d = self.dsts[i] as usize;
            let at = cursor[d];
            in_sources[at] = self.srcs[i];
            in_weights[at] = self.weights[i];
            cursor[d] += 1;
        }

        let mut g = Graph {
            num_nodes: n,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        };
        g.canonicalize();
        g
    }
}

/// Sorts each adjacency row of a CSR by `(neighbor, weight)`.
fn sort_rows(offsets: &[usize], ids: &mut [NodeId], weights: &mut [f64]) {
    let mut row: Vec<(NodeId, f64)> = Vec::new();
    for w in offsets.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi - lo < 2 {
            continue;
        }
        row.clear();
        row.extend(
            ids[lo..hi]
                .iter()
                .copied()
                .zip(weights[lo..hi].iter().copied()),
        );
        row.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for (i, &(id, weight)) in row.iter().enumerate() {
            ids[lo + i] = id;
            weights[lo + i] = weight;
        }
    }
}

/// An immutable directed weighted graph in dual-CSR form.
///
/// The edge `(v, u)` with weight `w_vu` means "v influences u with
/// probability `w_vu`" (Definition 6 in the paper). The out-CSR answers
/// "whom does v influence?"; the in-CSR answers "who influences u?", which
/// is the aggregation direction of GNN message passing (Eq. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    num_nodes: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    out_weights: Vec<f64>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
    in_weights: Vec<f64>,
}

impl Graph {
    /// Sorts every adjacency row by `(neighbor, weight)` so that equal edge
    /// multisets produce bit-identical graphs regardless of insertion order.
    fn canonicalize(&mut self) {
        sort_rows(
            &self.out_offsets,
            &mut self.out_targets,
            &mut self.out_weights,
        );
        sort_rows(&self.in_offsets, &mut self.in_sources, &mut self.in_weights);
    }

    /// An empty graph with `num_nodes` isolated nodes.
    pub fn empty(num_nodes: usize) -> Self {
        GraphBuilder::new(num_nodes).build()
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbors of `v` (the nodes `v` can influence).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.out_targets[self.out_offsets[v as usize]..self.out_offsets[v as usize + 1]]
    }

    /// Weights parallel to [`Graph::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, v: NodeId) -> &[f64] {
        &self.out_weights[self.out_offsets[v as usize]..self.out_offsets[v as usize + 1]]
    }

    /// In-neighbors of `u` (the nodes that can influence `u`).
    #[inline]
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.in_sources[self.in_offsets[u as usize]..self.in_offsets[u as usize + 1]]
    }

    /// Weights parallel to [`Graph::in_neighbors`] (`w_vu` for each in-neighbor `v`).
    #[inline]
    pub fn in_weights(&self, u: NodeId) -> &[f64] {
        &self.in_weights[self.in_offsets[u as usize]..self.in_offsets[u as usize + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_offsets[u as usize + 1] - self.in_offsets[u as usize]
    }

    /// Iterates all edges as `(src, dst, weight)` in source order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.num_nodes as NodeId).flat_map(move |v| {
            self.out_neighbors(v)
                .iter()
                .zip(self.out_weights(v))
                .map(move |(&u, &w)| (v, u, w))
        })
    }

    /// Iterates node ids `0..num_nodes`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes as NodeId
    }

    /// Maximum in-degree over all nodes (0 for the empty graph).
    pub fn max_in_degree(&self) -> usize {
        (0..self.num_nodes as NodeId)
            .map(|u| self.in_degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Maximum out-degree over all nodes (0 for the empty graph).
    pub fn max_out_degree(&self) -> usize {
        (0..self.num_nodes as NodeId)
            .map(|v| self.out_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Returns a copy of this graph with every edge weight replaced by `w`.
    ///
    /// The paper's evaluation fixes the influence probability `w_vu = 1`
    /// for all edges; this helper applies such a uniform reweighting.
    pub fn with_uniform_weight(&self, w: f64) -> Graph {
        let mut g = self.clone();
        g.out_weights.iter_mut().for_each(|x| *x = w);
        g.in_weights.iter_mut().for_each(|x| *x = w);
        g
    }

    /// The transpose graph: every edge `(u, v, w)` becomes `(v, u, w)`.
    ///
    /// Influence maximization on the transpose selects nodes *reachable
    /// from* many others — the monitor-placement dual used for rumor
    /// detection. O(1) in edge work: the dual-CSR layout just swaps roles.
    pub fn transpose(&self) -> Graph {
        Graph {
            num_nodes: self.num_nodes,
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            out_weights: self.in_weights.clone(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
            in_weights: self.out_weights.clone(),
        }
    }

    /// True if at least one edge `src -> dst` exists (binary search over
    /// the sorted adjacency row).
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.out_neighbors(src).binary_search(&dst).is_ok()
    }

    /// The weight of the edge `src -> dst`, if present (the first one, for
    /// parallel edges).
    pub fn edge_weight(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        let row = self.out_neighbors(src);
        let idx = row.binary_search(&dst).ok()?;
        // Step back over equal targets to the first parallel edge.
        let mut first = idx;
        while first > 0 && row[first - 1] == dst {
            first -= 1;
        }
        Some(self.out_weights(src)[first])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.1);
        b.add_edge(0, 2, 0.2);
        b.add_edge(1, 3, 0.3);
        b.add_edge(2, 3, 0.4);
        b.build()
    }

    #[test]
    fn csr_out_adjacency() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_weights(0), &[0.1, 0.2]);
        assert_eq!(g.out_neighbors(3), &[] as &[NodeId]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn csr_in_adjacency() {
        let g = diamond();
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_weights(3), &[0.3, 0.4]);
        assert_eq!(g.in_neighbors(0), &[] as &[NodeId]);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![(0, 1, 0.1), (0, 2, 0.2), (1, 3, 0.3), (2, 3, 0.4)]
        );
    }

    #[test]
    fn undirected_edges_appear_both_ways() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(0, 1, 0.5);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn try_add_edge_rejects_bad_input() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.try_add_edge(5, 0, 0.5),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
        assert!(matches!(
            b.try_add_edge(0, 9, 0.5),
            Err(GraphError::NodeOutOfRange { node: 9, .. })
        ));
        assert!(matches!(
            b.try_add_edge(0, 1, 1.5),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.try_add_edge(0, 1, f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(b.try_add_edge(0, 1, 0.5).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_panics_out_of_range() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 1, 0.5);
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(3);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_in_degree(), 0);
        assert_eq!(g.max_out_degree(), 0);
        for v in g.nodes() {
            assert!(g.out_neighbors(v).is_empty());
            assert!(g.in_neighbors(v).is_empty());
        }
    }

    #[test]
    fn uniform_weight_overrides_all() {
        let g = diamond().with_uniform_weight(1.0);
        for (_, _, w) in g.edges() {
            assert_eq!(w, 1.0);
        }
        assert_eq!(g.in_weights(3), &[1.0, 1.0]);
    }

    #[test]
    fn parallel_edges_are_preserved() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.1);
        b.add_edge(0, 1, 0.2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    fn transpose_swaps_adjacency() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.out_neighbors(1), &[0]);
        assert_eq!(t.out_neighbors(3), &[1, 2]);
        assert_eq!(t.in_neighbors(0), &[1, 2]);
        assert_eq!(t.out_weights(3), &[0.3, 0.4]);
        // Transpose is an involution.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn has_edge_and_weight_lookup() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(3, 0));
        assert_eq!(g.edge_weight(0, 2), Some(0.2));
        assert_eq!(g.edge_weight(2, 0), None);
    }

    #[test]
    fn edge_weight_returns_first_parallel() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.7);
        b.add_edge(0, 1, 0.2);
        let g = b.build();
        // Canonical row order sorts parallel edges by weight.
        assert_eq!(g.edge_weight(0, 1), Some(0.2));
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
