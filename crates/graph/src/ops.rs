//! Structural graph operations used by the PrivIM sampling schemes.
//!
//! This module implements the three operations Section III-B of the paper
//! relies on — θ-bounded projection, r-hop neighborhoods and induced
//! subgraphs — plus BFS and weakly connected components used for dataset
//! validation.

use privim_obs::ProfScope;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

use crate::collections::{fast_map_with_capacity, fast_set_with_capacity, FastHashSet};
use crate::csr::{Graph, GraphBuilder, NodeId};

/// Projects `g` into a θ-bounded graph `G^θ` by randomly removing in-edges
/// of nodes whose in-degree exceeds `theta` (Section III-B).
///
/// Each over-degree node keeps a uniformly random subset of exactly `theta`
/// of its in-edges; all other edges are preserved. The node set is
/// unchanged.
pub fn theta_projection<R: Rng + ?Sized>(g: &Graph, theta: usize, rng: &mut R) -> Graph {
    let _prof = ProfScope::enter("graph.theta_projection");
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges());
    let mut keep: Vec<usize> = Vec::new();
    for u in g.nodes() {
        let srcs = g.in_neighbors(u);
        let ws = g.in_weights(u);
        if srcs.len() <= theta {
            for (&v, &w) in srcs.iter().zip(ws) {
                b.add_edge(v, u, w);
            }
        } else {
            keep.clear();
            keep.extend(0..srcs.len());
            keep.shuffle(rng);
            keep.truncate(theta);
            for &i in &keep {
                b.add_edge(srcs[i], u, ws[i]);
            }
        }
    }
    let out = b.build();
    privim_obs::counter("graph.projection.calls").add(1);
    privim_obs::counter("graph.projection.edges_kept").add(out.num_edges() as u64);
    privim_obs::counter("graph.projection.edges_dropped")
        .add((g.num_edges() - out.num_edges()) as u64);
    out
}

/// Collects all nodes within `r` hops of `v0` following *out*-edges
/// (the random walk in Algorithms 1 and 3 is constrained to `N_r(v0)`).
///
/// `v0` itself is included (hop 0). Returns the set of reachable nodes.
pub fn khop_neighborhood(g: &Graph, v0: NodeId, r: usize) -> FastHashSet<NodeId> {
    let _prof = ProfScope::enter("graph.khop");
    let mut seen = fast_set_with_capacity(64);
    seen.insert(v0);
    let mut frontier = vec![v0];
    let mut next = Vec::new();
    for _ in 0..r {
        next.clear();
        for &v in &frontier {
            for &u in g.out_neighbors(v) {
                if seen.insert(u) {
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    privim_obs::counter("graph.khop.calls").add(1);
    privim_obs::counter("graph.khop.nodes_visited").add(seen.len() as u64);
    seen
}

/// Extracts the subgraph of `g` induced by `nodes`, relabeling nodes to
/// `0..nodes.len()` in the given order.
///
/// Returns the subgraph; position `i` of `nodes` is the original id of
/// subgraph node `i`. Edges with both endpoints in `nodes` are kept with
/// their weights. Duplicate entries in `nodes` are a programmer error and
/// panic in debug builds.
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Graph {
    let _prof = ProfScope::enter("graph.induced_subgraph");
    let mut index = fast_map_with_capacity(nodes.len());
    for (i, &v) in nodes.iter().enumerate() {
        let prev = index.insert(v, i as NodeId);
        debug_assert!(prev.is_none(), "duplicate node {v} in induced_subgraph");
    }
    let mut b = GraphBuilder::new(nodes.len());
    for (i, &v) in nodes.iter().enumerate() {
        for (&u, &w) in g.out_neighbors(v).iter().zip(g.out_weights(v)) {
            if let Some(&j) = index.get(&u) {
                b.add_edge(i as NodeId, j, w);
            }
        }
    }
    let out = b.build();
    privim_obs::counter("graph.induced.calls").add(1);
    privim_obs::counter("graph.induced.edges").add(out.num_edges() as u64);
    out
}

/// Breadth-first search from `src` following out-edges; returns hop
/// distances (`usize::MAX` for unreachable nodes).
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    dist[src as usize] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in g.out_neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Labels weakly connected components (edge direction ignored).
///
/// Returns `(labels, component_count)`; labels are dense in
/// `0..component_count`.
pub fn weakly_connected_components(g: &Graph) -> (Vec<u32>, usize) {
    const UNVISITED: u32 = u32::MAX;
    let mut label = vec![UNVISITED; g.num_nodes()];
    let mut next_label = 0u32;
    let mut queue = VecDeque::new();
    for s in g.nodes() {
        if label[s as usize] != UNVISITED {
            continue;
        }
        label[s as usize] = next_label;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &u in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                if label[u as usize] == UNVISITED {
                    label[u as usize] = next_label;
                    queue.push_back(u);
                }
            }
        }
        next_label += 1;
    }
    (label, next_label as usize)
}

/// Relabels nodes by a permutation: node `v` becomes `perm[v]`.
///
/// Dataset generators use this to destroy any correlation between node id
/// and construction order (preferential-attachment graphs otherwise give
/// low ids to their oldest, highest-degree nodes, which would let id-based
/// tie-breaking accidentally pick hubs).
pub fn relabel(g: &Graph, perm: &[NodeId]) -> Graph {
    assert_eq!(
        perm.len(),
        g.num_nodes(),
        "permutation length must equal node count"
    );
    debug_assert!(
        {
            let mut seen = vec![false; perm.len()];
            perm.iter().all(|&p| {
                let fresh = !seen[p as usize];
                seen[p as usize] = true;
                fresh
            })
        },
        "perm must be a permutation"
    );
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges());
    for (u, v, w) in g.edges() {
        b.add_edge(perm[u as usize], perm[v as usize], w);
    }
    b.build()
}

/// Relabels nodes by a uniformly random permutation.
pub fn shuffle_labels<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Graph {
    let mut perm: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    perm.shuffle(rng);
    relabel(g, &perm)
}

/// Retains only edges whose endpoints are both in `kept` (a boolean mask),
/// keeping the full node set. Used by Boundary-Enhanced Sampling, which
/// removes saturated nodes from the *remaining* graph (Algorithm 3, lines
/// 3-5) while keeping stable node ids.
pub fn mask_edges(g: &Graph, kept: &[bool]) -> Graph {
    assert_eq!(
        kept.len(),
        g.num_nodes(),
        "mask length must equal node count"
    );
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges());
    for (v, u, w) in g.edges() {
        if kept[v as usize] && kept[u as usize] {
            b.add_edge(v, u, w);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, (i + 1) as NodeId, 1.0);
        }
        b.build()
    }

    fn star_into(hub: NodeId, spokes: usize) -> Graph {
        // spokes nodes all pointing into `hub`
        let mut b = GraphBuilder::new(spokes + 1);
        for i in 0..spokes {
            let v = if (i as NodeId) < hub {
                i as NodeId
            } else {
                i as NodeId + 1
            };
            b.add_edge(v, hub, 0.7);
        }
        b.build()
    }

    #[test]
    fn theta_projection_bounds_in_degree() {
        let g = star_into(0, 20);
        let mut rng = StdRng::seed_from_u64(7);
        let p = theta_projection(&g, 5, &mut rng);
        assert_eq!(p.num_nodes(), g.num_nodes());
        assert_eq!(p.in_degree(0), 5);
        assert_eq!(p.num_edges(), 5);
        // Kept edges retain their weights.
        for &w in p.in_weights(0) {
            assert_eq!(w, 0.7);
        }
    }

    #[test]
    fn theta_projection_is_identity_when_under_bound() {
        let g = path(5);
        let mut rng = StdRng::seed_from_u64(1);
        let p = theta_projection(&g, 3, &mut rng);
        assert_eq!(p.num_edges(), g.num_edges());
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = p.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn theta_projection_keeps_random_subset() {
        // Statistically, different seeds should keep different subsets.
        let g = star_into(0, 30);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let p1 = theta_projection(&g, 3, &mut r1);
        let p2 = theta_projection(&g, 3, &mut r2);
        let e1: Vec<_> = p1.edges().collect();
        let e2: Vec<_> = p2.edges().collect();
        assert_ne!(
            e1, e2,
            "two seeds picked identical subsets (astronomically unlikely)"
        );
    }

    #[test]
    fn khop_respects_radius() {
        let g = path(10);
        let hop2 = khop_neighborhood(&g, 0, 2);
        let mut got: Vec<_> = hop2.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        let hop0 = khop_neighborhood(&g, 3, 0);
        assert_eq!(hop0.len(), 1);
        assert!(hop0.contains(&3));
    }

    #[test]
    fn khop_follows_out_edges_only() {
        let g = path(4); // 0->1->2->3
        let from_tail = khop_neighborhood(&g, 3, 3);
        assert_eq!(from_tail.len(), 1, "tail node has no out-edges");
    }

    #[test]
    fn induced_subgraph_relabels_and_filters() {
        let g = path(5); // 0->1->2->3->4
        let sub = induced_subgraph(&g, &[1, 2, 4]);
        assert_eq!(sub.num_nodes(), 3);
        // Only 1->2 survives (2->3 and 3->4 cross the cut).
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.out_neighbors(0), &[1]);
        assert_eq!(sub.out_weights(0), &[1.0]);
    }

    #[test]
    fn induced_subgraph_order_defines_ids() {
        let g = path(3);
        let sub = induced_subgraph(&g, &[2, 1, 0]);
        // Original 0->1 becomes 2->1; original 1->2 becomes 1->0.
        assert_eq!(sub.out_neighbors(2), &[1]);
        assert_eq!(sub.out_neighbors(1), &[0]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(4);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![usize::MAX, usize::MAX, 0, 1]);
    }

    #[test]
    fn wcc_counts_components() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 1, 1.0); // {0,1,2} weakly connected
        b.add_edge(3, 4, 1.0); // {3,4}
        let g = b.build(); // node 5 isolated
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[5]);
    }

    #[test]
    fn relabel_permutes_consistently() {
        let g = path(3); // 0->1->2
        let r = relabel(&g, &[2, 0, 1]);
        // Edge 0->1 becomes 2->0; edge 1->2 becomes 0->1.
        assert_eq!(r.out_neighbors(2), &[0]);
        assert_eq!(r.out_neighbors(0), &[1]);
        assert_eq!(r.num_edges(), g.num_edges());
    }

    #[test]
    fn shuffle_labels_preserves_degree_multiset() {
        let g = star_into(0, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let s = shuffle_labels(&g, &mut rng);
        let mut a: Vec<usize> = g.nodes().map(|v| g.in_degree(v)).collect();
        let mut b: Vec<usize> = s.nodes().map(|v| s.in_degree(v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(s.num_edges(), g.num_edges());
    }

    #[test]
    fn mask_edges_drops_saturated_endpoints() {
        let g = path(4);
        let kept = vec![true, false, true, true];
        let m = mask_edges(&g, &kept);
        assert_eq!(m.num_nodes(), 4);
        // 0->1 and 1->2 are gone; 2->3 survives.
        assert_eq!(m.num_edges(), 1);
        assert_eq!(m.out_neighbors(2), &[3]);
    }
}
