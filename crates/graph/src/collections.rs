//! Fast hash containers for integer-keyed graph workloads.
//!
//! Graph algorithms hash node ids (small integers) in hot loops; the
//! standard library's SipHash is needlessly slow there. This module provides
//! an Fx-style multiplicative hasher (the algorithm used by `rustc-hash`)
//! implemented locally so the workspace stays within its allowed dependency
//! set, plus type aliases [`FastHashMap`] / [`FastHashSet`] used throughout
//! the workspace.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash algorithm (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An Fx-style hasher: fast, non-cryptographic, good enough for node ids.
///
/// Not HashDoS-resistant; only use for internal data, never attacker-chosen
/// keys. All PrivIM keys are internally generated node indices.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hasher.
pub type FastHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hasher.
pub type FastHashSet<T> = HashSet<T, FxBuildHasher>;

/// Creates an empty [`FastHashSet`] with at least `cap` capacity.
pub fn fast_set_with_capacity<T>(cap: usize) -> FastHashSet<T> {
    FastHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Creates an empty [`FastHashMap`] with at least `cap` capacity.
pub fn fast_map_with_capacity<K, V>(cap: usize) -> FastHashMap<K, V> {
    FastHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_behave_like_std() {
        let mut set: FastHashSet<u32> = fast_set_with_capacity(16);
        for i in 0..1000u32 {
            assert!(set.insert(i));
        }
        for i in 0..1000u32 {
            assert!(set.contains(&i));
            assert!(!set.insert(i));
        }
        assert_eq!(set.len(), 1000);

        let mut map: FastHashMap<u64, u64> = fast_map_with_capacity(4);
        for i in 0..100u64 {
            map.insert(i, i * i);
        }
        assert_eq!(map[&7], 49);
        assert_eq!(map.len(), 100);
    }

    #[test]
    fn hasher_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(42);
        b.write_u32(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u32(43);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn write_bytes_handles_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different input lengths may collide in principle, but with a tail
        // of zero padding both chunks hash the same words, so we only assert
        // determinism and absence of panics here.
        let _ = (a.finish(), b.finish());
    }
}
