//! Graph analytics used to validate synthetic datasets against Table I of
//! the paper (node/edge counts, average degree, clustering).

use serde::{Deserialize, Serialize};

use crate::collections::fast_set_with_capacity;
use crate::csr::{Graph, NodeId};

/// Summary statistics of a graph, comparable to the paper's Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes `|V|`.
    pub num_nodes: usize,
    /// Number of directed edges `|E|`.
    pub num_edges: usize,
    /// Average out-degree (equals average in-degree).
    pub avg_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Global average local clustering coefficient (directed, over the
    /// union neighborhood), estimated exactly for graphs below
    /// [`CLUSTERING_EXACT_LIMIT`] nodes and by sampling above it.
    pub avg_clustering: f64,
}

/// Above this node count, [`graph_stats`] estimates clustering on a sample.
pub const CLUSTERING_EXACT_LIMIT: usize = 20_000;

/// Local clustering coefficient of `v`: fraction of ordered pairs of
/// distinct neighbors (union of in- and out-neighbors) that are connected
/// by an edge in either direction.
pub fn local_clustering(g: &Graph, v: NodeId) -> f64 {
    let mut nbrs = fast_set_with_capacity(g.out_degree(v) + g.in_degree(v));
    nbrs.extend(g.out_neighbors(v).iter().copied());
    nbrs.extend(g.in_neighbors(v).iter().copied());
    nbrs.remove(&v);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for &a in &nbrs {
        for &b in g.out_neighbors(a) {
            if b != a && b != v && nbrs.contains(&b) {
                closed += 1;
            }
        }
    }
    closed as f64 / (k * (k - 1)) as f64
}

/// Computes summary statistics for `g`.
///
/// For graphs larger than [`CLUSTERING_EXACT_LIMIT`], the clustering
/// coefficient is averaged over an evenly strided sample of 10,000 nodes,
/// which keeps the statistic deterministic while bounding cost.
pub fn graph_stats(g: &Graph) -> GraphStats {
    let n = g.num_nodes();
    let avg_degree = if n == 0 {
        0.0
    } else {
        g.num_edges() as f64 / n as f64
    };
    let avg_clustering = if n == 0 {
        0.0
    } else if n <= CLUSTERING_EXACT_LIMIT {
        g.nodes().map(|v| local_clustering(g, v)).sum::<f64>() / n as f64
    } else {
        let sample = 10_000usize;
        let stride = n / sample;
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut v = 0usize;
        while v < n {
            sum += local_clustering(g, v as NodeId);
            count += 1;
            v += stride.max(1);
        }
        sum / count as f64
    };
    GraphStats {
        num_nodes: n,
        num_edges: g.num_edges(),
        avg_degree,
        max_in_degree: g.max_in_degree(),
        max_out_degree: g.max_out_degree(),
        avg_clustering,
    }
}

/// Degree histogram (out-degree); index `d` holds the number of nodes with
/// out-degree exactly `d`.
pub fn out_degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_out_degree() + 1];
    for v in g.nodes() {
        hist[g.out_degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(0, 1, 1.0);
        b.add_undirected_edge(1, 2, 1.0);
        b.add_undirected_edge(0, 2, 1.0);
        b.build()
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let g = triangle();
        for v in g.nodes() {
            assert!((local_clustering(&g, v) - 1.0).abs() < 1e-12);
        }
        let s = graph_stats(&g);
        assert!((s.avg_clustering - 1.0).abs() < 1e-12);
        assert_eq!(s.num_nodes, 3);
        assert_eq!(s.num_edges, 6);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_zero_clustering() {
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_undirected_edge(i, i + 1, 1.0);
        }
        let g = b.build();
        let s = graph_stats(&g);
        assert_eq!(s.avg_clustering, 0.0);
        assert_eq!(s.max_in_degree, 2);
    }

    #[test]
    fn degree_leq_one_yields_zero_clustering() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(local_clustering(&g, 0), 0.0);
        assert_eq!(local_clustering(&g, 1), 0.0);
    }

    #[test]
    fn histogram_counts_out_degrees() {
        let g = triangle();
        let h = out_degree_histogram(&g);
        assert_eq!(h, vec![0, 0, 3]);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = Graph::empty(0);
        let s = graph_stats(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.avg_clustering, 0.0);
    }

    #[test]
    fn stats_serde_round_trip() {
        let s = graph_stats(&triangle());
        let json = serde_json::to_string(&s).unwrap();
        let back: GraphStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
