//! Directed weighted graph engine for the PrivIM reproduction.
//!
//! This crate provides the graph substrate used throughout the workspace:
//! a compressed-sparse-row ([`Graph`]) representation with both out- and
//! in-adjacency, the structural operations the PrivIM sampling schemes need
//! (θ-bounded projection, r-hop neighborhoods, induced subgraphs), basic
//! analytics ([`stats::GraphStats`]) and edge-list / binary I/O.
//!
//! Graphs are always stored as *directed* weighted graphs; undirected inputs
//! are represented by storing both edge directions, matching the paper's
//! convention ("undirected graphs can be treated as directed ones").
//!
//! # Example
//!
//! ```
//! use privim_graph::{GraphBuilder, Graph};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1.0);
//! b.add_edge(1, 2, 0.5);
//! b.add_edge(2, 3, 0.25);
//! let g: Graph = b.build();
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.out_neighbors(1), &[2]);
//! assert_eq!(g.in_neighbors(1), &[0]);
//! ```

pub mod algorithms;
pub mod collections;
pub mod csr;
pub mod error;
pub mod io;
pub mod ops;
pub mod stats;

pub use csr::{Graph, GraphBuilder, NodeId};
pub use error::GraphError;
pub use stats::GraphStats;
