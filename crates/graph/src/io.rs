//! Graph serialization: whitespace-separated edge lists (the format SNAP
//! datasets ship in) and a compact binary format for caching generated
//! datasets between benchmark runs.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::{Graph, GraphBuilder};
use crate::error::GraphError;

/// Magic header for the binary graph format (`"PVIM"` + version byte).
const MAGIC: &[u8; 5] = b"PVIM1";

/// Parses a whitespace-separated edge list: each non-empty, non-`#` line is
/// `src dst [weight]`; missing weights default to `default_weight`.
///
/// `num_nodes` fixes the node-id space; ids must lie in `0..num_nodes`.
///
/// Ingestion is strict: self-loops, repeated directed edges, trailing
/// tokens, out-of-range ids, and non-finite or out-of-`[0, 1]` weights are
/// all rejected with a typed error carrying the 1-based line number, so a
/// corrupted dataset fails loudly at load time instead of skewing the
/// propagation model.
pub fn read_edge_list<R: Read>(
    reader: R,
    num_nodes: usize,
    default_weight: f64,
) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(num_nodes);
    let mut seen = std::collections::HashSet::new();
    let mut line = String::new();
    let mut reader = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let src: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing source"))?
            .parse()
            .map_err(|e| parse_err(lineno, &format!("bad source: {e}")))?;
        let dst: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing destination"))?
            .parse()
            .map_err(|e| parse_err(lineno, &format!("bad destination: {e}")))?;
        let weight = match it.next() {
            Some(tok) => tok
                .parse::<f64>()
                .map_err(|e| parse_err(lineno, &format!("bad weight: {e}")))?,
            None => default_weight,
        };
        if let Some(extra) = it.next() {
            return Err(parse_err(
                lineno,
                &format!("unexpected trailing token {extra:?}"),
            ));
        }
        if src == dst {
            return Err(GraphError::SelfLoop {
                node: src,
                line: lineno,
            });
        }
        if !seen.insert((src, dst)) {
            return Err(GraphError::DuplicateEdge {
                src,
                dst,
                line: lineno,
            });
        }
        b.try_add_edge(src, dst, weight)
            .map_err(|e| GraphError::AtLine {
                line: lineno,
                source: Box::new(e),
            })?;
    }
    Ok(b.build())
}

/// Parses an edge list without a declared node count: reads the text once
/// to find the maximum node id (honoring an optional `# nodes N ...`
/// header, which wins when larger), then parses as [`read_edge_list`].
pub fn read_edge_list_auto(text: &str, default_weight: f64) -> Result<Graph, GraphError> {
    let mut max_id: Option<u64> = None;
    let mut declared: Option<u64> = None;
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            // Header form: "# nodes N edges M".
            let mut it = rest.split_whitespace();
            if it.next() == Some("nodes") {
                if let Some(Ok(n)) = it.next().map(str::parse::<u64>) {
                    declared = Some(n);
                }
            }
            continue;
        }
        for tok in trimmed.split_whitespace().take(2) {
            let id: u64 = tok.parse().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad node id {tok}: {e}"),
            })?;
            max_id = Some(max_id.map_or(id, |m: u64| m.max(id)));
        }
    }
    let from_edges = max_id.map_or(0, |m| m + 1);
    let n = declared.unwrap_or(0).max(from_edges) as usize;
    read_edge_list(text.as_bytes(), n, default_weight)
}

fn parse_err(line: usize, message: &str) -> GraphError {
    GraphError::Parse {
        line,
        message: message.to_string(),
    }
}

/// Writes `g` as a `src dst weight` edge list.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (src, dst, weight) in g.edges() {
        writeln!(w, "{src} {dst} {weight}")?;
    }
    w.flush()?;
    Ok(())
}

/// Encodes `g` into the compact binary format.
///
/// Layout: magic, `u64` node count, `u64` edge count, then per edge
/// `u32 src, u32 dst, f64 weight` in source order (little endian).
pub fn encode_binary(g: &Graph) -> Bytes {
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 16 + g.num_edges() * 16);
    buf.put_slice(MAGIC);
    buf.put_u64_le(g.num_nodes() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    for (src, dst, weight) in g.edges() {
        buf.put_u32_le(src);
        buf.put_u32_le(dst);
        buf.put_f64_le(weight);
    }
    buf.freeze()
}

/// Decodes a graph from the binary format produced by [`encode_binary`].
pub fn decode_binary(mut buf: &[u8]) -> Result<Graph, GraphError> {
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(GraphError::Corrupt("bad magic"));
    }
    buf.advance(MAGIC.len());
    if buf.remaining() < 16 {
        return Err(GraphError::Corrupt("truncated header"));
    }
    let num_nodes = buf.get_u64_le() as usize;
    let num_edges = buf.get_u64_le() as usize;
    if buf.remaining() != num_edges.saturating_mul(16) {
        return Err(GraphError::Corrupt("edge payload size mismatch"));
    }
    let mut b = GraphBuilder::with_capacity(num_nodes, num_edges);
    for _ in 0..num_edges {
        let src = buf.get_u32_le() as u64;
        let dst = buf.get_u32_le() as u64;
        let weight = buf.get_f64_le();
        b.try_add_edge(src, dst, weight)?;
    }
    Ok(b.build())
}

/// Convenience: writes the binary format to `path`.
pub fn save_binary<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    std::fs::write(path, encode_binary(g))?;
    Ok(())
}

/// Convenience: reads the binary format from `path`.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    let bytes = std::fs::read(path)?;
    decode_binary(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.25);
        b.add_edge(1, 2, 0.5);
        b.add_edge(3, 0, 1.0);
        b.build()
    }

    #[test]
    fn edge_list_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..], 4, 1.0).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_default_weight_and_comments() {
        let text = "# a comment\n\n0 1\n1 0 0.5\n";
        let g = read_edge_list(text.as_bytes(), 2, 0.9).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_weights(0), &[0.9]);
        assert_eq!(g.out_weights(1), &[0.5]);
    }

    #[test]
    fn edge_list_reports_line_numbers() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes(), 2, 1.0).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn edge_list_rejects_out_of_range_nodes() {
        let text = "0 1\n0 7\n";
        match read_edge_list(text.as_bytes(), 2, 1.0) {
            Err(GraphError::AtLine { line, source }) => {
                assert_eq!(line, 2);
                assert!(matches!(
                    *source,
                    GraphError::NodeOutOfRange { node: 7, .. }
                ));
            }
            other => panic!("expected line-annotated range error, got {other:?}"),
        }
    }

    #[test]
    fn edge_list_rejects_self_loops_and_duplicates() {
        assert!(matches!(
            read_edge_list("0 1\n1 1\n".as_bytes(), 3, 1.0),
            Err(GraphError::SelfLoop { node: 1, line: 2 })
        ));
        assert!(matches!(
            read_edge_list("0 1 0.5\n1 2\n0 1 0.7\n".as_bytes(), 3, 1.0),
            Err(GraphError::DuplicateEdge {
                src: 0,
                dst: 1,
                line: 3
            })
        ));
        // Reverse direction is a distinct directed edge, not a duplicate.
        assert!(read_edge_list("0 1\n1 0\n".as_bytes(), 2, 1.0).is_ok());
    }

    #[test]
    fn edge_list_rejects_bad_weights_with_line_numbers() {
        for (text, line) in [
            ("0 1 NaN\n", 1),
            ("0 1 0.5\n1 2 -0.25\n", 2),
            ("0 1 0.5\n1 2 0.5\n2 0 1.5\n", 3),
            ("0 1 inf\n", 1),
        ] {
            match read_edge_list(text.as_bytes(), 3, 1.0) {
                Err(GraphError::AtLine { line: l, source }) => {
                    assert_eq!(l, line, "{text:?}");
                    assert!(
                        matches!(*source, GraphError::InvalidWeight { .. }),
                        "{text:?}"
                    );
                }
                other => panic!("{text:?}: expected invalid-weight at line {line}, got {other:?}"),
            }
        }
    }

    #[test]
    fn edge_list_rejects_trailing_tokens() {
        assert!(matches!(
            read_edge_list("0 1 0.5 extra\n".as_bytes(), 2, 1.0),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn fuzzed_edge_lists_never_panic() {
        // Fuzz-style sweep: mutate a valid fixture with deterministic
        // byte-level and line-level corruptions; every outcome must be a
        // clean parse or a typed `GraphError` — never a panic — and line
        // numbers in errors must stay within the mutated document.
        let fixture = "# nodes 6 edges 5\n0 1 0.25\n1 2 0.5\n2 3\n3 4 0.75\n4 5 1.0\n";
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            // splitmix64 step: deterministic, dependency-free.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut attempts = 0usize;
        for _ in 0..400 {
            let mut text = fixture.as_bytes().to_vec();
            match next() % 5 {
                0 => {
                    // Flip a byte.
                    let pos = (next() as usize) % text.len();
                    text[pos] ^= (next() as u8) | 1;
                }
                1 => {
                    // Truncate.
                    text.truncate((next() as usize) % text.len());
                }
                2 => {
                    // Duplicate a line.
                    let lines: Vec<&str> = fixture.lines().collect();
                    let dup = lines[(next() as usize) % lines.len()];
                    text.extend_from_slice(dup.as_bytes());
                    text.push(b'\n');
                }
                3 => {
                    // Splice hostile tokens onto a fresh line.
                    let hostile = [
                        "NaN NaN NaN",
                        "1 1",
                        "-1 2",
                        "0 1 1e308",
                        "0 1 -0.0",
                        "\u{7f}",
                    ];
                    text.extend_from_slice(hostile[(next() as usize) % hostile.len()].as_bytes());
                    text.push(b'\n');
                }
                _ => {
                    // Insert bytes mid-stream.
                    let pos = (next() as usize) % text.len();
                    let junk = [b' ', b'\n', b'#', b'.', b'9', 0xff];
                    text.insert(pos, junk[(next() as usize) % junk.len()]);
                }
            }
            attempts += 1;
            let total_lines = text.split(|&b| b == b'\n').count();
            let line_of = |e: &GraphError| match e {
                GraphError::Parse { line, .. }
                | GraphError::SelfLoop { line, .. }
                | GraphError::DuplicateEdge { line, .. }
                | GraphError::AtLine { line, .. } => Some(*line),
                _ => None,
            };
            if let Err(e) = read_edge_list(&text[..], 6, 1.0) {
                if let Some(line) = line_of(&e) {
                    assert!(
                        line >= 1 && line <= total_lines,
                        "{e} vs {total_lines} lines"
                    );
                }
            }
            if let Ok(s) = std::str::from_utf8(&text) {
                let _ = read_edge_list_auto(s, 1.0);
            }
        }
        assert_eq!(attempts, 400);
    }

    #[test]
    fn auto_edge_list_infers_node_count() {
        let g = read_edge_list_auto("0 3\n1 2 0.5\n", 1.0).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_weights(1), &[0.5]);
    }

    #[test]
    fn auto_edge_list_honors_header_when_larger() {
        let g = read_edge_list_auto("# nodes 10 edges 1\n0 1\n", 1.0).unwrap();
        assert_eq!(g.num_nodes(), 10);
        // Edge ids above the declared count still win.
        let g = read_edge_list_auto("# nodes 2 edges 1\n0 5\n", 1.0).unwrap();
        assert_eq!(g.num_nodes(), 6);
    }

    #[test]
    fn auto_edge_list_round_trips_writer_output() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(read_edge_list_auto(&text, 1.0).unwrap(), g);
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let bytes = encode_binary(&g);
        let back = decode_binary(&bytes).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = sample();
        let bytes = encode_binary(&g);
        assert!(matches!(
            decode_binary(&bytes[..4]),
            Err(GraphError::Corrupt(_))
        ));
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(matches!(decode_binary(&bad), Err(GraphError::Corrupt(_))));
        let mut truncated = bytes.to_vec();
        truncated.pop();
        assert!(matches!(
            decode_binary(&truncated),
            Err(GraphError::Corrupt(_))
        ));
    }

    #[test]
    fn binary_file_round_trip() {
        let g = sample();
        let dir = std::env::temp_dir().join("privim-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        save_binary(&g, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::empty(5);
        assert_eq!(decode_binary(&encode_binary(&g)).unwrap(), g);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(read_edge_list(&buf[..], 5, 1.0).unwrap(), g);
    }
}
