//! Error type shared by graph construction and I/O.

use std::fmt;

/// Errors produced by graph construction, manipulation, or I/O.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint referenced a node id outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// An edge weight was not a finite probability in `[0, 1]`.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A malformed line was encountered while parsing an edge list.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An edge list contained a self-loop (`src == dst`), which the
    /// influence-propagation model does not admit.
    SelfLoop {
        /// The node with the self-edge.
        node: u64,
        /// 1-based line number.
        line: usize,
    },
    /// An edge list repeated a directed edge; duplicates silently skew
    /// propagation probabilities, so ingestion rejects them.
    DuplicateEdge {
        /// Source endpoint.
        src: u64,
        /// Destination endpoint.
        dst: u64,
        /// 1-based line number.
        line: usize,
    },
    /// A structural error (out-of-range id, invalid weight) annotated with
    /// the edge-list line that triggered it.
    AtLine {
        /// 1-based line number.
        line: usize,
        /// The underlying error.
        source: Box<GraphError>,
    },
    /// Binary deserialization found a corrupt or truncated buffer.
    Corrupt(&'static str),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::InvalidWeight { weight } => {
                write!(
                    f,
                    "edge weight {weight} is not a finite probability in [0, 1]"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::SelfLoop { node, line } => {
                write!(f, "self-loop on node {node} at line {line}")
            }
            GraphError::DuplicateEdge { src, dst, line } => {
                write!(f, "duplicate edge {src} -> {dst} at line {line}")
            }
            GraphError::AtLine { line, source } => {
                write!(f, "line {line}: {source}")
            }
            GraphError::Corrupt(what) => write!(f, "corrupt graph buffer: {what}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::AtLine { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = GraphError::InvalidWeight { weight: -0.5 };
        assert!(e.to_string().contains("-0.5"));
        let e = GraphError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn ingestion_variants_carry_line_numbers() {
        use std::error::Error;
        let e = GraphError::SelfLoop { node: 2, line: 7 };
        assert!(e.to_string().contains("node 2"));
        assert!(e.to_string().contains("line 7"));
        let e = GraphError::DuplicateEdge {
            src: 1,
            dst: 3,
            line: 9,
        };
        assert!(e.to_string().contains("1 -> 3"));
        assert!(e.to_string().contains("line 9"));
        let e = GraphError::AtLine {
            line: 4,
            source: Box::new(GraphError::InvalidWeight { weight: 2.0 }),
        };
        assert!(e.to_string().starts_with("line 4"));
        assert!(e.source().unwrap().to_string().contains('2'));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(e.source().is_some());
    }
}
