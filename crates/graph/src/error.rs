//! Error type shared by graph construction and I/O.

use std::fmt;

/// Errors produced by graph construction, manipulation, or I/O.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint referenced a node id outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// An edge weight was not a finite probability in `[0, 1]`.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A malformed line was encountered while parsing an edge list.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Binary deserialization found a corrupt or truncated buffer.
    Corrupt(&'static str),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::InvalidWeight { weight } => {
                write!(
                    f,
                    "edge weight {weight} is not a finite probability in [0, 1]"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Corrupt(what) => write!(f, "corrupt graph buffer: {what}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = GraphError::InvalidWeight { weight: -0.5 };
        assert!(e.to_string().contains("-0.5"));
        let e = GraphError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(e.source().is_some());
    }
}
