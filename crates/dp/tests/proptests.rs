//! Property-based tests for the privacy substrate.

use proptest::prelude::*;

use privim_dp::math::{gamma_pdf, ln_binomial, ln_gamma, log_sum_exp};
use privim_dp::rdp::{rdp_to_epsilon, subsampled_gaussian_rdp, RdpAccountant, SubsampledConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ln_gamma_satisfies_recurrence(x in 0.05f64..200.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "x = {x}: {lhs} vs {rhs}");
    }

    #[test]
    fn ln_binomial_pascal_rule(n in 1u64..60, k_raw in 0u64..60) {
        let k = k_raw.min(n - 1);
        if k + 1 > n { return Ok(()); }
        // C(n+1, k+1) = C(n, k) + C(n, k+1)
        let lhs = ln_binomial(n + 1, k + 1).exp();
        let rhs = ln_binomial(n, k).exp() + ln_binomial(n, k + 1).exp();
        prop_assert!((lhs - rhs).abs() / rhs < 1e-9);
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range(xs in proptest::collection::vec(-20.0f64..20.0, 1..20)) {
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        prop_assert!((log_sum_exp(&xs) - naive).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_shift_invariance(xs in proptest::collection::vec(-5.0f64..5.0, 1..10), c in -100.0f64..100.0) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        prop_assert!((log_sum_exp(&shifted) - (log_sum_exp(&xs) + c)).abs() < 1e-9);
    }

    #[test]
    fn gamma_pdf_is_nonnegative(x in -10.0f64..100.0, shape in 0.1f64..20.0, scale in 0.1f64..30.0) {
        prop_assert!(gamma_pdf(x, shape, scale) >= 0.0);
    }

    #[test]
    fn rdp_is_positive_and_monotone_in_alpha(
        sigma in 0.3f64..8.0,
        n_g in 1usize..20,
        b in 1usize..64,
        m_extra in 1usize..500,
    ) {
        let config = SubsampledConfig {
            max_occurrences: n_g,
            batch_size: b,
            container_size: n_g + m_extra,
        };
        let g2 = subsampled_gaussian_rdp(2.0, sigma, &config);
        let g8 = subsampled_gaussian_rdp(8.0, sigma, &config);
        prop_assert!(g2 >= 0.0, "gamma must be non-negative: {g2}");
        prop_assert!(g8 >= g2 - 1e-12, "RDP must be non-decreasing in alpha");
    }

    #[test]
    fn rdp_decreases_with_sigma_everywhere(
        n_g in 1usize..10,
        b in 1usize..32,
        m_extra in 10usize..300,
    ) {
        let config = SubsampledConfig {
            max_occurrences: n_g,
            batch_size: b,
            container_size: n_g + m_extra,
        };
        let lo = subsampled_gaussian_rdp(4.0, 0.5, &config);
        let hi = subsampled_gaussian_rdp(4.0, 2.0, &config);
        prop_assert!(hi <= lo + 1e-12);
    }

    #[test]
    fn epsilon_monotone_in_steps(sigma in 0.5f64..4.0, t1 in 1usize..50, extra in 1usize..50) {
        let config = SubsampledConfig { max_occurrences: 4, batch_size: 8, container_size: 100 };
        let eps = |t: usize| {
            let mut acct = RdpAccountant::default();
            acct.compose_subsampled_gaussian(sigma, &config, t);
            acct.epsilon(1e-5).0
        };
        prop_assert!(eps(t1 + extra) >= eps(t1) - 1e-9);
    }

    #[test]
    fn conversion_is_monotone_in_gamma_and_delta(
        gamma in 0.0f64..50.0,
        alpha in 1.1f64..64.0,
        bump in 0.01f64..10.0,
    ) {
        let e1 = rdp_to_epsilon(gamma, alpha, 1e-5);
        let e2 = rdp_to_epsilon(gamma + bump, alpha, 1e-5);
        prop_assert!(e2 > e1, "epsilon must grow with gamma");
        let loose = rdp_to_epsilon(gamma, alpha, 1e-3);
        prop_assert!(loose <= e1, "looser delta cannot need more epsilon");
    }

    #[test]
    fn gaussian_samples_are_finite(seed in 0u64..1000, std in 0.0f64..100.0) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let x = privim_dp::mechanisms::gaussian(&mut rng, std);
            prop_assert!(x.is_finite());
        }
    }

    #[test]
    fn sml_vectors_are_finite_with_requested_dim(seed in 0u64..1000, dim in 1usize..64) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let v = privim_dp::mechanisms::symmetric_multivariate_laplace(&mut rng, 1.0, dim);
        prop_assert_eq!(v.len(), dim);
        prop_assert!(v.iter().all(|x| x.is_finite()));
    }
}
