//! Exhaustive calibration-grid tests for the accountant: σ calibration
//! must be correct (within budget), tight (slightly less σ violates), and
//! monotone along every axis, across a broad parameter grid.

use privim_dp::rdp::{calibrate_sigma, RdpAccountant, SubsampledConfig};

fn eps_at(sigma: f64, cfg: &SubsampledConfig, steps: usize, delta: f64) -> f64 {
    let mut acct = RdpAccountant::default();
    acct.compose_subsampled_gaussian(sigma, cfg, steps);
    acct.epsilon(delta).0
}

#[test]
fn calibration_is_correct_and_tight_on_a_grid() {
    let delta = 1e-5;
    for &n_g in &[1usize, 4, 16, 64] {
        for &b in &[4usize, 32] {
            for &m in &[64usize, 512] {
                for &t in &[10usize, 100] {
                    for &target in &[0.5f64, 3.0, 10.0] {
                        let cfg = SubsampledConfig {
                            max_occurrences: n_g,
                            batch_size: b,
                            container_size: m,
                        };
                        let sigma = calibrate_sigma(target, delta, &cfg, t);
                        let spent = eps_at(sigma, &cfg, t, delta);
                        assert!(
                            spent <= target * 1.001,
                            "n_g={n_g} b={b} m={m} t={t} target={target}: spent {spent}"
                        );
                        let under = eps_at(sigma * 0.95, &cfg, t, delta);
                        assert!(
                            under > target * 0.995,
                            "calibration is loose: n_g={n_g} b={b} m={m} t={t} \
                             target={target}: 0.95σ still gives {under}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn epsilon_is_monotone_along_every_axis() {
    let base = SubsampledConfig {
        max_occurrences: 8,
        batch_size: 16,
        container_size: 256,
    };
    let delta = 1e-5;
    let reference = eps_at(1.5, &base, 50, delta);

    // More steps → more ε.
    assert!(eps_at(1.5, &base, 100, delta) >= reference);
    // More noise → less ε.
    assert!(eps_at(3.0, &base, 50, delta) <= reference);
    // Larger batch (more affected draws expected) → more ε.
    let bigger_batch = SubsampledConfig {
        batch_size: 64,
        ..base
    };
    assert!(eps_at(1.5, &bigger_batch, 50, delta) >= reference);
    // Larger container (lower hit probability) → less ε.
    let bigger_container = SubsampledConfig {
        container_size: 2048,
        ..base
    };
    assert!(eps_at(1.5, &bigger_container, 50, delta) <= reference);
    // Looser δ → less ε.
    let mut acct = RdpAccountant::default();
    acct.compose_subsampled_gaussian(1.5, &base, 50);
    assert!(acct.epsilon(1e-3).0 <= acct.epsilon(1e-7).0);
}

#[test]
fn gamma_is_finite_and_nonnegative_across_grid() {
    use privim_dp::rdp::subsampled_gaussian_rdp;
    for &alpha in &[1.25f64, 2.0, 8.0, 64.0, 512.0] {
        for &sigma in &[0.1f64, 1.0, 10.0] {
            for &n_g in &[1usize, 7, 100] {
                for &b in &[1usize, 16, 100] {
                    let cfg = SubsampledConfig {
                        max_occurrences: n_g,
                        batch_size: b,
                        container_size: 100,
                    };
                    let g = subsampled_gaussian_rdp(alpha, sigma, &cfg);
                    assert!(
                        g.is_finite() && g >= -1e-12,
                        "alpha={alpha} sigma={sigma} n_g={n_g} b={b}: gamma = {g}"
                    );
                }
            }
        }
    }
}
