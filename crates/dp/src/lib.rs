//! Differential-privacy substrate for the PrivIM reproduction.
//!
//! - [`math`] — log-Gamma, log-binomial, log-sum-exp, Gamma pdf.
//! - [`mechanisms`] — Gaussian, Laplace and Symmetric-Multivariate-Laplace
//!   noise samplers plus the corresponding mechanisms.
//! - [`rdp`] — the paper's Theorem 3 Rényi-DP accountant for the
//!   subgraph-sampled Gaussian mechanism, Theorem 1 conversion to
//!   `(ε, δ)`-DP, and noise-multiplier calibration.
//! - [`ledger`] — the append-only privacy-budget ledger: one entry per
//!   mechanism invocation (kind, σ, Δ_g, sampling structure, cumulative
//!   ε), exported as `dp`/`mechanism` telemetry events and replayable
//!   offline to re-derive the accountant's ε.
//! - [`budget`] — the live [`BudgetGuard`] over the ledger: projects the
//!   accountant-exact ε of the *next* step and hard-halts a run before
//!   it can overspend a `--epsilon-budget`.
//!
//! # Example: calibrate noise for a PrivIM* run
//!
//! ```
//! use privim_dp::rdp::{calibrate_sigma, SubsampledConfig, RdpAccountant};
//!
//! // Dual-stage sampling with frequency threshold M = 4 (N_g* = 4),
//! // a container of 500 subgraphs, batches of 32, 100 iterations.
//! let config = SubsampledConfig {
//!     max_occurrences: 4,
//!     batch_size: 32,
//!     container_size: 500,
//! };
//! let sigma = calibrate_sigma(3.0, 1e-5, &config, 100);
//!
//! let mut acct = RdpAccountant::default();
//! acct.compose_subsampled_gaussian(sigma, &config, 100);
//! let (eps, _alpha) = acct.epsilon(1e-5);
//! assert!(eps <= 3.0);
//! ```

pub mod budget;
pub mod composition;
pub mod ledger;
pub mod math;
pub mod mechanisms;
pub mod rdp;

pub use budget::{BudgetDecision, BudgetGuard};
pub use composition::{advanced_composition, basic_composition};
pub use ledger::{replay_records, LedgerEntry, MechanismKind, PrivacyLedger};
pub use mechanisms::{gaussian, laplace, symmetric_multivariate_laplace};
pub use rdp::{
    calibrate_sigma, naive_occurrence_bound, rdp_to_epsilon, subsampled_gaussian_rdp,
    AdjacencyLevel, RdpAccountant, SubsampledConfig,
};
