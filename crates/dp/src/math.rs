//! Special functions used by the privacy accountant and the parameter
//! indicator: log-Gamma, log-binomial coefficients, log-sum-exp, and the
//! Gamma-distribution pdf (Eq. 11 of the paper).

/// Natural log of the Gamma function via the Lanczos approximation
/// (g = 7, 9 coefficients; |relative error| < 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)` computed through [`ln_gamma`]; exact enough for the
/// accountant's binomial mixture weights.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_binomial requires k <= n");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Numerically stable `ln Σ exp(xᵢ)`.
///
/// Returns `-inf` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Probability density of the Gamma(β, ψ) distribution at `x` — `ξ(x; β, ψ)`
/// in the paper's Eq. 11 (shape β, scale ψ).
pub fn gamma_pdf(x: f64, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "gamma_pdf requires positive shape/scale"
    );
    if x <= 0.0 {
        return 0.0;
    }
    let log_pdf = (shape - 1.0) * x.ln() - x / scale - shape * scale.ln() - ln_gamma(shape);
    log_pdf.exp()
}

/// Mode of Gamma(β, ψ): `(β − 1)·ψ` for β > 1 (Eq. 46), else 0.
pub fn gamma_mode(shape: f64, scale: f64) -> f64 {
    ((shape - 1.0) * scale).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let factorials = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in factorials.iter().enumerate() {
            let got = ln_gamma(n as f64 + 1.0);
            assert!((got - f.ln()).abs() < 1e-10, "n={n}: {got} vs {}", f.ln());
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        let got = ln_gamma(0.5);
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((got - want).abs() < 1e-10);
        // Γ(3/2) = sqrt(π)/2
        let got = ln_gamma(1.5);
        let want = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((got - want).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // Γ(x+1) = x·Γ(x)
        for &x in &[0.3, 1.7, 4.2, 25.0, 333.5] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn ln_binomial_matches_small_cases() {
        assert!((ln_binomial(5, 2) - 10f64.ln()).abs() < 1e-10);
        assert!((ln_binomial(10, 0)).abs() < 1e-10);
        assert!((ln_binomial(10, 10)).abs() < 1e-10);
        assert!((ln_binomial(52, 5) - 2_598_960f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn log_sum_exp_is_stable() {
        // Would overflow naively.
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + 2f64.ln())).abs() < 1e-12);
        // Matches direct computation in safe ranges.
        let xs = [0.0, 1.0, -2.0];
        let direct = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - direct).abs() < 1e-12);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn gamma_pdf_integrates_to_one() {
        // Trapezoid integration over a wide range.
        let (shape, scale) = (3.0, 2.0);
        let mut total = 0.0;
        let dx = 0.001;
        let mut x = dx;
        while x < 60.0 {
            total += gamma_pdf(x, shape, scale) * dx;
            x += dx;
        }
        assert!((total - 1.0).abs() < 1e-3, "integral = {total}");
    }

    #[test]
    fn gamma_pdf_peaks_at_mode() {
        let (shape, scale) = (4.0, 5.0);
        let mode = gamma_mode(shape, scale);
        assert_eq!(mode, 15.0);
        let at_mode = gamma_pdf(mode, shape, scale);
        for dx in [-2.0, -0.5, 0.5, 2.0] {
            assert!(gamma_pdf(mode + dx, shape, scale) < at_mode);
        }
    }

    #[test]
    fn gamma_pdf_zero_outside_support() {
        assert_eq!(gamma_pdf(0.0, 2.0, 1.0), 0.0);
        assert_eq!(gamma_pdf(-3.0, 2.0, 1.0), 0.0);
    }
}
