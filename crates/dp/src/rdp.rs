//! Rényi-DP accounting for PrivIM's subgraph-sampled Gaussian mechanism.
//!
//! Implements Theorem 3 of the paper: one DP-SGD iteration over a batch of
//! `B` subgraphs drawn from a container of `m`, where any individual node
//! appears in at most `N_g` subgraphs, satisfies `(α, γ)`-RDP with
//!
//! ```text
//! γ(α) = 1/(α−1) · ln Σ_{i=0}^{N_g} Binom(B, N_g/m; i) · exp(α(α−1) i² / (2 N_g² σ²))
//! ```
//!
//! composed linearly over `T` iterations (Definition 5) and converted to
//! `(ε, δ)`-DP via Theorem 1. `N_g` is `Σ_{i=0}^{r} θ^i` for the naive
//! pipeline (Lemma 1) and the frequency threshold `M` for the dual-stage
//! pipeline (`N_g* = M`).

use serde::{Deserialize, Serialize};

use crate::math::{ln_binomial, log_sum_exp};

/// Default α grid; spans the orders at which DP-SGD-style mechanisms are
/// typically tightest.
pub const DEFAULT_ORDERS: [f64; 20] = [
    1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 32.0, 64.0,
    128.0, 256.0, 512.0,
];

/// Sampling configuration of one Algorithm 2 run, from the accountant's
/// point of view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubsampledConfig {
    /// Maximum occurrences of any node across the subgraph container
    /// (`N_g` from Lemma 1, or `N_g* = M` for the dual-stage scheme).
    pub max_occurrences: usize,
    /// Batch size `B`.
    pub batch_size: usize,
    /// Container size `m = |G_sub|`.
    pub container_size: usize,
}

impl SubsampledConfig {
    /// Effective subgraph sampling ratio `q = N_g / m`, clamped to `[0, 1]`.
    pub fn affected_fraction(&self) -> f64 {
        if self.container_size == 0 {
            return 1.0;
        }
        (self.max_occurrences as f64 / self.container_size as f64).min(1.0)
    }
}

/// Which adjacency notion the DP guarantee is stated against
/// (Definition 2). Node-level adjacency (graphs differing by one node and
/// all its edges) strictly implies edge-level adjacency (differing by one
/// edge), so any node-level bound is also a valid edge-level bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdjacencyLevel {
    /// Adjacent graphs differ by one node and every edge touching it (the
    /// paper's primary setting; the stronger guarantee).
    Node,
    /// Adjacent graphs differ by a single edge.
    Edge,
}

impl AdjacencyLevel {
    /// The occurrence bound to feed the accountant, given the node-level
    /// bound `node_bound` and (for edge-level) an optional tighter
    /// *pair co-occurrence* bound measured or derived for the sampler:
    /// an edge only affects subgraphs containing both of its endpoints, so
    /// its occurrence count is at most `node_bound` and often far smaller.
    pub fn occurrence_bound(self, node_bound: usize, pair_bound: Option<usize>) -> usize {
        match self {
            AdjacencyLevel::Node => node_bound,
            AdjacencyLevel::Edge => pair_bound.map_or(node_bound, |p| p.min(node_bound)),
        }
    }
}

/// Lemma 1: the naive pipeline's occurrence bound
/// `N_g = Σ_{i=0}^{r} θⁱ = (θ^{r+1} − 1) / (θ − 1)`.
pub fn naive_occurrence_bound(theta: usize, layers: usize) -> usize {
    if theta == 1 {
        return layers + 1;
    }
    let mut total = 0usize;
    let mut power = 1usize;
    for _ in 0..=layers {
        total = total.saturating_add(power);
        power = power.saturating_mul(theta);
    }
    total
}

/// One-iteration RDP of the subgraph-sampled Gaussian mechanism at order
/// `alpha` (Eq. 23). `sigma` is the noise multiplier (the noise std is
/// `σ · Δ_g` with `Δ_g = C · N_g`, Lemma 2).
pub fn subsampled_gaussian_rdp(alpha: f64, sigma: f64, config: &SubsampledConfig) -> f64 {
    assert!(alpha > 1.0, "RDP order must exceed 1");
    assert!(sigma > 0.0, "noise multiplier must be positive");
    let n_g = config.max_occurrences as f64;
    assert!(n_g >= 1.0, "max_occurrences must be at least 1");
    let b = config.batch_size as u64;
    let q = config.affected_fraction();
    // i counts how many of the batch's B draws hit an affected subgraph.
    // The container holds only N_g affected subgraphs and batches are
    // sampled without replacement, so i ≤ min(N_g, B); Eq. 23 therefore
    // truncates the binomial at N_g (the per-subgraph shift is ≤ C, so i
    // affected subgraphs shift the clipped sum by ≤ i·C ≤ N_g·C = Δ_g).
    let i_max = (config.max_occurrences as u64).min(b);
    let mut terms = Vec::with_capacity(i_max as usize + 2);
    let mut mass = 0.0f64;
    for i in 0..=i_max {
        let ln_rho = if q >= 1.0 {
            // Degenerate sampling: every draw is affected.
            if i == b {
                0.0
            } else {
                f64::NEG_INFINITY
            }
        } else {
            ln_binomial(b, i) + i as f64 * q.ln() + (b - i) as f64 * (1.0 - q).ln()
        };
        mass += ln_rho.exp();
        let exponent =
            alpha * (alpha - 1.0) * (i as f64) * (i as f64) / (2.0 * n_g * n_g * sigma * sigma);
        terms.push(ln_rho + exponent);
    }
    // Eq. 23 truncates the binomial at N_g because sampling without
    // replacement cannot pick more than the N_g affected subgraphs. The
    // with-replacement binomial model may still carry mass beyond the
    // truncation point (only in degenerate regimes like B approaching m);
    // assign that residual its worst-case shift (i = N_g, exponent
    // α(α−1)/(2σ²)) so the mixture stays a probability distribution and
    // the bound stays conservative.
    let residual = (1.0 - mass).max(0.0);
    if residual > 0.0 {
        let worst = alpha * (alpha - 1.0) / (2.0 * sigma * sigma);
        terms.push(residual.ln() + worst);
    }
    log_sum_exp(&terms) / (alpha - 1.0)
}

/// Theorem 1: converts `(α, γ)`-RDP to `(ε, δ)`-DP:
/// `ε = γ + ln((α−1)/α) − (ln δ + ln α)/(α−1)`.
pub fn rdp_to_epsilon(gamma: f64, alpha: f64, delta: f64) -> f64 {
    assert!(
        alpha > 1.0 && delta > 0.0 && delta < 1.0,
        "invalid (alpha, delta)"
    );
    gamma + ((alpha - 1.0) / alpha).ln() - (delta.ln() + alpha.ln()) / (alpha - 1.0)
}

/// Accumulates RDP over the α grid and converts to `(ε, δ)` on demand.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RdpAccountant {
    orders: Vec<f64>,
    gammas: Vec<f64>,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new(&DEFAULT_ORDERS)
    }
}

impl RdpAccountant {
    /// An accountant over the given α grid.
    pub fn new(orders: &[f64]) -> Self {
        assert!(
            !orders.is_empty() && orders.iter().all(|&a| a > 1.0),
            "orders must be > 1"
        );
        RdpAccountant {
            orders: orders.to_vec(),
            gammas: vec![0.0; orders.len()],
        }
    }

    /// Rebuilds an accountant from persisted state (the exact `(α, γ)`
    /// pairs a checkpoint captured). Crash-safe resume depends on this
    /// being lossless: the γ values are restored bit-for-bit, so the
    /// resumed accountant reports the same ε the original would have.
    pub fn with_state(orders: Vec<f64>, gammas: Vec<f64>) -> Self {
        assert!(
            !orders.is_empty() && orders.iter().all(|&a| a > 1.0),
            "orders must be > 1"
        );
        assert_eq!(
            orders.len(),
            gammas.len(),
            "orders and gammas must be parallel"
        );
        assert!(
            gammas.iter().all(|&g| g >= 0.0 && g.is_finite()),
            "gammas must be finite and non-negative"
        );
        RdpAccountant { orders, gammas }
    }

    /// The α grid.
    pub fn orders(&self) -> &[f64] {
        &self.orders
    }

    /// The accumulated γ(α) values, parallel to [`RdpAccountant::orders`].
    pub fn gammas(&self) -> &[f64] {
        &self.gammas
    }

    /// Sequential composition (Definition 5): adds `steps` iterations of
    /// the subgraph-sampled Gaussian mechanism.
    pub fn compose_subsampled_gaussian(
        &mut self,
        sigma: f64,
        config: &SubsampledConfig,
        steps: usize,
    ) {
        for (gamma, &alpha) in self.gammas.iter_mut().zip(&self.orders) {
            *gamma += steps as f64 * subsampled_gaussian_rdp(alpha, sigma, config);
        }
    }

    /// Adds a generic `(α, γ(α))`-RDP mechanism given its γ curve.
    pub fn compose_curve(&mut self, gamma_at: impl Fn(f64) -> f64) {
        for (gamma, &alpha) in self.gammas.iter_mut().zip(&self.orders) {
            *gamma += gamma_at(alpha);
        }
    }

    /// Best `ε` at the given `δ`, minimizing Theorem 1 over the α grid.
    /// Returns `(epsilon, best_alpha)`.
    pub fn epsilon(&self, delta: f64) -> (f64, f64) {
        self.orders
            .iter()
            .zip(&self.gammas)
            .map(|(&alpha, &gamma)| (rdp_to_epsilon(gamma, alpha, delta), alpha))
            .filter(|(eps, _)| eps.is_finite())
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("at least one order yields finite epsilon")
    }

    /// The cumulative `(ε, best α)` after each of `steps` iterations of
    /// the subsampled Gaussian mechanism at noise multiplier `sigma`,
    /// starting from this accountant's current state (which is not
    /// modified). One γ evaluation per order, `O(steps × orders)` total —
    /// cheap enough to drive per-step telemetry.
    pub fn epsilon_schedule(
        &self,
        sigma: f64,
        config: &SubsampledConfig,
        steps: usize,
        delta: f64,
    ) -> Vec<(f64, f64)> {
        let per_step: Vec<f64> = self
            .orders
            .iter()
            .map(|&alpha| subsampled_gaussian_rdp(alpha, sigma, config))
            .collect();
        let mut gammas = self.gammas.clone();
        let mut schedule = Vec::with_capacity(steps);
        for _ in 0..steps {
            for (gamma, inc) in gammas.iter_mut().zip(&per_step) {
                *gamma += inc;
            }
            let best = self
                .orders
                .iter()
                .zip(&gammas)
                .map(|(&alpha, &gamma)| (rdp_to_epsilon(gamma, alpha, delta), alpha))
                .filter(|(eps, _)| eps.is_finite())
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("at least one order yields finite epsilon");
            schedule.push(best);
        }
        schedule
    }
}

/// Calibrates the smallest noise multiplier σ such that `steps` iterations
/// stay within `(target_epsilon, delta)`-DP, by bisection.
///
/// Returns σ; panics if the target is unattainable within the search
/// bracket (σ up to 1e6).
pub fn calibrate_sigma(
    target_epsilon: f64,
    delta: f64,
    config: &SubsampledConfig,
    steps: usize,
) -> f64 {
    assert!(target_epsilon > 0.0, "epsilon must be positive");
    let eps_at = |sigma: f64| {
        let mut acct = RdpAccountant::default();
        acct.compose_subsampled_gaussian(sigma, config, steps);
        acct.epsilon(delta).0
    };
    let (mut lo, mut hi) = (1e-3, 1.0);
    while eps_at(hi) > target_epsilon {
        lo = hi;
        hi *= 2.0;
        assert!(
            hi <= 1e6,
            "cannot reach epsilon {target_epsilon} with sigma <= 1e6"
        );
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if eps_at(mid) > target_epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    privim_obs::debug!(
        "dp",
        "calibrated",
        sigma = hi,
        target_epsilon = target_epsilon,
        delta = delta,
        steps = steps,
        max_occurrences = config.max_occurrences,
        achieved_epsilon = eps_at(hi),
    );
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SubsampledConfig {
        SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        }
    }

    #[test]
    fn lemma1_bound_matches_geometric_series() {
        assert_eq!(naive_occurrence_bound(10, 3), 1111);
        assert_eq!(naive_occurrence_bound(2, 2), 7);
        assert_eq!(naive_occurrence_bound(1, 3), 4);
        assert_eq!(naive_occurrence_bound(5, 0), 1);
    }

    #[test]
    fn rdp_decreases_with_sigma() {
        let c = config();
        let lo = subsampled_gaussian_rdp(4.0, 0.5, &c);
        let mid = subsampled_gaussian_rdp(4.0, 1.0, &c);
        let hi = subsampled_gaussian_rdp(4.0, 4.0, &c);
        assert!(lo > mid && mid > hi, "{lo} {mid} {hi}");
        assert!(hi > 0.0);
    }

    #[test]
    fn rdp_decreases_with_occurrences_at_fixed_multiplier() {
        // The noise *multiplier* σ scales the sensitivity Δ_g = C·N_g, so
        // at fixed σ a larger N_g injects more absolute noise and the RDP
        // cost per iteration drops. The price of a large N_g is paid in
        // utility (absolute noise at equal ε), covered by
        // `calibrated_sigma_grows_with_occurrence_bound`.
        let small = SubsampledConfig {
            max_occurrences: 2,
            ..config()
        };
        let large = SubsampledConfig {
            max_occurrences: 32,
            ..config()
        };
        let g_small = subsampled_gaussian_rdp(8.0, 1.0, &small);
        let g_large = subsampled_gaussian_rdp(8.0, 1.0, &large);
        assert!(g_large < g_small, "{g_large} >= {g_small}");
    }

    #[test]
    fn rdp_increases_with_batch_size() {
        let small = SubsampledConfig {
            batch_size: 4,
            ..config()
        };
        let large = SubsampledConfig {
            batch_size: 128,
            ..config()
        };
        assert!(
            subsampled_gaussian_rdp(4.0, 1.0, &large) > subsampled_gaussian_rdp(4.0, 1.0, &small)
        );
    }

    #[test]
    fn degenerate_full_sampling_matches_gaussian_rdp() {
        // q = 1, B draws all affected: shift ≤ N_g·C, so γ ≤ α·B²/(2N_g²σ²)
        // with B = N_g reduces to the plain Gaussian α/(2σ²).
        let c = SubsampledConfig {
            max_occurrences: 8,
            batch_size: 8,
            container_size: 8,
        };
        let alpha = 6.0;
        let sigma = 2.0;
        let got = subsampled_gaussian_rdp(alpha, sigma, &c);
        let want = alpha / (2.0 * sigma * sigma);
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn epsilon_composes_linearly_in_gamma() {
        let c = config();
        let mut one = RdpAccountant::default();
        one.compose_subsampled_gaussian(1.0, &c, 1);
        let mut ten = RdpAccountant::default();
        ten.compose_subsampled_gaussian(1.0, &c, 10);
        let (e1, _) = one.epsilon(1e-5);
        let (e10, _) = ten.epsilon(1e-5);
        assert!(e10 > e1);
        // Strong composition: ε grows sublinearly with T at fixed δ.
        assert!(e10 < 10.0 * e1);
    }

    #[test]
    fn theorem1_conversion_formula() {
        // Hand-check: γ=1, α=2, δ=1e-5.
        let eps = rdp_to_epsilon(1.0, 2.0, 1e-5);
        let want = 1.0 + (0.5f64).ln() - ((1e-5f64).ln() + (2f64).ln()) / 1.0;
        assert!((eps - want).abs() < 1e-12);
    }

    #[test]
    fn calibration_hits_target() {
        let c = config();
        for &target in &[1.0, 3.0, 6.0] {
            let sigma = calibrate_sigma(target, 1e-5, &c, 50);
            let mut acct = RdpAccountant::default();
            acct.compose_subsampled_gaussian(sigma, &c, 50);
            let (eps, _) = acct.epsilon(1e-5);
            assert!(
                eps <= target * 1.0001,
                "target {target}: got {eps} with sigma {sigma}"
            );
            // And σ is not wastefully large: slightly smaller σ must violate.
            let mut acct2 = RdpAccountant::default();
            acct2.compose_subsampled_gaussian(sigma * 0.98, &c, 50);
            assert!(acct2.epsilon(1e-5).0 > target * 0.999);
        }
    }

    #[test]
    fn calibrated_sigma_decreases_with_epsilon() {
        let c = config();
        let s1 = calibrate_sigma(1.0, 1e-5, &c, 100);
        let s6 = calibrate_sigma(6.0, 1e-5, &c, 100);
        assert!(s1 > s6, "sigma(eps=1)={s1} should exceed sigma(eps=6)={s6}");
    }

    #[test]
    fn calibrated_sigma_grows_with_occurrence_bound() {
        // The dual-stage scheme's whole point: smaller N_g* = M ⇒ less noise.
        let naive = SubsampledConfig {
            max_occurrences: 100,
            batch_size: 16,
            container_size: 256,
        };
        let freq = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let s_naive = calibrate_sigma(3.0, 1e-5, &naive, 100);
        let s_freq = calibrate_sigma(3.0, 1e-5, &freq, 100);
        // Noise std is σ·C·N_g, so compare absolute noise.
        assert!(
            s_naive * 100.0 > s_freq * 4.0,
            "absolute noise should shrink with the frequency bound"
        );
    }

    #[test]
    fn epsilon_schedule_matches_step_by_step_composition() {
        let c = config();
        let schedule = RdpAccountant::default().epsilon_schedule(1.2, &c, 5, 1e-5);
        assert_eq!(schedule.len(), 5);
        let mut acct = RdpAccountant::default();
        for (step, &(eps, alpha)) in schedule.iter().enumerate() {
            acct.compose_subsampled_gaussian(1.2, &c, 1);
            let (want_eps, want_alpha) = acct.epsilon(1e-5);
            assert!(
                (eps - want_eps).abs() < 1e-9,
                "step {step}: {eps} vs {want_eps}"
            );
            assert_eq!(alpha, want_alpha, "step {step}");
        }
        // Cumulative spend is monotone.
        for w in schedule.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn accountant_serde_round_trip() {
        let mut acct = RdpAccountant::default();
        acct.compose_subsampled_gaussian(1.5, &config(), 7);
        let json = serde_json::to_string(&acct).unwrap();
        let back: RdpAccountant = serde_json::from_str(&json).unwrap();
        assert_eq!(acct.epsilon(1e-5), back.epsilon(1e-5));
    }

    #[test]
    fn adjacency_levels_pick_correct_bounds() {
        assert_eq!(AdjacencyLevel::Node.occurrence_bound(10, Some(3)), 10);
        assert_eq!(AdjacencyLevel::Edge.occurrence_bound(10, Some(3)), 3);
        assert_eq!(AdjacencyLevel::Edge.occurrence_bound(10, None), 10);
        assert_eq!(AdjacencyLevel::Edge.occurrence_bound(2, Some(5)), 2);
    }

    #[test]
    fn edge_level_never_needs_more_noise_than_node_level() {
        // Same ε target, tighter occurrence bound → no more absolute noise.
        let node = SubsampledConfig {
            max_occurrences: 12,
            batch_size: 16,
            container_size: 256,
        };
        let edge = SubsampledConfig {
            max_occurrences: 3,
            batch_size: 16,
            container_size: 256,
        };
        let s_node = calibrate_sigma(3.0, 1e-5, &node, 80);
        let s_edge = calibrate_sigma(3.0, 1e-5, &edge, 80);
        assert!(
            s_edge * 3.0 <= s_node * 12.0,
            "edge-level absolute noise must not exceed node-level"
        );
    }

    #[test]
    #[should_panic(expected = "order must exceed 1")]
    fn rejects_alpha_at_most_one() {
        subsampled_gaussian_rdp(1.0, 1.0, &config());
    }
}
