//! Append-only privacy-budget ledger.
//!
//! Every mechanism invocation in a private training run appends one
//! [`LedgerEntry`] recording the mechanism kind, noise multiplier σ,
//! sensitivity Δ_g, subsampling structure, and the accountant's
//! cumulative `(ε, α)` after the step. The ledger does its own RDP
//! bookkeeping with exactly the same accumulate-then-convert arithmetic
//! as [`RdpAccountant::epsilon_schedule`], so its running ε *is* the
//! accountant's — and because each entry carries the full mechanism
//! parameters, the whole accounting can be replayed offline from the
//! entries alone ([`replay_records`]) or checked in-process
//! ([`PrivacyLedger::verify_replay`]): the reconstructed cumulative ε
//! must match the recorded one to within 1e-9.
//!
//! With an event sink listening at `Debug`, every recorded step also
//! emits a `dp`/`mechanism` event, which
//! [`privim_obs::RunTelemetry::from_jsonl`] aggregates back into
//! [`privim_obs::LedgerRecord`]s.

use serde::{Deserialize, Serialize};

use privim_obs::LedgerRecord;

use crate::rdp::{rdp_to_epsilon, subsampled_gaussian_rdp, SubsampledConfig, DEFAULT_ORDERS};

/// The noise mechanism an entry accounts for. Both kinds are calibrated
/// through the same subsampled-Gaussian RDP bound (Theorem 3); the kind
/// records which sampler actually injected the noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MechanismKind {
    /// Per-coordinate Gaussian noise on the clipped gradient sum.
    SubsampledGaussian,
    /// Symmetric multivariate Laplace noise (the paper's Theorem 2
    /// mechanism), accounted via the same Gaussian RDP machinery.
    SubsampledSml,
}

impl MechanismKind {
    /// Stable string name used in events and telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            MechanismKind::SubsampledGaussian => "subsampled_gaussian",
            MechanismKind::SubsampledSml => "subsampled_sml",
        }
    }
}

/// One recorded mechanism invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Accounted step index (1-based).
    pub step: u64,
    /// Which mechanism ran.
    pub mechanism: MechanismKind,
    /// Noise multiplier σ.
    pub sigma: f64,
    /// Group sensitivity Δ_g = C · N_g (the noise std is σ · Δ_g).
    pub sensitivity: f64,
    /// Subsampling rate q = N_g / m.
    pub sampling_rate: f64,
    /// Subsampling structure (N_g, B, m) the RDP bound was evaluated at.
    pub config: SubsampledConfig,
    /// Target δ of the RDP→(ε, δ) conversion.
    pub delta: f64,
    /// This step's RDP increment γ(α) at the realized best order α.
    pub gamma_step: f64,
    /// Cumulative ε after this step.
    pub epsilon_after: f64,
    /// The order α that realized the ε minimum.
    pub alpha: f64,
}

impl LedgerEntry {
    /// Converts to the telemetry-layer record (the same shape
    /// `dp`/`mechanism` events parse back into).
    pub fn to_record(&self) -> LedgerRecord {
        LedgerRecord {
            step: self.step,
            mechanism: self.mechanism.as_str().to_string(),
            sigma: self.sigma,
            sensitivity: self.sensitivity,
            sampling_rate: self.sampling_rate,
            max_occurrences: self.config.max_occurrences as u64,
            batch_size: self.config.batch_size as u64,
            container_size: self.config.container_size as u64,
            delta: self.delta,
            epsilon_after: self.epsilon_after,
            alpha: self.alpha,
        }
    }
}

/// The append-only ledger plus its internal RDP state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrivacyLedger {
    orders: Vec<f64>,
    gammas: Vec<f64>,
    delta: f64,
    entries: Vec<LedgerEntry>,
}

impl PrivacyLedger {
    /// A fresh ledger over the default α grid, converting at `delta`.
    pub fn new(delta: f64) -> Self {
        PrivacyLedger::with_orders(&DEFAULT_ORDERS, delta)
    }

    /// A fresh ledger over an explicit α grid.
    pub fn with_orders(orders: &[f64], delta: f64) -> Self {
        assert!(
            !orders.is_empty() && orders.iter().all(|&a| a > 1.0),
            "orders must be > 1"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        PrivacyLedger {
            orders: orders.to_vec(),
            gammas: vec![0.0; orders.len()],
            delta,
            entries: Vec::new(),
        }
    }

    /// Records one mechanism invocation: accumulates its RDP cost on
    /// every order, converts to the running `(ε, α)`, appends the entry,
    /// and (with a `Debug` sink listening) emits a `dp`/`mechanism`
    /// event. Returns the cumulative `(ε, α)` after the step.
    pub fn record_step(
        &mut self,
        mechanism: MechanismKind,
        sigma: f64,
        sensitivity: f64,
        config: &SubsampledConfig,
    ) -> (f64, f64) {
        for (gamma, &alpha) in self.gammas.iter_mut().zip(&self.orders) {
            *gamma += subsampled_gaussian_rdp(alpha, sigma, config);
        }
        let (epsilon_after, alpha) = best_epsilon(&self.orders, &self.gammas, self.delta);
        let entry = LedgerEntry {
            step: self.entries.len() as u64 + 1,
            mechanism,
            sigma,
            sensitivity,
            sampling_rate: config.affected_fraction(),
            config: *config,
            delta: self.delta,
            gamma_step: subsampled_gaussian_rdp(alpha, sigma, config),
            epsilon_after,
            alpha,
        };
        privim_obs::debug!(
            "dp",
            "mechanism",
            step = entry.step,
            mechanism = entry.mechanism.as_str(),
            sigma = entry.sigma,
            sensitivity = entry.sensitivity,
            sampling_rate = entry.sampling_rate,
            max_occurrences = entry.config.max_occurrences,
            batch_size = entry.config.batch_size,
            container_size = entry.config.container_size,
            delta = entry.delta,
            gamma_step = entry.gamma_step,
            epsilon_after = entry.epsilon_after,
            alpha = entry.alpha,
        );
        self.entries.push(entry);
        (epsilon_after, alpha)
    }

    /// The recorded entries, in order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// The α grid this ledger accounts over.
    pub fn orders(&self) -> &[f64] {
        &self.orders
    }

    /// Cumulative ε after the last recorded step, if any.
    pub fn cumulative_epsilon(&self) -> Option<f64> {
        self.entries.last().map(|e| e.epsilon_after)
    }

    /// The entries as telemetry-layer records.
    pub fn to_records(&self) -> Vec<LedgerRecord> {
        self.entries.iter().map(LedgerEntry::to_record).collect()
    }

    /// Invariant check: replays the ledger from its entries alone and
    /// verifies the reconstructed cumulative ε matches every recorded
    /// `epsilon_after` to within `tolerance` (use 1e-9). Returns the
    /// first violation as an error.
    pub fn verify_replay(&self, tolerance: f64) -> Result<(), String> {
        let records = self.to_records();
        let replayed = replay_records(&records, &self.orders);
        for (entry, &(eps, _alpha)) in self.entries.iter().zip(&replayed) {
            let diff = (entry.epsilon_after - eps).abs();
            if !(diff <= tolerance) {
                return Err(format!(
                    "ledger replay diverged at step {}: recorded ε = {}, replayed ε = {} \
                     (|Δ| = {diff:e} > {tolerance:e})",
                    entry.step, entry.epsilon_after, eps,
                ));
            }
        }
        Ok(())
    }
}

fn best_epsilon(orders: &[f64], gammas: &[f64], delta: f64) -> (f64, f64) {
    orders
        .iter()
        .zip(gammas)
        .map(|(&alpha, &gamma)| (rdp_to_epsilon(gamma, alpha, delta), alpha))
        .filter(|(eps, _)| eps.is_finite())
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("at least one order yields finite epsilon")
}

/// Replays RDP accounting from telemetry-layer ledger records alone:
/// re-evaluates each step's γ(α) from its recorded `(σ, N_g, B, m)`,
/// accumulates over `orders`, and converts with each record's δ.
/// Returns the cumulative `(ε, best α)` after every record — the values
/// the accountant reported when the run happened, reconstructed without
/// the accountant.
pub fn replay_records(records: &[LedgerRecord], orders: &[f64]) -> Vec<(f64, f64)> {
    let mut gammas = vec![0.0f64; orders.len()];
    let mut out = Vec::with_capacity(records.len());
    for record in records {
        let config = SubsampledConfig {
            max_occurrences: record.max_occurrences as usize,
            batch_size: record.batch_size as usize,
            container_size: record.container_size as usize,
        };
        for (gamma, &alpha) in gammas.iter_mut().zip(orders) {
            *gamma += subsampled_gaussian_rdp(alpha, record.sigma, &config);
        }
        out.push(best_epsilon(orders, &gammas, record.delta));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdp::RdpAccountant;

    fn fill(ledger: &mut PrivacyLedger, sigma: f64, config: &SubsampledConfig, steps: usize) {
        for _ in 0..steps {
            ledger.record_step(MechanismKind::SubsampledGaussian, sigma, 2.0, config);
        }
    }

    #[test]
    fn ledger_tracks_the_accountants_epsilon() {
        let config = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let mut ledger = PrivacyLedger::new(1e-5);
        fill(&mut ledger, 1.2, &config, 5);
        let schedule = RdpAccountant::default().epsilon_schedule(1.2, &config, 5, 1e-5);
        assert_eq!(ledger.entries().len(), 5);
        for (entry, &(eps, alpha)) in ledger.entries().iter().zip(&schedule) {
            assert!(
                (entry.epsilon_after - eps).abs() < 1e-12,
                "step {}: ledger {} vs schedule {eps}",
                entry.step,
                entry.epsilon_after,
            );
            assert_eq!(entry.alpha, alpha);
        }
        assert_eq!(
            ledger.cumulative_epsilon(),
            Some(schedule.last().unwrap().0)
        );
    }

    #[test]
    fn replay_matches_accountant_across_configurations() {
        // Acceptance criterion: replayed cumulative ε within 1e-9 of the
        // accountant's, across at least two (σ, sampling-rate) configs.
        let cases = [
            (
                1.2,
                SubsampledConfig {
                    max_occurrences: 4,
                    batch_size: 16,
                    container_size: 256,
                },
                20,
            ),
            (
                3.5,
                SubsampledConfig {
                    max_occurrences: 12,
                    batch_size: 32,
                    container_size: 96,
                },
                35,
            ),
            (
                0.8,
                SubsampledConfig {
                    max_occurrences: 2,
                    batch_size: 8,
                    container_size: 1024,
                },
                50,
            ),
        ];
        for (sigma, config, steps) in cases {
            let mut ledger = PrivacyLedger::new(1e-5);
            fill(&mut ledger, sigma, &config, steps);
            ledger.verify_replay(1e-9).expect("replay invariant");

            // And against the accountant's one-shot composition.
            let mut acct = RdpAccountant::default();
            acct.compose_subsampled_gaussian(sigma, &config, steps);
            let (acct_eps, _) = acct.epsilon(1e-5);
            let replayed = replay_records(&ledger.to_records(), ledger.orders());
            let (replay_eps, _) = *replayed.last().unwrap();
            assert!(
                (acct_eps - replay_eps).abs() < 1e-9,
                "σ={sigma} q={}: accountant ε = {acct_eps}, replayed ε = {replay_eps}",
                config.affected_fraction(),
            );
        }
    }

    #[test]
    fn replay_handles_mixed_mechanism_parameters() {
        // σ changing mid-run (e.g. adaptive schedules) must replay too.
        let c1 = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let c2 = SubsampledConfig {
            max_occurrences: 8,
            batch_size: 16,
            container_size: 128,
        };
        let mut ledger = PrivacyLedger::new(1e-6);
        fill(&mut ledger, 1.5, &c1, 10);
        fill(&mut ledger, 2.5, &c2, 10);
        assert_eq!(ledger.entries().len(), 20);
        ledger.verify_replay(1e-9).expect("mixed-parameter replay");
        // ε strictly grows across the whole run.
        for w in ledger.entries().windows(2) {
            assert!(w[1].epsilon_after > w[0].epsilon_after);
        }
    }

    #[test]
    fn verify_replay_detects_tampering() {
        let config = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let mut ledger = PrivacyLedger::new(1e-5);
        fill(&mut ledger, 1.2, &config, 3);
        ledger.entries[1].epsilon_after += 1e-6;
        let err = ledger.verify_replay(1e-9).unwrap_err();
        assert!(err.contains("step 2"), "{err}");
    }

    #[test]
    fn entries_carry_the_mechanism_parameters() {
        let config = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let mut ledger = PrivacyLedger::new(1e-5);
        ledger.record_step(MechanismKind::SubsampledSml, 2.0, 3.5, &config);
        let e = &ledger.entries()[0];
        assert_eq!(e.step, 1);
        assert_eq!(e.mechanism, MechanismKind::SubsampledSml);
        assert_eq!(e.sigma, 2.0);
        assert_eq!(e.sensitivity, 3.5);
        assert!((e.sampling_rate - 4.0 / 256.0).abs() < 1e-15);
        assert!(e.gamma_step > 0.0);
        assert!(e.epsilon_after > 0.0);
        assert!(e.alpha > 1.0);
        let record = e.to_record();
        assert_eq!(record.mechanism, "subsampled_sml");
        assert_eq!(record.max_occurrences, 4);
        assert_eq!(record.epsilon_after, e.epsilon_after);
    }
}
