//! Append-only privacy-budget ledger.
//!
//! Every mechanism invocation in a private training run appends one
//! [`LedgerEntry`] recording the mechanism kind, noise multiplier σ,
//! sensitivity Δ_g, subsampling structure, and the accountant's
//! cumulative `(ε, α)` after the step. The ledger does its own RDP
//! bookkeeping with exactly the same accumulate-then-convert arithmetic
//! as [`RdpAccountant::epsilon_schedule`], so its running ε *is* the
//! accountant's — and because each entry carries the full mechanism
//! parameters, the whole accounting can be replayed offline from the
//! entries alone ([`replay_records`]) or checked in-process
//! ([`PrivacyLedger::verify_replay`]): the reconstructed cumulative ε
//! must match the recorded one to within 1e-9.
//!
//! With an event sink listening at `Debug`, every recorded step also
//! emits a `dp`/`mechanism` event, which
//! [`privim_obs::RunTelemetry::from_jsonl`] aggregates back into
//! [`privim_obs::LedgerRecord`]s.

use serde::{Deserialize, Serialize};

use privim_obs::LedgerRecord;

use crate::rdp::{
    rdp_to_epsilon, subsampled_gaussian_rdp, RdpAccountant, SubsampledConfig, DEFAULT_ORDERS,
};

/// Magic + version prefix of the binary ledger format.
const LEDGER_MAGIC: &[u8; 4] = b"PVLG";
const LEDGER_VERSION: u32 = 1;

/// The noise mechanism an entry accounts for. Both kinds are calibrated
/// through the same subsampled-Gaussian RDP bound (Theorem 3); the kind
/// records which sampler actually injected the noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MechanismKind {
    /// Per-coordinate Gaussian noise on the clipped gradient sum.
    SubsampledGaussian,
    /// Symmetric multivariate Laplace noise (the paper's Theorem 2
    /// mechanism), accounted via the same Gaussian RDP machinery.
    SubsampledSml,
}

impl MechanismKind {
    /// Stable string name used in events and telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            MechanismKind::SubsampledGaussian => "subsampled_gaussian",
            MechanismKind::SubsampledSml => "subsampled_sml",
        }
    }

    /// Stable wire code used by the binary ledger format.
    pub fn code(self) -> u8 {
        match self {
            MechanismKind::SubsampledGaussian => 0,
            MechanismKind::SubsampledSml => 1,
        }
    }

    /// Inverse of [`MechanismKind::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(MechanismKind::SubsampledGaussian),
            1 => Some(MechanismKind::SubsampledSml),
            _ => None,
        }
    }
}

/// One recorded mechanism invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Accounted step index (1-based).
    pub step: u64,
    /// Which mechanism ran.
    pub mechanism: MechanismKind,
    /// Noise multiplier σ.
    pub sigma: f64,
    /// Group sensitivity Δ_g = C · N_g (the noise std is σ · Δ_g).
    pub sensitivity: f64,
    /// Subsampling rate q = N_g / m.
    pub sampling_rate: f64,
    /// Subsampling structure (N_g, B, m) the RDP bound was evaluated at.
    pub config: SubsampledConfig,
    /// Target δ of the RDP→(ε, δ) conversion.
    pub delta: f64,
    /// This step's RDP increment γ(α) at the realized best order α.
    pub gamma_step: f64,
    /// Cumulative ε after this step.
    pub epsilon_after: f64,
    /// The order α that realized the ε minimum.
    pub alpha: f64,
}

impl LedgerEntry {
    /// Converts to the telemetry-layer record (the same shape
    /// `dp`/`mechanism` events parse back into).
    pub fn to_record(&self) -> LedgerRecord {
        LedgerRecord {
            step: self.step,
            mechanism: self.mechanism.as_str().to_string(),
            sigma: self.sigma,
            sensitivity: self.sensitivity,
            sampling_rate: self.sampling_rate,
            max_occurrences: self.config.max_occurrences as u64,
            batch_size: self.config.batch_size as u64,
            container_size: self.config.container_size as u64,
            delta: self.delta,
            epsilon_after: self.epsilon_after,
            alpha: self.alpha,
        }
    }
}

/// The append-only ledger plus its internal RDP state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrivacyLedger {
    orders: Vec<f64>,
    gammas: Vec<f64>,
    delta: f64,
    entries: Vec<LedgerEntry>,
}

impl PrivacyLedger {
    /// A fresh ledger over the default α grid, converting at `delta`.
    pub fn new(delta: f64) -> Self {
        PrivacyLedger::with_orders(&DEFAULT_ORDERS, delta)
    }

    /// A fresh ledger over an explicit α grid.
    pub fn with_orders(orders: &[f64], delta: f64) -> Self {
        assert!(
            !orders.is_empty() && orders.iter().all(|&a| a > 1.0),
            "orders must be > 1"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        PrivacyLedger {
            orders: orders.to_vec(),
            gammas: vec![0.0; orders.len()],
            delta,
            entries: Vec::new(),
        }
    }

    /// Records one mechanism invocation: accumulates its RDP cost on
    /// every order, converts to the running `(ε, α)`, appends the entry,
    /// and (with a `Debug` sink listening) emits a `dp`/`mechanism`
    /// event. Returns the cumulative `(ε, α)` after the step.
    pub fn record_step(
        &mut self,
        mechanism: MechanismKind,
        sigma: f64,
        sensitivity: f64,
        config: &SubsampledConfig,
    ) -> (f64, f64) {
        for (gamma, &alpha) in self.gammas.iter_mut().zip(&self.orders) {
            *gamma += subsampled_gaussian_rdp(alpha, sigma, config);
        }
        let (epsilon_after, alpha) = best_epsilon(&self.orders, &self.gammas, self.delta);
        let entry = LedgerEntry {
            step: self.entries.len() as u64 + 1,
            mechanism,
            sigma,
            sensitivity,
            sampling_rate: config.affected_fraction(),
            config: *config,
            delta: self.delta,
            gamma_step: subsampled_gaussian_rdp(alpha, sigma, config),
            epsilon_after,
            alpha,
        };
        privim_obs::debug!(
            "dp",
            "mechanism",
            step = entry.step,
            mechanism = entry.mechanism.as_str(),
            sigma = entry.sigma,
            sensitivity = entry.sensitivity,
            sampling_rate = entry.sampling_rate,
            max_occurrences = entry.config.max_occurrences,
            batch_size = entry.config.batch_size,
            container_size = entry.config.container_size,
            delta = entry.delta,
            gamma_step = entry.gamma_step,
            epsilon_after = entry.epsilon_after,
            alpha = entry.alpha,
        );
        self.entries.push(entry);
        (epsilon_after, alpha)
    }

    /// The recorded entries, in order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// The α grid this ledger accounts over.
    pub fn orders(&self) -> &[f64] {
        &self.orders
    }

    /// The accumulated γ(α) values, parallel to [`PrivacyLedger::orders`]
    /// — the ledger's internal RDP state.
    pub fn gammas(&self) -> &[f64] {
        &self.gammas
    }

    /// The δ this ledger converts at.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// An [`RdpAccountant`] seeded with this ledger's exact RDP state:
    /// composing further steps on it continues the run's accounting
    /// bit-for-bit.
    pub fn accountant(&self) -> RdpAccountant {
        RdpAccountant::with_state(self.orders.clone(), self.gammas.clone())
    }

    /// Cumulative ε after the last recorded step, if any.
    pub fn cumulative_epsilon(&self) -> Option<f64> {
        self.entries.last().map(|e| e.epsilon_after)
    }

    /// The entries as telemetry-layer records.
    pub fn to_records(&self) -> Vec<LedgerRecord> {
        self.entries.iter().map(LedgerEntry::to_record).collect()
    }

    /// Invariant check: replays the ledger from its entries alone and
    /// verifies the reconstructed cumulative ε matches every recorded
    /// `epsilon_after` to within `tolerance` (use 1e-9). Returns the
    /// first violation as an error.
    pub fn verify_replay(&self, tolerance: f64) -> Result<(), String> {
        let records = self.to_records();
        let replayed = replay_records(&records, &self.orders);
        for (entry, &(eps, _alpha)) in self.entries.iter().zip(&replayed) {
            let diff = (entry.epsilon_after - eps).abs();
            if !(diff <= tolerance) {
                return Err(format!(
                    "ledger replay diverged at step {}: recorded ε = {}, replayed ε = {} \
                     (|Δ| = {diff:e} > {tolerance:e})",
                    entry.step, entry.epsilon_after, eps,
                ));
            }
        }
        Ok(())
    }

    /// Encodes the full ledger — α grid, accumulated γ state, δ, and
    /// every entry — in a versioned little-endian binary format. The
    /// encoding is lossless (`f64::to_bits`), so a decoded ledger
    /// continues accounting bit-for-bit and [`PrivacyLedger::verify_replay`]
    /// holds on it exactly as on the original. No serde involved: the
    /// format is consumed by the crash-safe checkpoint store, which
    /// checksums it as part of the checkpoint payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.orders.len() * 16 + self.entries.len() * 96);
        out.extend_from_slice(LEDGER_MAGIC);
        out.extend_from_slice(&LEDGER_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.orders.len() as u64).to_le_bytes());
        for &alpha in &self.orders {
            out.extend_from_slice(&alpha.to_bits().to_le_bytes());
        }
        for &gamma in &self.gammas {
            out.extend_from_slice(&gamma.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&self.delta.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.step.to_le_bytes());
            out.push(e.mechanism.code());
            for v in [
                e.sigma,
                e.sensitivity,
                e.sampling_rate,
                e.delta,
                e.gamma_step,
                e.epsilon_after,
                e.alpha,
            ] {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            for v in [
                e.config.max_occurrences as u64,
                e.config.batch_size as u64,
                e.config.container_size as u64,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a ledger encoded by [`PrivacyLedger::to_bytes`],
    /// validating structure (magic, version, lengths, mechanism codes)
    /// and invariants (α > 1, finite non-negative γ, δ ∈ (0, 1)). This
    /// checks *shape*; budget exactness is the caller's job via
    /// [`PrivacyLedger::verify_replay`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != LEDGER_MAGIC {
            return Err("bad ledger magic".into());
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
        if version != LEDGER_VERSION {
            return Err(format!(
                "unsupported ledger version {version} (expected {LEDGER_VERSION})"
            ));
        }
        let n_orders = r.u64()? as usize;
        if n_orders == 0 || n_orders > 1 << 16 {
            return Err(format!("implausible order count {n_orders}"));
        }
        let orders: Vec<f64> = (0..n_orders).map(|_| r.f64()).collect::<Result<_, _>>()?;
        let gammas: Vec<f64> = (0..n_orders).map(|_| r.f64()).collect::<Result<_, _>>()?;
        if orders.iter().any(|&a| !(a > 1.0)) {
            return Err("ledger orders must be > 1".into());
        }
        if gammas.iter().any(|&g| !(g.is_finite() && g >= 0.0)) {
            return Err("ledger gammas must be finite and non-negative".into());
        }
        let delta = r.f64()?;
        if !(delta > 0.0 && delta < 1.0) {
            return Err(format!("ledger delta {delta} outside (0, 1)"));
        }
        let n_entries = r.u64()? as usize;
        if n_entries > 1 << 32 {
            return Err(format!("implausible entry count {n_entries}"));
        }
        let mut entries = Vec::with_capacity(n_entries.min(1 << 20));
        for i in 0..n_entries {
            let step = r.u64()?;
            let code = r.take(1)?[0];
            let mechanism = MechanismKind::from_code(code)
                .ok_or_else(|| format!("entry {i}: unknown mechanism code {code}"))?;
            let sigma = r.f64()?;
            let sensitivity = r.f64()?;
            let sampling_rate = r.f64()?;
            let entry_delta = r.f64()?;
            let gamma_step = r.f64()?;
            let epsilon_after = r.f64()?;
            let alpha = r.f64()?;
            let max_occurrences = r.u64()? as usize;
            let batch_size = r.u64()? as usize;
            let container_size = r.u64()? as usize;
            if step != i as u64 + 1 {
                return Err(format!("entry {i}: step {step} out of sequence"));
            }
            entries.push(LedgerEntry {
                step,
                mechanism,
                sigma,
                sensitivity,
                sampling_rate,
                config: SubsampledConfig {
                    max_occurrences,
                    batch_size,
                    container_size,
                },
                delta: entry_delta,
                gamma_step,
                epsilon_after,
                alpha,
            });
        }
        if r.pos != bytes.len() {
            return Err(format!(
                "trailing garbage: {} bytes after the last entry",
                bytes.len() - r.pos
            ));
        }
        Ok(PrivacyLedger {
            orders,
            gammas,
            delta,
            entries,
        })
    }
}

/// Bounds-checked little-endian cursor for [`PrivacyLedger::from_bytes`].
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err(format!(
                "truncated ledger: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
}

fn best_epsilon(orders: &[f64], gammas: &[f64], delta: f64) -> (f64, f64) {
    orders
        .iter()
        .zip(gammas)
        .map(|(&alpha, &gamma)| (rdp_to_epsilon(gamma, alpha, delta), alpha))
        .filter(|(eps, _)| eps.is_finite())
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("at least one order yields finite epsilon")
}

/// Replays RDP accounting from telemetry-layer ledger records alone:
/// re-evaluates each step's γ(α) from its recorded `(σ, N_g, B, m)`,
/// accumulates over `orders`, and converts with each record's δ.
/// Returns the cumulative `(ε, best α)` after every record — the values
/// the accountant reported when the run happened, reconstructed without
/// the accountant.
pub fn replay_records(records: &[LedgerRecord], orders: &[f64]) -> Vec<(f64, f64)> {
    let mut gammas = vec![0.0f64; orders.len()];
    let mut out = Vec::with_capacity(records.len());
    for record in records {
        let config = SubsampledConfig {
            max_occurrences: record.max_occurrences as usize,
            batch_size: record.batch_size as usize,
            container_size: record.container_size as usize,
        };
        for (gamma, &alpha) in gammas.iter_mut().zip(orders) {
            *gamma += subsampled_gaussian_rdp(alpha, record.sigma, &config);
        }
        out.push(best_epsilon(orders, &gammas, record.delta));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdp::RdpAccountant;

    fn fill(ledger: &mut PrivacyLedger, sigma: f64, config: &SubsampledConfig, steps: usize) {
        for _ in 0..steps {
            ledger.record_step(MechanismKind::SubsampledGaussian, sigma, 2.0, config);
        }
    }

    #[test]
    fn ledger_tracks_the_accountants_epsilon() {
        let config = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let mut ledger = PrivacyLedger::new(1e-5);
        fill(&mut ledger, 1.2, &config, 5);
        let schedule = RdpAccountant::default().epsilon_schedule(1.2, &config, 5, 1e-5);
        assert_eq!(ledger.entries().len(), 5);
        for (entry, &(eps, alpha)) in ledger.entries().iter().zip(&schedule) {
            assert!(
                (entry.epsilon_after - eps).abs() < 1e-12,
                "step {}: ledger {} vs schedule {eps}",
                entry.step,
                entry.epsilon_after,
            );
            assert_eq!(entry.alpha, alpha);
        }
        assert_eq!(
            ledger.cumulative_epsilon(),
            Some(schedule.last().unwrap().0)
        );
    }

    #[test]
    fn replay_matches_accountant_across_configurations() {
        // Acceptance criterion: replayed cumulative ε within 1e-9 of the
        // accountant's, across at least two (σ, sampling-rate) configs.
        let cases = [
            (
                1.2,
                SubsampledConfig {
                    max_occurrences: 4,
                    batch_size: 16,
                    container_size: 256,
                },
                20,
            ),
            (
                3.5,
                SubsampledConfig {
                    max_occurrences: 12,
                    batch_size: 32,
                    container_size: 96,
                },
                35,
            ),
            (
                0.8,
                SubsampledConfig {
                    max_occurrences: 2,
                    batch_size: 8,
                    container_size: 1024,
                },
                50,
            ),
        ];
        for (sigma, config, steps) in cases {
            let mut ledger = PrivacyLedger::new(1e-5);
            fill(&mut ledger, sigma, &config, steps);
            ledger.verify_replay(1e-9).expect("replay invariant");

            // And against the accountant's one-shot composition.
            let mut acct = RdpAccountant::default();
            acct.compose_subsampled_gaussian(sigma, &config, steps);
            let (acct_eps, _) = acct.epsilon(1e-5);
            let replayed = replay_records(&ledger.to_records(), ledger.orders());
            let (replay_eps, _) = *replayed.last().unwrap();
            assert!(
                (acct_eps - replay_eps).abs() < 1e-9,
                "σ={sigma} q={}: accountant ε = {acct_eps}, replayed ε = {replay_eps}",
                config.affected_fraction(),
            );
        }
    }

    #[test]
    fn replay_handles_mixed_mechanism_parameters() {
        // σ changing mid-run (e.g. adaptive schedules) must replay too.
        let c1 = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let c2 = SubsampledConfig {
            max_occurrences: 8,
            batch_size: 16,
            container_size: 128,
        };
        let mut ledger = PrivacyLedger::new(1e-6);
        fill(&mut ledger, 1.5, &c1, 10);
        fill(&mut ledger, 2.5, &c2, 10);
        assert_eq!(ledger.entries().len(), 20);
        ledger.verify_replay(1e-9).expect("mixed-parameter replay");
        // ε strictly grows across the whole run.
        for w in ledger.entries().windows(2) {
            assert!(w[1].epsilon_after > w[0].epsilon_after);
        }
    }

    #[test]
    fn verify_replay_detects_tampering() {
        let config = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let mut ledger = PrivacyLedger::new(1e-5);
        fill(&mut ledger, 1.2, &config, 3);
        ledger.entries[1].epsilon_after += 1e-6;
        let err = ledger.verify_replay(1e-9).unwrap_err();
        assert!(err.contains("step 2"), "{err}");
    }

    #[test]
    fn binary_round_trip_is_lossless() {
        let config = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let mut ledger = PrivacyLedger::new(1e-5);
        fill(&mut ledger, 1.2, &config, 7);
        ledger.record_step(MechanismKind::SubsampledSml, 2.5, 3.0, &config);
        let bytes = ledger.to_bytes();
        let back = PrivacyLedger::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.entries(), ledger.entries());
        assert_eq!(back.orders(), ledger.orders());
        assert_eq!(back.delta(), ledger.delta());
        // γ state restores bit-for-bit …
        for (a, b) in ledger.gammas().iter().zip(back.gammas()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        back.verify_replay(1e-9).expect("decoded ledger replays");
        // … so continuing the run on the decoded ledger matches exactly.
        let mut cont_orig = ledger.clone();
        let mut cont_back = back;
        let a = cont_orig.record_step(MechanismKind::SubsampledGaussian, 1.2, 2.0, &config);
        let b = cont_back.record_step(MechanismKind::SubsampledGaussian, 1.2, 2.0, &config);
        assert_eq!(a.0.to_bits(), b.0.to_bits());
    }

    #[test]
    fn decode_rejects_corruption_never_panics() {
        let config = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let mut ledger = PrivacyLedger::new(1e-5);
        fill(&mut ledger, 1.2, &config, 3);
        let bytes = ledger.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(PrivacyLedger::from_bytes(&bad).is_err());
        // Every truncation point decodes to a clean error.
        for cut in 0..bytes.len() {
            assert!(
                PrivacyLedger::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Trailing garbage is detected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(PrivacyLedger::from_bytes(&padded)
            .unwrap_err()
            .contains("trailing"));
        // An unknown mechanism code is typed, not a panic.
        let mut wrong = bytes;
        // First entry's mechanism byte sits after magic+version+counts+grids.
        let mech_offset = 4 + 4 + 8 + 20 * 8 * 2 + 8 + 8 + 8;
        wrong[mech_offset] = 9;
        assert!(PrivacyLedger::from_bytes(&wrong)
            .unwrap_err()
            .contains("mechanism code"));
    }

    #[test]
    fn accountant_resumes_from_ledger_state() {
        let config = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let mut ledger = PrivacyLedger::new(1e-5);
        fill(&mut ledger, 1.2, &config, 10);
        // Accountant seeded from ledger state + 10 more steps must equal
        // a fresh accountant doing all 20.
        let mut resumed = ledger.accountant();
        resumed.compose_subsampled_gaussian(1.2, &config, 10);
        let mut full = RdpAccountant::default();
        full.compose_subsampled_gaussian(1.2, &config, 20);
        let (eps_resumed, _) = resumed.epsilon(1e-5);
        let (eps_full, _) = full.epsilon(1e-5);
        assert!(
            (eps_resumed - eps_full).abs() < 1e-12,
            "resumed {eps_resumed} vs full {eps_full}"
        );
    }

    #[test]
    fn entries_carry_the_mechanism_parameters() {
        let config = SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        };
        let mut ledger = PrivacyLedger::new(1e-5);
        ledger.record_step(MechanismKind::SubsampledSml, 2.0, 3.5, &config);
        let e = &ledger.entries()[0];
        assert_eq!(e.step, 1);
        assert_eq!(e.mechanism, MechanismKind::SubsampledSml);
        assert_eq!(e.sigma, 2.0);
        assert_eq!(e.sensitivity, 3.5);
        assert!((e.sampling_rate - 4.0 / 256.0).abs() < 1e-15);
        assert!(e.gamma_step > 0.0);
        assert!(e.epsilon_after > 0.0);
        assert!(e.alpha > 1.0);
        let record = e.to_record();
        assert_eq!(record.mechanism, "subsampled_sml");
        assert_eq!(record.max_occurrences, 4);
        assert_eq!(record.epsilon_after, e.epsilon_after);
    }
}
