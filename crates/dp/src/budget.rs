//! The live ε budget guard over the [`PrivacyLedger`].
//!
//! The ledger is append-only forensics: it proves, after the fact, what
//! a run spent. [`BudgetGuard`] turns the same accountant arithmetic
//! into a *pre-step* gate: before every noisy step it projects the
//! cumulative ε the step would commit — by cloning the ledger's
//! accountant state and composing exactly one more iteration, which is
//! bit-for-bit the number [`PrivacyLedger::record_step`] would record
//! (`γ += 1.0 · γ_step` is exact in IEEE 754) — and refuses the step if
//! that projection exceeds the budget. The refusal is therefore
//! deterministic and exact: a run halts at the same step with the same
//! logged ε on every replay, and a resumed run under the same budget
//! refuses before taking any further step.
//!
//! The guard itself never mutates the ledger and never draws
//! randomness, so arming it leaves seeded runs bit-identical.

use crate::ledger::PrivacyLedger;
use crate::rdp::SubsampledConfig;

/// Default fraction of the budget at which [`BudgetGuard`] emits its
/// one-shot warning.
pub const DEFAULT_WARN_FRACTION: f64 = 0.8;

/// Upper bound on the steps-to-exhaustion projection (beyond this the
/// budget is effectively unconstrained for the run at hand).
const MAX_PROJECTED_STEPS: u64 = 100_000;

/// Verdict for the next prospective noisy step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetDecision {
    /// The step fits: taking it reaches `projected ≤ budget`.
    Proceed {
        /// Cumulative ε after the prospective step.
        projected: f64,
    },
    /// The step fits but crosses the warning fraction. Returned at most
    /// once per guard; subsequent fitting steps are `Proceed`.
    Warn {
        /// Cumulative ε after the prospective step.
        projected: f64,
        /// Exact further steps (beyond this one) before the guard halts.
        steps_remaining: u64,
    },
    /// Taking the step would overspend: the run must halt *now*, with
    /// `spent` (the accountant-exact ε already committed) untouched.
    Halt {
        /// Cumulative ε committed so far (exact; 0.0 for an empty ledger).
        spent: f64,
        /// Cumulative ε the refused step would have reached.
        projected: f64,
    },
}

/// A hard ε ceiling enforced before every noisy step.
#[derive(Debug, Clone)]
pub struct BudgetGuard {
    budget: f64,
    warn_fraction: f64,
    warned: bool,
}

impl BudgetGuard {
    /// A guard halting any step that would push the cumulative ε above
    /// `budget`, warning once past [`DEFAULT_WARN_FRACTION`] of it.
    pub fn new(budget: f64) -> BudgetGuard {
        BudgetGuard::with_warn_fraction(budget, DEFAULT_WARN_FRACTION)
    }

    /// A guard with an explicit warning fraction in `(0, 1]`.
    pub fn with_warn_fraction(budget: f64, warn_fraction: f64) -> BudgetGuard {
        assert!(
            budget.is_finite() && budget > 0.0,
            "epsilon budget must be positive and finite"
        );
        assert!(
            warn_fraction > 0.0 && warn_fraction <= 1.0,
            "warn fraction must be in (0, 1]"
        );
        BudgetGuard {
            budget,
            warn_fraction,
            warned: false,
        }
    }

    /// The enforced ceiling.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The one-shot warning fraction.
    pub fn warn_fraction(&self) -> f64 {
        self.warn_fraction
    }

    /// The cumulative ε the ledger would report after one more
    /// subsampled-Gaussian step at `(sigma, config)` — exactly the value
    /// [`PrivacyLedger::record_step`] would append. Does not mutate the
    /// ledger.
    pub fn project_next(ledger: &PrivacyLedger, sigma: f64, config: &SubsampledConfig) -> f64 {
        let mut acct = ledger.accountant();
        acct.compose_subsampled_gaussian(sigma, config, 1);
        acct.epsilon(ledger.delta()).0
    }

    /// Exact per-step ε burn rate right now: the marginal ε of the next
    /// step given everything already committed. (RDP composition makes
    /// this shrink as the run progresses — ε grows sublinearly in T.)
    pub fn burn_rate(ledger: &PrivacyLedger, sigma: f64, config: &SubsampledConfig) -> f64 {
        let spent = ledger.cumulative_epsilon().unwrap_or(0.0);
        BudgetGuard::project_next(ledger, sigma, config) - spent
    }

    /// Exact number of further steps at `(sigma, config)` the budget
    /// still admits, by simulating composition forward (capped at
    /// [`MAX_PROJECTED_STEPS`]). 0 means the very next step must halt.
    pub fn steps_remaining(
        &self,
        ledger: &PrivacyLedger,
        sigma: f64,
        config: &SubsampledConfig,
    ) -> u64 {
        let mut acct = ledger.accountant();
        let delta = ledger.delta();
        for taken in 0..MAX_PROJECTED_STEPS {
            acct.compose_subsampled_gaussian(sigma, config, 1);
            if acct.epsilon(delta).0 > self.budget {
                return taken;
            }
        }
        MAX_PROJECTED_STEPS
    }

    /// Gate for the next prospective noisy step. Call *before* sampling
    /// noise or mutating any state; on [`BudgetDecision::Halt`] the step
    /// must not be taken.
    pub fn check_next_step(
        &mut self,
        ledger: &PrivacyLedger,
        sigma: f64,
        config: &SubsampledConfig,
    ) -> BudgetDecision {
        let projected = BudgetGuard::project_next(ledger, sigma, config);
        if projected > self.budget {
            return BudgetDecision::Halt {
                spent: ledger.cumulative_epsilon().unwrap_or(0.0),
                projected,
            };
        }
        if !self.warned && projected >= self.warn_fraction * self.budget {
            self.warned = true;
            // steps_remaining counts from the current ledger state, which
            // still includes the step being approved here — exclude it.
            return BudgetDecision::Warn {
                projected,
                steps_remaining: self
                    .steps_remaining(ledger, sigma, config)
                    .saturating_sub(1),
            };
        }
        BudgetDecision::Proceed { projected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::MechanismKind;

    fn config() -> SubsampledConfig {
        SubsampledConfig {
            max_occurrences: 4,
            batch_size: 16,
            container_size: 256,
        }
    }

    const SIGMA: f64 = 1.5;
    const DELTA: f64 = 1e-5;

    /// ε after each of `steps` recorded steps on a fresh ledger.
    fn epsilon_trace(steps: usize) -> Vec<f64> {
        let mut ledger = PrivacyLedger::new(DELTA);
        (0..steps)
            .map(|_| {
                ledger
                    .record_step(MechanismKind::SubsampledGaussian, SIGMA, 1.0, &config())
                    .0
            })
            .collect()
    }

    #[test]
    fn projection_is_bit_identical_to_recording_the_step() {
        let mut ledger = PrivacyLedger::new(DELTA);
        for _ in 0..7 {
            let projected = BudgetGuard::project_next(&ledger, SIGMA, &config());
            let (recorded, _) =
                ledger.record_step(MechanismKind::SubsampledGaussian, SIGMA, 1.0, &config());
            assert_eq!(
                projected.to_bits(),
                recorded.to_bits(),
                "projection must equal the recorded ε bit-for-bit"
            );
        }
    }

    #[test]
    fn guard_halts_exactly_before_the_first_overspending_step() {
        let trace = epsilon_trace(10);
        // Budget strictly between ε after 6 and ε after 7 steps.
        let budget = 0.5 * (trace[5] + trace[6]);
        let mut guard = BudgetGuard::new(budget);
        let mut ledger = PrivacyLedger::new(DELTA);
        let mut steps_taken = 0usize;
        loop {
            match guard.check_next_step(&ledger, SIGMA, &config()) {
                BudgetDecision::Halt { spent, projected } => {
                    assert_eq!(steps_taken, 6, "halt before the 7th step");
                    assert_eq!(spent.to_bits(), trace[5].to_bits(), "spent ε is exact");
                    assert_eq!(
                        projected.to_bits(),
                        trace[6].to_bits(),
                        "refused step's ε is exact"
                    );
                    break;
                }
                BudgetDecision::Proceed { projected } | BudgetDecision::Warn { projected, .. } => {
                    let (eps, _) = ledger.record_step(
                        MechanismKind::SubsampledGaussian,
                        SIGMA,
                        1.0,
                        &config(),
                    );
                    assert_eq!(projected.to_bits(), eps.to_bits());
                    steps_taken += 1;
                    assert!(steps_taken <= 10, "guard never halted");
                }
            }
        }
        // The same budget against the same ledger keeps refusing: a
        // resumed run takes zero further steps.
        let mut resumed = BudgetGuard::new(budget);
        assert!(matches!(
            resumed.check_next_step(&ledger, SIGMA, &config()),
            BudgetDecision::Halt { .. }
        ));
    }

    #[test]
    fn budget_at_or_above_final_epsilon_never_halts() {
        let trace = epsilon_trace(5);
        let mut guard = BudgetGuard::new(*trace.last().unwrap());
        let mut ledger = PrivacyLedger::new(DELTA);
        for _ in 0..5 {
            assert!(!matches!(
                guard.check_next_step(&ledger, SIGMA, &config()),
                BudgetDecision::Halt { .. }
            ));
            ledger.record_step(MechanismKind::SubsampledGaussian, SIGMA, 1.0, &config());
        }
        // The budget is spent to the last bit; one more step must halt.
        assert!(matches!(
            guard.check_next_step(&ledger, SIGMA, &config()),
            BudgetDecision::Halt { .. }
        ));
    }

    #[test]
    fn warning_fires_once_at_the_configured_fraction() {
        let trace = epsilon_trace(10);
        let budget = trace[9] * 1.0000001; // all 10 steps fit
        let mut guard = BudgetGuard::with_warn_fraction(budget, 0.5);
        let mut ledger = PrivacyLedger::new(DELTA);
        let mut warned_at = None;
        for step in 0..10 {
            match guard.check_next_step(&ledger, SIGMA, &config()) {
                BudgetDecision::Warn {
                    projected,
                    steps_remaining,
                } => {
                    assert!(warned_at.is_none(), "warning must be one-shot");
                    assert!(projected >= 0.5 * budget);
                    warned_at = Some(step);
                    // After this step, exactly 10 - (step + 1) more fit.
                    assert_eq!(steps_remaining, (10 - step - 1) as u64);
                }
                BudgetDecision::Proceed { projected } => {
                    if warned_at.is_none() {
                        assert!(projected < 0.5 * budget);
                    }
                }
                BudgetDecision::Halt { .. } => panic!("budget fits all steps"),
            }
            ledger.record_step(MechanismKind::SubsampledGaussian, SIGMA, 1.0, &config());
        }
        let at = warned_at.expect("crossing 50% must warn");
        assert!(trace[at] >= 0.5 * budget && (at == 0 || trace[at - 1] < 0.5 * budget));
    }

    #[test]
    fn steps_remaining_matches_step_by_step_composition() {
        let trace = epsilon_trace(20);
        let budget = 0.5 * (trace[12] + trace[13]); // 13 steps fit
        let guard = BudgetGuard::new(budget);
        let ledger = PrivacyLedger::new(DELTA);
        assert_eq!(guard.steps_remaining(&ledger, SIGMA, &config()), 13);
        // After committing 5 steps, 8 remain.
        let mut spent = PrivacyLedger::new(DELTA);
        for _ in 0..5 {
            spent.record_step(MechanismKind::SubsampledGaussian, SIGMA, 1.0, &config());
        }
        assert_eq!(guard.steps_remaining(&spent, SIGMA, &config()), 8);
    }

    #[test]
    fn burn_rate_is_positive_and_shrinks_under_composition() {
        let mut ledger = PrivacyLedger::new(DELTA);
        let first = BudgetGuard::burn_rate(&ledger, SIGMA, &config());
        assert!(first > 0.0);
        for _ in 0..10 {
            ledger.record_step(MechanismKind::SubsampledGaussian, SIGMA, 1.0, &config());
        }
        let later = BudgetGuard::burn_rate(&ledger, SIGMA, &config());
        assert!(later > 0.0 && later < first, "{later} !< {first}");
    }

    #[test]
    #[should_panic(expected = "epsilon budget must be positive")]
    fn rejects_nonpositive_budget() {
        BudgetGuard::new(0.0);
    }
}
