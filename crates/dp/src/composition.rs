//! Classical (ε, δ)-DP composition theorems, complementing the tighter
//! RDP-based accounting in [`crate::rdp`].
//!
//! These are used by the Example 2 analysis (pure-ε Laplace greedy) and as
//! cross-checks of the RDP accountant: advanced composition must never
//! report a *smaller* ε than RDP claims for the same mechanism sequence.

/// Basic composition: `k` mechanisms, each `(ε, δ)`-DP, compose to
/// `(k·ε, k·δ)`-DP.
pub fn basic_composition(epsilon: f64, delta: f64, k: usize) -> (f64, f64) {
    assert!(
        epsilon >= 0.0 && delta >= 0.0,
        "parameters must be non-negative"
    );
    (k as f64 * epsilon, k as f64 * delta)
}

/// Advanced composition (Dwork–Rothblum–Vadhan): `k` mechanisms, each
/// `(ε, δ)`-DP, compose to `(ε', k·δ + δ')`-DP with
/// `ε' = ε·sqrt(2k ln(1/δ')) + k·ε·(e^ε − 1)`.
pub fn advanced_composition(epsilon: f64, delta: f64, k: usize, delta_prime: f64) -> (f64, f64) {
    assert!(
        epsilon >= 0.0 && delta >= 0.0,
        "parameters must be non-negative"
    );
    assert!(
        delta_prime > 0.0 && delta_prime < 1.0,
        "delta_prime in (0, 1)"
    );
    let kf = k as f64;
    let eps_total = epsilon * (2.0 * kf * (1.0 / delta_prime).ln()).sqrt()
        + kf * epsilon * (epsilon.exp() - 1.0);
    (eps_total, kf * delta + delta_prime)
}

/// The tighter of basic and advanced composition at the given `δ'` slack.
pub fn best_composition(epsilon: f64, delta: f64, k: usize, delta_prime: f64) -> (f64, f64) {
    let (b_eps, b_delta) = basic_composition(epsilon, delta, k);
    let (a_eps, a_delta) = advanced_composition(epsilon, delta, k, delta_prime);
    if a_eps < b_eps {
        (a_eps, a_delta)
    } else {
        (b_eps, b_delta)
    }
}

/// Per-query budget for `k` pure-ε Laplace queries under basic composition:
/// the ε each query may spend so the total stays within `total_epsilon`.
pub fn laplace_budget_per_query(total_epsilon: f64, k: usize) -> f64 {
    assert!(
        total_epsilon > 0.0 && k > 0,
        "need positive budget and queries"
    );
    total_epsilon / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_is_linear() {
        let (eps, delta) = basic_composition(0.5, 1e-6, 10);
        assert_eq!(eps, 5.0);
        assert!((delta - 1e-5).abs() < 1e-18);
        assert_eq!(basic_composition(1.0, 0.0, 1), (1.0, 0.0));
    }

    #[test]
    fn advanced_beats_basic_for_many_small_queries() {
        // k = 10000 queries at ε = 0.005: basic gives 50; advanced gives
        // ~0.005·sqrt(2·10⁴·ln 10⁶) + tiny ≈ 2.9.
        let (a_eps, _) = advanced_composition(0.005, 0.0, 10_000, 1e-6);
        let (b_eps, _) = basic_composition(0.005, 0.0, 10_000);
        assert!(a_eps < b_eps, "advanced {a_eps} should beat basic {b_eps}");
        assert!(a_eps < 5.0, "{a_eps}");
    }

    #[test]
    fn basic_beats_advanced_for_few_large_queries() {
        // A single ε = 1 query: basic gives exactly 1; advanced pays the
        // sqrt(ln 1/δ') overhead.
        let (a_eps, _) = advanced_composition(1.0, 0.0, 1, 1e-6);
        let (b_eps, _) = basic_composition(1.0, 0.0, 1);
        assert!(b_eps < a_eps);
        let best = best_composition(1.0, 0.0, 1, 1e-6);
        assert_eq!(best.0, 1.0);
    }

    #[test]
    fn advanced_delta_accumulates() {
        let (_, delta) = advanced_composition(0.1, 1e-7, 100, 1e-6);
        assert!((delta - (100.0 * 1e-7 + 1e-6)).abs() < 1e-15);
    }

    #[test]
    fn rdp_is_at_least_as_tight_as_advanced_composition() {
        // The same Gaussian mechanism sequence, accounted both ways. For a
        // non-subsampled Gaussian with noise multiplier σ, each step is
        // (α, α/(2σ²))-RDP; one step is (ε₀, δ)-DP with
        // ε₀ = min_α α/(2σ²) + ln((α−1)/α) − (ln δ + ln α)/(α−1).
        use crate::rdp::{RdpAccountant, SubsampledConfig};
        let sigma = 4.0;
        let steps = 200;
        let delta = 1e-6;
        // q = 1 (degenerate) reduces our accountant to the plain Gaussian.
        let cfg = SubsampledConfig {
            max_occurrences: 8,
            batch_size: 8,
            container_size: 8,
        };

        let mut acct = RdpAccountant::default();
        acct.compose_subsampled_gaussian(sigma, &cfg, steps);
        let (rdp_eps, _) = acct.epsilon(delta);

        let mut single = RdpAccountant::default();
        single.compose_subsampled_gaussian(sigma, &cfg, 1);
        let (eps0, _) = single.epsilon(delta / 2.0);
        let (adv_eps, _) = advanced_composition(eps0, delta / 2.0, steps, delta / 2.0);

        assert!(
            rdp_eps <= adv_eps,
            "RDP accounting ({rdp_eps}) must not be looser than advanced composition ({adv_eps})"
        );
    }

    #[test]
    fn budget_split_is_even() {
        assert_eq!(laplace_budget_per_query(1.0, 50), 0.02);
    }
}
