//! Noise mechanisms: Gaussian (the paper's Algorithm 2 line 8), Laplace
//! (Example 2's illustration of why noisy greedy fails), and the Symmetric
//! Multivariate Laplace noise used by the HP baseline [16].

use rand::Rng;

/// Draws one sample from `N(0, std²)` via Box–Muller.
///
/// We synthesize the normal sampler locally rather than pulling in
/// `rand_distr`; Box–Muller is exact and branch-free.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, std: f64) -> f64 {
    assert!(std >= 0.0, "std must be non-negative");
    // Uniform in (0, 1]: avoids ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws one sample from the Laplace distribution with scale `b`
/// (density `exp(-|x|/b) / 2b`), via inverse-CDF sampling.
pub fn laplace<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    assert!(scale >= 0.0, "scale must be non-negative");
    let u: f64 = rng.gen::<f64>() - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln_1p_guard()
}

trait Ln1pGuard {
    /// `ln(x)` guarded against `x == 0` from the closed interval endpoint.
    fn ln_1p_guard(self) -> f64;
}

impl Ln1pGuard for f64 {
    fn ln_1p_guard(self) -> f64 {
        self.max(f64::MIN_POSITIVE).ln()
    }
}

/// Samples a `dim`-dimensional Symmetric Multivariate Laplace vector with
/// per-coordinate scale `sigma`: `X = sqrt(W) · Z` with `W ~ Exp(1)` and
/// `Z ~ N(0, σ² I)`. This is the SML noise the HP baseline injects.
pub fn symmetric_multivariate_laplace<R: Rng + ?Sized>(
    rng: &mut R,
    sigma: f64,
    dim: usize,
) -> Vec<f64> {
    let w: f64 = -(1.0 - rng.gen::<f64>()).ln(); // Exp(1)
    let scale = w.sqrt();
    (0..dim).map(|_| scale * gaussian(rng, sigma)).collect()
}

/// The Gaussian mechanism for a query with l2-sensitivity `delta`:
/// returns `value + N(0, (σ·Δ)²)` per coordinate, writing in place.
pub fn gaussian_mechanism_inplace<R: Rng + ?Sized>(
    rng: &mut R,
    values: &mut [f64],
    sigma: f64,
    sensitivity: f64,
) {
    let std = sigma * sensitivity;
    for v in values {
        *v += gaussian(rng, std);
    }
}

/// The Laplace mechanism for a query with l1-sensitivity `delta` and budget
/// `epsilon`: returns `value + Lap(Δ/ε)`.
pub fn laplace_mechanism<R: Rng + ?Sized>(
    rng: &mut R,
    value: f64,
    sensitivity: f64,
    epsilon: f64,
) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    value + laplace(rng, sensitivity / epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn gaussian_moments_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..200_000).map(|_| gaussian(&mut rng, 2.0)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn laplace_moments_match() {
        // Var(Lap(b)) = 2b².
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..200_000).map(|_| laplace(&mut rng, 1.5)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 4.5).abs() < 0.15, "var {var}");
    }

    #[test]
    fn sml_is_heavier_tailed_than_gaussian() {
        // Kurtosis of SML coordinates exceeds the Gaussian's 3.
        let mut rng = StdRng::seed_from_u64(3);
        let mut coords = Vec::with_capacity(200_000);
        for _ in 0..50_000 {
            coords.extend(symmetric_multivariate_laplace(&mut rng, 1.0, 4));
        }
        let (mean, var) = moments(&coords);
        let kurt = coords.iter().map(|x| (x - mean).powi(4)).sum::<f64>()
            / (coords.len() as f64 * var * var);
        assert!(kurt > 4.0, "kurtosis {kurt} not heavy-tailed");
    }

    #[test]
    fn zero_std_is_noiseless() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(gaussian(&mut rng, 0.0), 0.0);
        assert_eq!(laplace(&mut rng, 0.0), -0.0);
        let mut vals = vec![1.0, 2.0];
        gaussian_mechanism_inplace(&mut rng, &mut vals, 0.0, 5.0);
        assert_eq!(vals, vec![1.0, 2.0]);
    }

    #[test]
    fn gaussian_mechanism_perturbs_with_sensitivity_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut deltas = Vec::new();
        for _ in 0..20_000 {
            let mut v = [0.0];
            gaussian_mechanism_inplace(&mut rng, &mut v, 2.0, 3.0);
            deltas.push(v[0]);
        }
        let (_, var) = moments(&deltas);
        assert!((var - 36.0).abs() < 2.0, "var {var} should be (2*3)^2");
    }

    #[test]
    fn laplace_mechanism_noise_scales_inversely_with_epsilon() {
        let mut rng = StdRng::seed_from_u64(6);
        let spread = |eps: f64, rng: &mut StdRng| {
            let xs: Vec<f64> = (0..20_000)
                .map(|_| laplace_mechanism(rng, 0.0, 1.0, eps))
                .collect();
            moments(&xs).1
        };
        let tight = spread(10.0, &mut rng);
        let loose = spread(0.1, &mut rng);
        assert!(loose > tight * 100.0, "tight {tight} loose {loose}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(gaussian(&mut a, 1.0), gaussian(&mut b, 1.0));
        }
    }
}
