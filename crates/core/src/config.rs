//! Configuration of the PrivIM framework.
//!
//! Defaults follow Section V-A of the paper: sampling rate `q =
//! 256/|V_train|`, random-walk length `L = 200`, maximum in-degree `θ =
//! 10`, restart probability `τ = 0.3`, learning rate `0.005`, three-layer
//! GRAT with 32 hidden units, seed size `k = 50`, IC with `w = 1` and one
//! diffusion step, and `δ < 1/|V_train|`.

use serde::{Deserialize, Serialize};

use privim_nn::models::ModelKind;

/// Which diffusion surrogate the training loss uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Exact Independent Cascade product form (the paper's setting).
    IcProduct,
    /// Truncated-sum form — the exact one-step activation probability
    /// under the Linear Threshold model (Section VII extension).
    LtTruncated,
}

/// Hyperparameters shared by every PrivIM pipeline variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivImConfig {
    // --- sampling (Algorithms 1 and 3) ---
    /// Subgraph size `n`.
    pub subgraph_size: usize,
    /// RWR restart probability `τ`.
    pub restart_prob: f64,
    /// Starting-node sampling rate `q`; `None` derives the paper's
    /// `256/|V_train|` at run time.
    pub sampling_rate: Option<f64>,
    /// Random-walk length budget `L`.
    pub walk_length: usize,
    /// Hop bound `r` between the start node and any sampled node; also the
    /// GNN depth (the paper ties them: an r-layer GNN sees r hops).
    pub hops: usize,
    /// Maximum node in-degree `θ` for the naive pipeline's projection.
    pub theta: usize,
    /// Frequency threshold `M` for the dual-stage scheme.
    pub freq_threshold: usize,
    /// Frequency decay factor `μ` in Eq. 9.
    pub decay: f64,
    /// BES subgraph-size divisor `s` (stage-2 subgraphs have `n/s` nodes).
    pub bes_divisor: usize,

    // --- model ---
    /// GNN architecture.
    pub model: ModelKind,
    /// Hidden width per layer.
    pub hidden: usize,
    /// Input feature dimensionality.
    pub feature_dim: usize,

    // --- training (Algorithm 2) ---
    /// Batch size `B`.
    pub batch_size: usize,
    /// Iterations `T`.
    pub iterations: usize,
    /// Gradient clip bound `C`.
    pub clip_bound: f64,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Loss trade-off `λ` (Eq. 5).
    pub lambda: f64,
    /// Diffusion steps `j` used in the loss and evaluation.
    pub diffusion_steps: usize,
    /// Training-loss diffusion surrogate.
    pub loss: LossKind,
    /// Abort training after this many *consecutive* steps whose loss or
    /// gradient is non-finite. Isolated bad steps are skipped before any
    /// noise is drawn (so no privacy budget is consumed); a streak this
    /// long means the run has diverged and continuing would only burn
    /// budget on garbage.
    #[serde(default = "default_max_bad_steps")]
    pub max_bad_steps: usize,

    // --- privacy ---
    /// Privacy budget `ε` (`None` = non-private).
    pub epsilon: Option<f64>,
    /// Privacy parameter `δ`; `None` derives `1/(|V_train|+1)`.
    pub delta: Option<f64>,

    // --- evaluation ---
    /// Seed-set size `k`.
    pub seed_size: usize,
}

fn default_max_bad_steps() -> usize {
    5
}

impl Default for PrivImConfig {
    fn default() -> Self {
        PrivImConfig {
            subgraph_size: 40,
            restart_prob: 0.3,
            sampling_rate: None,
            walk_length: 200,
            hops: 3,
            theta: 10,
            freq_threshold: 4,
            decay: 1.0,
            bes_divisor: 2,
            model: ModelKind::Grat,
            hidden: 32,
            feature_dim: 8,
            batch_size: 16,
            iterations: 40,
            clip_bound: 1.0,
            learning_rate: 0.005,
            lambda: 0.5,
            diffusion_steps: 1,
            loss: LossKind::IcProduct,
            max_bad_steps: default_max_bad_steps(),
            epsilon: Some(4.0),
            delta: None,
            seed_size: 50,
        }
    }
}

impl PrivImConfig {
    /// The effective sampling rate for a graph with `num_train` training
    /// nodes (`q = 256/|V_train|`, capped at 1).
    pub fn effective_sampling_rate(&self, num_train: usize) -> f64 {
        self.sampling_rate
            .unwrap_or_else(|| (256.0 / num_train.max(1) as f64).min(1.0))
    }

    /// The effective δ for `num_train` training nodes (`1/(|V_train|+1)`).
    pub fn effective_delta(&self, num_train: usize) -> f64 {
        self.delta.unwrap_or_else(|| 1.0 / (num_train as f64 + 1.0))
    }

    /// A laptop-scale configuration for tests and examples: smaller model,
    /// fewer iterations, same structure.
    pub fn small() -> Self {
        PrivImConfig {
            subgraph_size: 16,
            walk_length: 120,
            hops: 2,
            hidden: 8,
            feature_dim: 4,
            batch_size: 8,
            iterations: 12,
            seed_size: 10,
            ..PrivImConfig::default()
        }
    }

    /// Validates internal consistency; call before running a pipeline.
    pub fn validate(&self) -> Result<(), String> {
        if self.subgraph_size < 2 {
            return Err("subgraph_size must be at least 2".into());
        }
        if !(0.0..=1.0).contains(&self.restart_prob) {
            return Err("restart_prob must be a probability".into());
        }
        if let Some(q) = self.sampling_rate {
            if !(0.0..=1.0).contains(&q) {
                return Err("sampling_rate must be a probability".into());
            }
        }
        if self.hops == 0 {
            return Err("hops must be positive".into());
        }
        if self.freq_threshold == 0 {
            return Err("freq_threshold must be positive".into());
        }
        if self.bes_divisor == 0 {
            return Err("bes_divisor must be positive".into());
        }
        if self.clip_bound <= 0.0 || self.learning_rate <= 0.0 {
            return Err("clip_bound and learning_rate must be positive".into());
        }
        if self.diffusion_steps == 0 {
            return Err("diffusion_steps must be positive".into());
        }
        if self.max_bad_steps == 0 {
            return Err("max_bad_steps must be positive".into());
        }
        if let Some(eps) = self.epsilon {
            if eps <= 0.0 {
                return Err("epsilon must be positive".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = PrivImConfig::default();
        assert_eq!(c.theta, 10);
        assert_eq!(c.walk_length, 200);
        assert!((c.restart_prob - 0.3).abs() < 1e-12);
        assert!((c.learning_rate - 0.005).abs() < 1e-12);
        assert_eq!(c.model, ModelKind::Grat);
        assert_eq!(c.hidden, 32);
        assert_eq!(c.seed_size, 50);
        assert_eq!(c.diffusion_steps, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn effective_rates_follow_paper_formulas() {
        let c = PrivImConfig::default();
        assert!((c.effective_sampling_rate(512) - 0.5).abs() < 1e-12);
        assert_eq!(c.effective_sampling_rate(100), 1.0); // capped
        assert!(c.effective_delta(1000) < 1.0 / 1000.0);
    }

    #[test]
    fn explicit_overrides_win() {
        let c = PrivImConfig {
            sampling_rate: Some(0.25),
            delta: Some(1e-6),
            ..Default::default()
        };
        assert_eq!(c.effective_sampling_rate(10_000), 0.25);
        assert_eq!(c.effective_delta(10), 1e-6);
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = |f: fn(&mut PrivImConfig)| {
            let mut c = PrivImConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.subgraph_size = 1));
        assert!(bad(|c| c.restart_prob = 1.5));
        assert!(bad(|c| c.hops = 0));
        assert!(bad(|c| c.freq_threshold = 0));
        assert!(bad(|c| c.bes_divisor = 0));
        assert!(bad(|c| c.clip_bound = 0.0));
        assert!(bad(|c| c.epsilon = Some(-1.0)));
        assert!(bad(|c| c.diffusion_steps = 0));
        assert!(bad(|c| c.sampling_rate = Some(2.0)));
        assert!(bad(|c| c.max_bad_steps = 0));
    }

    #[test]
    fn config_serde_round_trip() {
        let c = PrivImConfig::small();
        let json = serde_json::to_string(&c).unwrap();
        let back: PrivImConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
