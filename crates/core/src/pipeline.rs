//! End-to-end PrivIM pipelines and the paper's baselines.
//!
//! [`run_method`] executes: subgraph extraction → privacy calibration →
//! DP-SGD training → full-graph inference → top-k seed selection →
//! influence-spread evaluation, returning per-phase timings (Table III)
//! alongside the quality metrics.
//!
//! Methods (Section V-A "Competitors"):
//!
//! - **PrivIM** — the naive Section III implementation (Algorithm 1 on a
//!   θ-bounded graph, `N_g = Σ θⁱ`).
//! - **PrivIM+SCS** — stage 1 of the dual-stage scheme only.
//! - **PrivIM\*** — the full dual-stage scheme (SCS + BES, `N_g* = M`).
//! - **EGN** — Erdős-goes-neural with unconstrained subgraph sampling and
//!   DP-SGD; its occurrence bound must be taken from the observed
//!   container (there is no structural bound), which is what makes its
//!   noise excessive.
//! - **HP / HP-GRAT** — HeterPoisson-style ego-subgraphs with Symmetric
//!   Multivariate Laplace noise; HP uses GCN, HP-GRAT uses GRAT.
//! - **NonPrivate** — PrivIM* with `ε = ∞` (no clipping, no noise).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use privim_graph::{Graph, NodeId};
use privim_im::metrics::top_k_seeds;
use privim_im::models::DiffusionConfig;
use privim_im::spread::influence_spread;
use privim_nn::graph_tensors::GraphTensors;
use privim_nn::models::{build_model, ModelKind};

use crate::config::PrivImConfig;
use crate::container::{SubgraphContainer, SubgraphSample};
use crate::sampling::{extract_dual_stage, extract_naive, extract_unconstrained, freq_sampling};
use crate::train::{train, NoiseKind, PrivacySetup};

/// One of the evaluated methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Naive PrivIM (Section III).
    PrivIm,
    /// PrivIM with Sensitivity-Constrained Sampling only.
    PrivImScs,
    /// PrivIM* — SCS + Boundary-Enhanced Sampling (Section IV).
    PrivImStar,
    /// Erdős-goes-neural baseline with DP-SGD.
    Egn,
    /// HeterPoisson baseline with SML noise and GCN.
    Hp,
    /// HP trained with GRAT instead of GCN.
    HpGrat,
    /// Non-private PrivIM* (ε = ∞).
    NonPrivate,
}

impl Method {
    /// All methods in the order Figure 5 plots them.
    pub const ALL: [Method; 7] = [
        Method::NonPrivate,
        Method::PrivImStar,
        Method::PrivImScs,
        Method::PrivIm,
        Method::HpGrat,
        Method::Hp,
        Method::Egn,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Method::PrivIm => "PrivIM",
            Method::PrivImScs => "PrivIM+SCS",
            Method::PrivImStar => "PrivIM*",
            Method::Egn => "EGN",
            Method::Hp => "HP",
            Method::HpGrat => "HP-GRAT",
            Method::NonPrivate => "Non-Private",
        }
    }

    /// The GNN architecture the paper assigns to this method.
    pub fn model_kind(self, configured: ModelKind) -> ModelKind {
        match self {
            Method::Egn | Method::Hp => ModelKind::Gcn,
            Method::HpGrat => ModelKind::Grat,
            _ => configured,
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Method that produced this result.
    pub method: Method,
    /// Selected seed set (top-k by model score).
    pub seeds: Vec<NodeId>,
    /// Influence spread of the seeds under the configured diffusion.
    pub spread: f64,
    /// Preprocessing wall-clock seconds (projection + extraction).
    pub preprocessing_secs: f64,
    /// Total training wall-clock seconds.
    pub training_secs: f64,
    /// Training seconds per iteration ("per-epoch" in Table III).
    pub per_epoch_secs: f64,
    /// Extracted container size `m`.
    pub container_size: usize,
    /// The occurrence bound `N_g` used for accounting.
    pub occurrence_bound: usize,
    /// Calibrated σ (None for the non-private run).
    pub sigma: Option<f64>,
    /// Final training loss.
    pub final_loss: f64,
}

/// Runs `method` on `g` with `config`, deterministically from `seed`.
///
/// Training candidates default to all nodes; pass a split's train set via
/// [`run_method_with_candidates`] for the paper's 50/50 protocol.
pub fn run_method(g: &Graph, method: Method, config: &PrivImConfig, seed: u64) -> PipelineResult {
    let candidates: Vec<NodeId> = g.nodes().collect();
    run_method_with_candidates(g, method, config, &candidates, seed)
}

/// [`run_method`] with an explicit training-candidate node set.
pub fn run_method_with_candidates(
    g: &Graph,
    method: Method,
    config: &PrivImConfig,
    candidates: &[NodeId],
    seed: u64,
) -> PipelineResult {
    config.validate().expect("invalid configuration");
    let _span = privim_obs::span!("pipeline");
    privim_obs::info!(
        "pipeline",
        "start",
        method = method.name(),
        seed = seed,
        nodes = g.num_nodes(),
        candidates = candidates.len(),
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // --- Phase 1: subgraph extraction ------------------------------------
    let pre_start = std::time::Instant::now();
    let extraction_span = privim_obs::span!("extraction");
    let (container, occurrence_bound) = extract_for(method, g, config, candidates, &mut rng);
    extraction_span.finish();
    let preprocessing_secs = pre_start.elapsed().as_secs_f64();
    privim_obs::gauge("pipeline.container_size").set(container.len() as f64);

    // --- Phase 2: privacy calibration ------------------------------------
    let delta = config.effective_delta(candidates.len());
    let calibration_span = privim_obs::span!("calibration");
    let privacy = match (method, config.epsilon) {
        _ if container.is_empty() => None,
        (Method::NonPrivate, _) | (_, None) => None,
        (_, Some(eps)) => {
            let noise = match method {
                Method::Hp | Method::HpGrat => NoiseKind::SymmetricLaplace,
                _ => NoiseKind::Gaussian,
            };
            Some(PrivacySetup::calibrate(
                eps,
                delta,
                config,
                container.len(),
                occurrence_bound,
                noise,
            ))
        }
    };
    calibration_span.finish();

    // --- Phase 3: DP-GNN training -----------------------------------------
    // An empty container means the requested (n, hops) combination is
    // infeasible on this graph: the model stays at initialization, which is
    // the honest degenerate outcome for a parameter sweep (utility
    // collapses instead of the run aborting).
    let kind = method.model_kind(config.model);
    let mut model = build_model(
        kind,
        config.feature_dim,
        config.hidden,
        config.hops,
        &mut rng,
    );
    let report = if container.is_empty() {
        crate::train::TrainReport {
            losses: Vec::new(),
            clip_fractions: Vec::new(),
            training_secs: 0.0,
            sigma: None,
        }
    } else {
        train(
            model.as_mut(),
            &container,
            config,
            privacy.as_ref(),
            &mut rng,
        )
        .unwrap_or_else(|e| panic!("{method} training aborted: {e}"))
    };

    // --- Phase 4: inference + seed selection + evaluation -----------------
    let inference_span = privim_obs::span!("inference");
    let gt = GraphTensors::with_structural_features(g, config.feature_dim);
    let scores = model.seed_probabilities(&gt);
    let seeds = top_k_seeds(&scores, config.seed_size);
    inference_span.finish();
    let evaluation_span = privim_obs::span!("evaluation");
    let diffusion = DiffusionConfig::ic_with_steps(config.diffusion_steps);
    let spread = influence_spread(g, &seeds, &diffusion, 200, &mut rng);
    evaluation_span.finish();
    privim_obs::info!(
        "pipeline",
        "done",
        method = method.name(),
        spread = spread,
        container_size = container.len(),
        sigma = report.sigma,
        final_loss = report.losses.last().copied(),
    );

    PipelineResult {
        method,
        seeds,
        spread,
        preprocessing_secs,
        training_secs: report.training_secs,
        per_epoch_secs: report.training_secs / config.iterations.max(1) as f64,
        container_size: container.len(),
        occurrence_bound,
        sigma: report.sigma,
        final_loss: *report.losses.last().unwrap_or(&f64::NAN),
    }
}

/// Extraction dispatch: returns the container and the occurrence bound
/// `N_g` the accountant must use.
fn extract_for(
    method: Method,
    g: &Graph,
    config: &PrivImConfig,
    candidates: &[NodeId],
    rng: &mut StdRng,
) -> (SubgraphContainer, usize) {
    match method {
        Method::PrivIm => {
            let (container, _projected) = extract_naive(g, config, candidates, rng);
            let n_g = privim_dp::rdp::naive_occurrence_bound(config.theta, config.hops);
            (container, n_g)
        }
        Method::PrivImScs => {
            let mut frequency = vec![0u32; g.num_nodes()];
            let container = freq_sampling(
                g,
                config,
                candidates,
                config.subgraph_size,
                &mut frequency,
                rng,
            );
            (container, config.freq_threshold)
        }
        Method::PrivImStar | Method::NonPrivate => {
            let out = extract_dual_stage(g, config, candidates, rng);
            (out.container, config.freq_threshold)
        }
        Method::Egn => {
            // Unconstrained sampling: no structural occurrence bound
            // exists, so node-level accounting must assume the worst case —
            // a node may appear in every extracted subgraph (N_g = m).
            // This is the root cause of EGN's excessive noise; a
            // data-dependent "observed maximum" would itself leak.
            let container = extract_unconstrained(g, config, candidates, rng);
            let worst_case = container.len().max(1);
            (container, worst_case)
        }
        Method::Hp | Method::HpGrat => extract_heter_poisson(g, config, candidates, rng),
    }
}

/// HeterPoisson-style extraction for the HP baselines: each selected node
/// contributes its 1-hop ego network (itself + up to θ in-neighbors), the
/// node-level-task subgraph shape HP was designed for. Each node may join
/// at most θ foreign ego-nets, bounding occurrences by `θ + 1`.
fn extract_heter_poisson<R: Rng + ?Sized>(
    g: &Graph,
    config: &PrivImConfig,
    candidates: &[NodeId],
    rng: &mut R,
) -> (SubgraphContainer, usize) {
    let q = config.effective_sampling_rate(candidates.len());
    let mut memberships = vec![0usize; g.num_nodes()];
    let mut container = SubgraphContainer::new();
    for &v in candidates {
        if rng.gen::<f64>() >= q {
            continue;
        }
        let mut nodes = vec![v];
        for &u in g.in_neighbors(v) {
            if nodes.len() > config.theta {
                break;
            }
            if u != v && memberships[u as usize] < config.theta && !nodes.contains(&u) {
                nodes.push(u);
                memberships[u as usize] += 1;
            }
        }
        if nodes.len() >= 2 {
            container.push(SubgraphSample::extract(g, nodes, config.feature_dim));
        }
    }
    (container, config.theta + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_datasets::generators::holme_kim;

    fn graph(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        holme_kim(250, 4, 0.4, 1.0, &mut rng)
    }

    fn fast_config() -> PrivImConfig {
        PrivImConfig {
            subgraph_size: 10,
            walk_length: 100,
            hops: 2,
            sampling_rate: Some(0.5),
            freq_threshold: 4,
            feature_dim: 4,
            hidden: 8,
            batch_size: 6,
            iterations: 6,
            seed_size: 10,
            epsilon: Some(4.0),
            ..PrivImConfig::default()
        }
    }

    #[test]
    fn every_method_runs_end_to_end() {
        let g = graph(1);
        let cfg = fast_config();
        for method in Method::ALL {
            let r = run_method(&g, method, &cfg, 7);
            assert_eq!(r.method, method);
            assert_eq!(r.seeds.len(), cfg.seed_size, "{method}");
            assert!(
                r.spread >= cfg.seed_size as f64,
                "{method}: spread {}",
                r.spread
            );
            assert!(r.spread <= g.num_nodes() as f64, "{method}");
            assert!(r.container_size > 0, "{method}");
            assert!(
                r.preprocessing_secs >= 0.0 && r.per_epoch_secs > 0.0,
                "{method}"
            );
            if method == Method::NonPrivate {
                assert!(r.sigma.is_none());
            } else {
                assert!(r.sigma.is_some(), "{method} should be private");
            }
            assert!(r.final_loss.is_finite(), "{method}");
        }
    }

    #[test]
    fn occurrence_bounds_follow_the_analysis() {
        let g = graph(2);
        let cfg = fast_config();
        let naive = run_method(&g, Method::PrivIm, &cfg, 3);
        assert_eq!(
            naive.occurrence_bound,
            privim_dp::rdp::naive_occurrence_bound(cfg.theta, cfg.hops)
        );
        let star = run_method(&g, Method::PrivImStar, &cfg, 3);
        assert_eq!(star.occurrence_bound, cfg.freq_threshold);
        assert!(
            star.occurrence_bound < naive.occurrence_bound,
            "the dual-stage bound must beat Lemma 1's"
        );
    }

    #[test]
    fn baseline_models_are_fixed_by_the_paper() {
        assert_eq!(Method::Egn.model_kind(ModelKind::Grat), ModelKind::Gcn);
        assert_eq!(Method::Hp.model_kind(ModelKind::Grat), ModelKind::Gcn);
        assert_eq!(Method::HpGrat.model_kind(ModelKind::Gcn), ModelKind::Grat);
        assert_eq!(
            Method::PrivImStar.model_kind(ModelKind::Gin),
            ModelKind::Gin
        );
    }

    #[test]
    fn seeds_are_valid_and_distinct() {
        let g = graph(4);
        let cfg = fast_config();
        let r = run_method(&g, Method::PrivImStar, &cfg, 5);
        let set: std::collections::HashSet<_> = r.seeds.iter().collect();
        assert_eq!(set.len(), r.seeds.len());
        assert!(r.seeds.iter().all(|&s| (s as usize) < g.num_nodes()));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let g = graph(6);
        let cfg = fast_config();
        let a = run_method(&g, Method::PrivImStar, &cfg, 11);
        let b = run_method(&g, Method::PrivImStar, &cfg, 11);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.spread, b.spread);
        let c = run_method(&g, Method::PrivImStar, &cfg, 12);
        // Different randomness almost surely changes something.
        assert!(a.seeds != c.seeds || a.sigma != c.sigma || a.container_size != c.container_size);
    }

    #[test]
    fn hp_extraction_respects_membership_caps() {
        let g = graph(7);
        let cfg = fast_config();
        let mut rng = StdRng::seed_from_u64(8);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let (container, bound) = extract_heter_poisson(&g, &cfg, &candidates, &mut rng);
        assert_eq!(bound, cfg.theta + 1);
        assert!(!container.is_empty());
        let observed = container.observed_max_occurrence(g.num_nodes());
        assert!(observed <= bound, "observed {observed} > bound {bound}");
        for s in container.samples() {
            assert!(s.len() <= cfg.theta + 1);
        }
    }

    #[test]
    fn method_names_match_paper() {
        let names: Vec<_> = Method::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            [
                "Non-Private",
                "PrivIM*",
                "PrivIM+SCS",
                "PrivIM",
                "HP-GRAT",
                "HP",
                "EGN"
            ]
        );
    }
}
