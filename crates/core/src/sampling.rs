//! Subgraph extraction schemes.
//!
//! Two implementations of the paper's Subgraph Extraction Module:
//!
//! - [`extract_naive`] — Algorithm 1: project the graph to a θ-bounded
//!   `G^θ`, then run Random Walk with Restart (RWR) from each sampled
//!   start node, constrained to the start's r-hop neighborhood, until `n`
//!   unique nodes are collected. Occurrences per node are bounded by
//!   `N_g = Σ_{i=0}^{r} θⁱ` (Lemma 1).
//! - [`extract_dual_stage`] — Algorithm 3: the dual-stage adaptive
//!   frequency sampling scheme. Stage 1 (Sensitivity-Constrained Sampling)
//!   walks the *unprojected* graph, down-weighting nodes by their sampling
//!   frequency (Eq. 9) and hard-capping occurrences at the threshold `M`.
//!   Stage 2 (Boundary-Enhanced Sampling) removes saturated nodes and
//!   re-samples the remaining boundary regions with subgraph size `n/s`,
//!   enriching structure without increasing `N_g* = M`.

use rand::Rng;

use privim_graph::collections::FastHashSet;
use privim_graph::ops::{khop_neighborhood, mask_edges, theta_projection};
use privim_graph::{Graph, NodeId};

use crate::config::PrivImConfig;
use crate::container::{SubgraphContainer, SubgraphSample};

/// Output of [`extract_dual_stage`].
#[derive(Debug, Clone)]
pub struct DualStageOutput {
    /// The combined container `G_sub,stage1 + G_sub,stage2`.
    pub container: SubgraphContainer,
    /// Final frequency vector `f` (occurrences per original node).
    pub frequency: Vec<u32>,
    /// Subgraphs contributed by stage 1 (prefix of the container).
    pub stage1_count: usize,
}

/// Algorithm 1. Returns the container and the θ-bounded graph it sampled
/// from (callers reuse `G^θ` for timing studies).
pub fn extract_naive<R: Rng + ?Sized>(
    g: &Graph,
    config: &PrivImConfig,
    candidates: &[NodeId],
    rng: &mut R,
) -> (SubgraphContainer, Graph) {
    let projection_span = privim_obs::span!("projection");
    let projected = theta_projection(g, config.theta, rng);
    projection_span.finish();
    let _span = privim_obs::span!("subgraph_sampling");
    let q = config.effective_sampling_rate(candidates.len());
    let mut container = SubgraphContainer::new();
    for &v0 in candidates {
        if rng.gen::<f64>() >= q {
            continue;
        }
        if let Some(nodes) = rwr_collect(&projected, v0, config, NeighborWeights::Uniform, rng) {
            container.push(SubgraphSample::extract(
                &projected,
                nodes,
                config.feature_dim,
            ));
        } else {
            privim_obs::counter("sampling.walks_discarded").add(1);
        }
    }
    privim_obs::counter("sampling.subgraphs_extracted").add(container.len() as u64);
    (container, projected)
}

/// Algorithm 3: Sensitivity-Constrained Sampling followed by
/// Boundary-Enhanced Sampling.
pub fn extract_dual_stage<R: Rng + ?Sized>(
    g: &Graph,
    config: &PrivImConfig,
    candidates: &[NodeId],
    rng: &mut R,
) -> DualStageOutput {
    let _span = privim_obs::span!("subgraph_sampling");
    let mut frequency = vec![0u32; g.num_nodes()];
    // Stage 1: SCS on the original (unprojected) graph.
    let scs_span = privim_obs::span!("scs_stage");
    let mut container = freq_sampling(
        g,
        config,
        candidates,
        config.subgraph_size,
        &mut frequency,
        rng,
    );
    let stage1_count = container.len();
    scs_span.finish();

    // Stage 2: BES on the boundary graph of unsaturated nodes.
    let bes_span = privim_obs::span!("bes_stage");
    let m = config.freq_threshold as u32;
    let kept: Vec<bool> = frequency.iter().map(|&f| f < m).collect();
    let boundary = mask_edges(g, &kept);
    let boundary_candidates: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&v| kept[v as usize])
        .collect();
    let bes_size = (config.subgraph_size / config.bes_divisor).max(2);
    let stage2 = freq_sampling(
        &boundary,
        config,
        &boundary_candidates,
        bes_size,
        &mut frequency,
        rng,
    );
    container.extend(stage2);
    bes_span.finish();
    privim_obs::counter("sampling.subgraphs_extracted").add(container.len() as u64);
    privim_obs::debug!(
        "sampling",
        "dual_stage",
        stage1 = stage1_count,
        stage2 = container.len() - stage1_count,
        boundary_candidates = boundary_candidates.len(),
        bes_size = bes_size,
    );

    DualStageOutput {
        container,
        frequency,
        stage1_count,
    }
}

/// The `FreqSampling` function of Algorithm 3 (lines 9–28): RWR with
/// frequency-adaptive neighbor weights, collecting subgraphs of `size`
/// nodes and updating `frequency` after each successful extraction.
pub fn freq_sampling<R: Rng + ?Sized>(
    g: &Graph,
    config: &PrivImConfig,
    candidates: &[NodeId],
    size: usize,
    frequency: &mut Vec<u32>,
    rng: &mut R,
) -> SubgraphContainer {
    let q = config.effective_sampling_rate(candidates.len());
    let m = config.freq_threshold as u32;
    let mut container = SubgraphContainer::new();
    let mut size_config = config.clone();
    size_config.subgraph_size = size;
    for &v0 in candidates {
        if rng.gen::<f64>() >= q || frequency[v0 as usize] >= m {
            continue;
        }
        let weights = NeighborWeights::Frequency {
            frequency: frequency.as_slice(),
            decay: config.decay,
            threshold: m,
        };
        if let Some(nodes) = rwr_collect(g, v0, &size_config, weights, rng) {
            for &v in &nodes {
                frequency[v as usize] += 1;
            }
            container.push(SubgraphSample::extract(g, nodes, config.feature_dim));
        } else {
            privim_obs::counter("sampling.walks_discarded").add(1);
        }
    }
    container
}

/// Unconstrained RWR extraction for the EGN baseline: no θ-projection, no
/// r-hop restriction, no frequency weighting. The resulting container has
/// no structural occurrence bound — the accountant must fall back to the
/// observed maximum, which is what blows up EGN's noise.
pub fn extract_unconstrained<R: Rng + ?Sized>(
    g: &Graph,
    config: &PrivImConfig,
    candidates: &[NodeId],
    rng: &mut R,
) -> SubgraphContainer {
    let q = config.effective_sampling_rate(candidates.len());
    let mut unconstrained = config.clone();
    unconstrained.hops = usize::MAX;
    let mut container = SubgraphContainer::new();
    for &v0 in candidates {
        if rng.gen::<f64>() >= q {
            continue;
        }
        if let Some(nodes) = rwr_collect(g, v0, &unconstrained, NeighborWeights::Uniform, rng) {
            container.push(SubgraphSample::extract(g, nodes, config.feature_dim));
        }
    }
    container
}

/// Neighbor-selection policy for one RWR step.
enum NeighborWeights<'a> {
    /// Algorithm 1: uniform over eligible neighbors.
    Uniform,
    /// Algorithm 3, Eq. 9: weight `e_v = 1/(f_v + 1)^μ` if `f_v < M`, else 0.
    Frequency {
        frequency: &'a [u32],
        decay: f64,
        threshold: u32,
    },
}

impl NeighborWeights<'_> {
    fn weight(&self, v: NodeId) -> f64 {
        match self {
            NeighborWeights::Uniform => 1.0,
            NeighborWeights::Frequency {
                frequency,
                decay,
                threshold,
            } => {
                let f = frequency[v as usize];
                if f >= *threshold {
                    0.0
                } else {
                    ((f + 1) as f64).powf(-decay)
                }
            }
        }
    }
}

/// Core RWR loop shared by both schemes (Algorithm 1 lines 4–17 /
/// Algorithm 3 lines 13–27): walk from `v0`, restricted to its r-hop
/// out-neighborhood, restarting with probability τ, until `n` unique nodes
/// are collected or the step budget `L` runs out. Returns `None` if the
/// walk could not collect `n` nodes (the algorithm discards such walks).
fn rwr_collect<R: Rng + ?Sized>(
    g: &Graph,
    v0: NodeId,
    config: &PrivImConfig,
    weights: NeighborWeights<'_>,
    rng: &mut R,
) -> Option<Vec<NodeId>> {
    let n = config.subgraph_size;
    // `hops == usize::MAX` disables the r-hop restriction (EGN baseline).
    let allowed = if config.hops == usize::MAX {
        None
    } else {
        let ball = khop_neighborhood(g, v0, config.hops);
        if ball.len() < n {
            // The r-hop ball cannot possibly yield n unique nodes.
            return None;
        }
        Some(ball)
    };
    let mut in_sub: FastHashSet<NodeId> = FastHashSet::default();
    let mut nodes = Vec::with_capacity(n);
    in_sub.insert(v0);
    nodes.push(v0);

    let mut candidates: Vec<NodeId> = Vec::new();
    let mut cum = Vec::new();
    let mut v_cur = v0;
    for _ in 0..config.walk_length {
        if rng.gen::<f64>() < config.restart_prob {
            v_cur = v0;
        }
        // Eligible next hops: neighbors of v_cur (either direction, so the
        // walk can traverse undirected structure) within N_r(v0).
        candidates.clear();
        cum.clear();
        let mut total = 0.0;
        for &u in g.out_neighbors(v_cur).iter().chain(g.in_neighbors(v_cur)) {
            if u == v_cur || allowed.as_ref().is_some_and(|a| !a.contains(&u)) {
                continue;
            }
            let w = weights.weight(u);
            if w > 0.0 {
                candidates.push(u);
                total += w;
                cum.push(total);
            }
        }
        if candidates.is_empty() {
            // Stuck: force a restart on the next step.
            v_cur = v0;
            continue;
        }
        let t = rng.gen::<f64>() * total;
        let idx = cum.partition_point(|&c| c <= t).min(candidates.len() - 1);
        let v_next = candidates[idx];
        v_cur = v_next;
        if in_sub.insert(v_next) {
            nodes.push(v_next);
            if nodes.len() == n {
                return Some(nodes);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_datasets::generators::holme_kim;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_graph(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        holme_kim(400, 4, 0.4, 1.0, &mut rng)
    }

    fn test_config() -> PrivImConfig {
        PrivImConfig {
            subgraph_size: 12,
            walk_length: 150,
            hops: 2,
            sampling_rate: Some(0.5),
            freq_threshold: 3,
            feature_dim: 4,
            ..PrivImConfig::default()
        }
    }

    #[test]
    fn naive_extraction_produces_full_size_subgraphs() {
        let g = test_graph(1);
        let cfg = test_config();
        let mut rng = StdRng::seed_from_u64(2);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let (container, projected) = extract_naive(&g, &cfg, &candidates, &mut rng);
        assert!(!container.is_empty(), "no subgraphs extracted");
        for s in container.samples() {
            assert_eq!(s.len(), cfg.subgraph_size);
            // Unique original nodes.
            let set: FastHashSet<NodeId> = s.original.iter().copied().collect();
            assert_eq!(set.len(), s.len());
        }
        // Projection respected θ.
        for u in projected.nodes() {
            assert!(projected.in_degree(u) <= cfg.theta);
        }
    }

    #[test]
    fn naive_subgraph_nodes_lie_within_r_hops_of_start() {
        let g = test_graph(3);
        let cfg = test_config();
        let mut rng = StdRng::seed_from_u64(4);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let (container, projected) = extract_naive(&g, &cfg, &candidates, &mut rng);
        for s in container.samples() {
            let v0 = s.original[0];
            let ball = khop_neighborhood(&projected, v0, cfg.hops);
            for &v in &s.original {
                assert!(
                    ball.contains(&v),
                    "node {v} outside {}-hop ball of {v0}",
                    cfg.hops
                );
            }
        }
    }

    #[test]
    fn dual_stage_respects_frequency_threshold() {
        let g = test_graph(5);
        let cfg = test_config();
        let mut rng = StdRng::seed_from_u64(6);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
        assert!(!out.container.is_empty());
        // Invariant: no node appears more than M times.
        let m = cfg.freq_threshold;
        let observed = out.container.observed_max_occurrence(g.num_nodes());
        assert!(observed <= m, "observed {observed} > M {m}");
        // The frequency vector matches actual counts.
        let mut counts = vec![0u32; g.num_nodes()];
        for s in out.container.samples() {
            for &v in &s.original {
                counts[v as usize] += 1;
            }
        }
        assert_eq!(counts, out.frequency);
    }

    #[test]
    fn dual_stage_stage2_uses_smaller_subgraphs() {
        let g = test_graph(7);
        let cfg = PrivImConfig {
            bes_divisor: 3,
            ..test_config()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
        let bes_size = (cfg.subgraph_size / 3).max(2);
        for (i, s) in out.container.samples().iter().enumerate() {
            if i < out.stage1_count {
                assert_eq!(s.len(), cfg.subgraph_size);
            } else {
                assert_eq!(s.len(), bes_size);
            }
        }
    }

    #[test]
    fn dual_stage_usually_collects_more_than_stage1_alone() {
        // BES's purpose: extra subgraphs from boundary regions.
        let g = test_graph(9);
        let cfg = PrivImConfig {
            sampling_rate: Some(1.0),
            ..test_config()
        };
        let mut rng = StdRng::seed_from_u64(10);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
        assert!(
            out.container.len() > out.stage1_count,
            "BES contributed nothing ({} total, {} stage1)",
            out.container.len(),
            out.stage1_count
        );
    }

    #[test]
    fn higher_decay_spreads_sampling_wider() {
        // With strong decay, frequently sampled nodes are avoided, so the
        // number of distinct sampled nodes should not decrease.
        let g = test_graph(11);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let distinct = |decay: f64| {
            let cfg = PrivImConfig {
                decay,
                sampling_rate: Some(1.0),
                freq_threshold: 10,
                ..test_config()
            };
            let mut rng = StdRng::seed_from_u64(12);
            let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
            out.frequency.iter().filter(|&&f| f > 0).count()
        };
        let spread_low = distinct(0.0);
        let spread_high = distinct(3.0);
        assert!(
            spread_high as f64 >= spread_low as f64 * 0.95,
            "strong decay reduced coverage: {spread_high} vs {spread_low}"
        );
    }

    #[test]
    fn sampling_rate_zero_yields_empty_container() {
        let g = test_graph(13);
        let cfg = PrivImConfig {
            sampling_rate: Some(0.0),
            ..test_config()
        };
        let mut rng = StdRng::seed_from_u64(14);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let (container, _) = extract_naive(&g, &cfg, &candidates, &mut rng);
        assert!(container.is_empty());
        let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
        assert!(out.container.is_empty());
    }

    #[test]
    fn oversized_subgraph_requests_are_discarded() {
        // n larger than any r-hop ball: nothing can be extracted.
        let g = test_graph(15);
        let cfg = PrivImConfig {
            subgraph_size: 500,
            sampling_rate: Some(1.0),
            ..test_config()
        };
        let mut rng = StdRng::seed_from_u64(16);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let (container, _) = extract_naive(&g, &cfg, &candidates, &mut rng);
        assert!(container.is_empty());
    }

    #[test]
    fn extraction_is_deterministic_per_seed() {
        let g = test_graph(17);
        let cfg = test_config();
        let candidates: Vec<NodeId> = g.nodes().collect();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
            out.container
                .samples()
                .iter()
                .map(|s| s.original.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
