//! Crash-safe training checkpoints.
//!
//! A [`TrainCheckpoint`] bundles everything a killed run needs to resume
//! bit-identically: the model parameters, the optimizer moments, the
//! epoch cursor (per-epoch RNG streams are re-derived from the master
//! seed, so no generator state needs serializing), the full
//! [`PrivacyLedger`] (whose accumulated γ vector *is* the RDP accountant
//! state), and the loss history.
//!
//! [`CheckpointStore`] persists generations with the classic durable
//! protocol: write to a temp file, `fsync`, atomically rename into
//! place, `fsync` the directory, and only then prune old generations —
//! the previous good checkpoint is never deleted before the new one is
//! durable. Every file carries a versioned header with a CRC32 over the
//! payload, so torn writes and bit rot are detected at load time and
//! the store falls back to the newest older generation that still
//! verifies.
//!
//! The encoding is a hand-rolled little-endian binary format
//! (`f64::to_bits`, length-prefixed sections): lossless, so restored
//! runs continue bit-for-bit, and dependency-free.

use std::io::Write;
use std::path::{Path, PathBuf};

use privim_dp::ledger::PrivacyLedger;
use privim_nn::matrix::Matrix;
use privim_nn::models::ModelKind;
use privim_nn::optim::OptimizerSnapshot;
use privim_nn::serialize::Checkpoint as ModelCheckpoint;
use privim_obs::FaultSignal;

/// Magic prefix of the checkpoint file format.
const CKPT_MAGIC: &[u8; 4] = b"PVCK";
/// Format version; bumped on any layout change. Version 2 added the
/// 128-bit run trace id after `config_crc`; version 3 added the split
/// provenance section after the histories. Loading still accepts
/// version-2 files (they decode with `split: None`), so stores written
/// by older builds keep their newest-valid fallback.
const CKPT_VERSION: u32 = 3;
/// Oldest format version [`CheckpointStore::load`] still accepts.
const CKPT_MIN_VERSION: u32 = 2;
/// Header: magic + version + payload length + payload CRC32.
const HEADER_LEN: usize = 4 + 4 + 8 + 4;

/// Errors from saving or loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying (or injected) I/O failure.
    Io(std::io::Error),
    /// The file failed header, checksum, or structural validation.
    Corrupt(String),
    /// An injected kill fired mid-operation (fault harness only): abort
    /// immediately, leaving on-disk state exactly as it is.
    Killed {
        /// The fault site that fired.
        site: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Killed { site } => write!(f, "killed at fault site {site}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<FaultSignal> for CheckpointError {
    fn from(signal: FaultSignal) -> Self {
        match signal {
            FaultSignal::Kill { site } => CheckpointError::Killed { site },
            FaultSignal::Io(e) => CheckpointError::Io(e),
        }
    }
}

/// CRC32 (IEEE 802.3, reflected) over `bytes`. Table-free bitwise form:
/// checkpoint payloads are small enough that throughput is irrelevant
/// next to the `fsync` they precede.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// How the train/test node split was drawn, persisted so privacy
/// audits can reconstruct the exact membership ground truth from the
/// checkpoint alone (no side channel to the original invocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitProvenance {
    /// Seed of the RNG handed to `NodeSplit::random`.
    pub split_seed: u64,
    /// Fraction of nodes assigned to the train split.
    pub train_fraction: f64,
}

/// Everything needed to resume a killed training run bit-identically.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Number of completed epochs (the resume loop starts here).
    pub epoch: u64,
    /// The run's master seed; per-epoch RNGs are derived from it, so the
    /// epoch cursor alone pins the entire remaining randomness.
    pub master_seed: u64,
    /// CRC32 of the run configuration's debug rendering; resuming under
    /// a different configuration is refused.
    pub config_crc: u32,
    /// The run-scoped trace id (0 when tracing is off). Restored on
    /// resume so a continuation provably correlates with its
    /// predecessor's telemetry across the kill.
    pub trace_id: u128,
    /// Model architecture + parameters.
    pub model: ModelCheckpoint,
    /// Optimizer internal state (moments, step counter).
    pub optimizer: OptimizerSnapshot,
    /// The privacy ledger (None for non-private runs). Its accumulated
    /// γ vector is the accountant state; restoring it restores exact ε
    /// accounting.
    pub ledger: Option<PrivacyLedger>,
    /// Mean batch loss of every completed epoch.
    pub losses: Vec<f64>,
    /// Clip fraction of every completed epoch (private runs).
    pub clip_fractions: Vec<f64>,
    /// Split provenance (None for runs that drew no node split, and
    /// for checkpoints written by format versions before 3).
    pub split: Option<SplitProvenance>,
}

impl TrainCheckpoint {
    /// Encodes the checkpoint payload (header-less; the store adds the
    /// checksummed header on write).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.master_seed.to_le_bytes());
        out.extend_from_slice(&self.config_crc.to_le_bytes());
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        // Model: kind (index into ModelKind::ALL), dims, named matrices.
        let kind_code = ModelKind::ALL
            .iter()
            .position(|&k| k == self.model.kind)
            .expect("every ModelKind appears in ALL") as u8;
        out.push(kind_code);
        out.extend_from_slice(&(self.model.in_dim as u64).to_le_bytes());
        out.extend_from_slice(&(self.model.hidden as u64).to_le_bytes());
        out.extend_from_slice(&(self.model.layers as u64).to_le_bytes());
        out.extend_from_slice(&(self.model.params.len() as u64).to_le_bytes());
        for (name, value) in &self.model.params {
            put_str(&mut out, name);
            put_matrix(&mut out, value);
        }
        // Optimizer.
        match &self.optimizer {
            OptimizerSnapshot::Sgd { lr } => {
                out.push(0);
                put_f64(&mut out, *lr);
            }
            OptimizerSnapshot::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            } => {
                out.push(1);
                for x in [*lr, *beta1, *beta2, *eps] {
                    put_f64(&mut out, x);
                }
                out.extend_from_slice(&t.to_le_bytes());
                out.extend_from_slice(&(m.len() as u64).to_le_bytes());
                for block in m.iter().chain(v.iter()) {
                    put_matrix(&mut out, block);
                }
            }
        }
        // Ledger (length-prefixed embedded blob).
        match &self.ledger {
            None => out.push(0),
            Some(ledger) => {
                out.push(1);
                let blob = ledger.to_bytes();
                out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
                out.extend_from_slice(&blob);
            }
        }
        // Histories.
        put_f64_vec(&mut out, &self.losses);
        put_f64_vec(&mut out, &self.clip_fractions);
        // Split provenance (format version 3+).
        match &self.split {
            None => out.push(0),
            Some(s) => {
                out.push(1);
                out.extend_from_slice(&s.split_seed.to_le_bytes());
                put_f64(&mut out, s.train_fraction);
            }
        }
        out
    }

    /// Decodes a payload produced by [`TrainCheckpoint::to_bytes`]
    /// (i.e. the current format version).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        Self::from_bytes_versioned(bytes, CKPT_VERSION)
    }

    /// Decodes a payload written by format `version`. Decoding is
    /// strict per version — a version-2 payload must *not* carry the
    /// split section and a version-3 payload must — so every
    /// truncation or extension of a valid payload still fails. Every
    /// length and discriminant is bounds-checked; malformed input
    /// yields `Err`, never a panic.
    pub fn from_bytes_versioned(bytes: &[u8], version: u32) -> Result<Self, CheckpointError> {
        let mut r = Reader { bytes, pos: 0 };
        let epoch = r.u64()?;
        let master_seed = r.u64()?;
        let config_crc = r.u32()?;
        let trace_id = r.u128()?;
        let kind_code = r.u8()? as usize;
        let kind = *ModelKind::ALL
            .get(kind_code)
            .ok_or_else(|| corrupt(format!("unknown model kind code {kind_code}")))?;
        let in_dim = r.len_checked("in_dim")?;
        let hidden = r.len_checked("hidden")?;
        let layers = r.len_checked("layers")?;
        let n_params = r.len_checked("param count")?;
        let mut params = Vec::with_capacity(n_params.min(1024));
        for _ in 0..n_params {
            let name = r.string()?;
            let value = r.matrix()?;
            params.push((name, value));
        }
        let model = ModelCheckpoint {
            kind,
            in_dim,
            hidden,
            layers,
            params,
        };
        model
            .validate()
            .map_err(|e| corrupt(format!("model section: {e}")))?;
        let optimizer = match r.u8()? {
            0 => OptimizerSnapshot::Sgd { lr: r.f64()? },
            1 => {
                let lr = r.f64()?;
                let beta1 = r.f64()?;
                let beta2 = r.f64()?;
                let eps = r.f64()?;
                let t = r.u64()?;
                let blocks = r.len_checked("moment count")?;
                let mut m = Vec::with_capacity(blocks.min(1024));
                let mut v = Vec::with_capacity(blocks.min(1024));
                for _ in 0..blocks {
                    m.push(r.matrix()?);
                }
                for _ in 0..blocks {
                    v.push(r.matrix()?);
                }
                OptimizerSnapshot::Adam {
                    lr,
                    beta1,
                    beta2,
                    eps,
                    t,
                    m,
                    v,
                }
            }
            tag => return Err(corrupt(format!("unknown optimizer tag {tag}"))),
        };
        let ledger = match r.u8()? {
            0 => None,
            1 => {
                let len = r.len_checked("ledger blob")?;
                let blob = r.take(len)?;
                Some(PrivacyLedger::from_bytes(blob).map_err(|e| corrupt(format!("ledger: {e}")))?)
            }
            tag => return Err(corrupt(format!("unknown ledger tag {tag}"))),
        };
        let losses = r.f64_vec()?;
        let clip_fractions = r.f64_vec()?;
        let split = if version >= 3 {
            match r.u8()? {
                0 => None,
                1 => Some(SplitProvenance {
                    split_seed: r.u64()?,
                    train_fraction: r.f64()?,
                }),
                tag => return Err(corrupt(format!("unknown split tag {tag}"))),
            }
        } else {
            None
        };
        if r.pos != bytes.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after payload",
                bytes.len() - r.pos
            )));
        }
        Ok(TrainCheckpoint {
            epoch,
            master_seed,
            config_crc,
            trace_id,
            model,
            optimizer,
            ledger,
            losses,
            clip_fractions,
            split,
        })
    }
}

fn corrupt(msg: String) -> CheckpointError {
    CheckpointError::Corrupt(msg)
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
    for &v in m.data() {
        put_f64(out, v);
    }
}

fn put_f64_vec(out: &mut Vec<u8>, vs: &[f64]) {
    out.extend_from_slice(&(vs.len() as u64).to_le_bytes());
    for &v in vs {
        put_f64(out, v);
    }
}

/// Bounds-checked little-endian cursor.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("truncated at byte {}", self.pos)))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, CheckpointError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A u64 length that must still be addressable within the buffer —
    /// rejects absurd counts before any allocation happens.
    fn len_checked(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        if n > self.bytes.len() as u64 {
            return Err(corrupt(format!("implausible {what} {n}")));
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, CheckpointError> {
        let len = self.len_checked("string length")?;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| corrupt("non-utf8 string".into()))
    }

    fn matrix(&mut self) -> Result<Matrix, CheckpointError> {
        let rows = self.len_checked("matrix rows")?;
        let cols = self.len_checked("matrix cols")?;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| n.checked_mul(8).is_some_and(|b| b <= self.bytes.len()))
            .ok_or_else(|| corrupt(format!("implausible matrix shape {rows}x{cols}")))?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f64()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.len_checked("f64 vec")?;
        if n.checked_mul(8)
            .is_none_or(|b| self.pos + b > self.bytes.len())
        {
            return Err(corrupt(format!("implausible f64 vec length {n}")));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

/// A directory of checkpoint generations (`gen-NNNNNN.ckpt`), newest
/// wins, with atomic durable writes and bounded retention.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store at `dir`, retaining the
    /// newest `keep` generations (minimum 1).
    pub fn open<P: AsRef<Path>>(dir: P, keep: usize) -> Result<Self, CheckpointError> {
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir: dir.as_ref().to_path_buf(),
            keep: keep.max(1),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn gen_path(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("gen-{epoch:06}.ckpt"))
    }

    /// Durably writes `ckpt` as generation `ckpt.epoch`:
    /// temp-write → `fsync` → rename → `fsync(dir)` → prune. A crash at
    /// any instruction leaves either the previous generations untouched
    /// (temp never renamed) or the new generation fully durable; the
    /// previous good checkpoint is never deleted before then.
    pub fn save(&self, ckpt: &TrainCheckpoint) -> Result<PathBuf, CheckpointError> {
        privim_obs::fault_point("checkpoint.write.pre").map_err(CheckpointError::from)?;
        let payload = ckpt.to_bytes();
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(CKPT_MAGIC);
        header.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(&payload).to_le_bytes());

        let final_path = self.gen_path(ckpt.epoch);
        let tmp_path = self.dir.join(format!(".gen-{:06}.ckpt.tmp", ckpt.epoch));
        {
            let mut f = std::fs::File::create(&tmp_path)?;
            f.write_all(&header)?;
            let half = payload.len() / 2;
            f.write_all(&payload[..half])?;
            // A kill here leaves a torn temp file that is never renamed:
            // the on-disk generations are untouched, exactly like a real
            // SIGKILL mid-write.
            privim_obs::fault_point("checkpoint.write.mid").map_err(CheckpointError::from)?;
            f.write_all(&payload[half..])?;
            f.sync_all()?;
        }
        // Silent-corruption site: a TruncateTail/FlipByte arm here rots
        // the temp file after its fsync, so the damage survives the
        // rename and only the CRC at load time can catch it.
        privim_obs::fault_point_file("checkpoint.write.pre_rename", &tmp_path)
            .map_err(CheckpointError::from)?;
        std::fs::rename(&tmp_path, &final_path)?;
        let post_rename = privim_obs::fault_point("checkpoint.write.post_rename");
        sync_dir(&self.dir)?;
        // The kill is honored only after the rename itself is on disk —
        // the new generation is durable, old ones were not yet pruned.
        post_rename.map_err(CheckpointError::from)?;
        privim_obs::counter("checkpoint.saved").add(1);
        privim_obs::debug!(
            "checkpoint",
            "saved",
            epoch = ckpt.epoch,
            bytes = payload.len() + HEADER_LEN,
            path = final_path.display().to_string(),
        );
        self.prune()?;
        Ok(final_path)
    }

    /// All generations on disk, ascending by epoch. Temp files and
    /// foreign names are ignored.
    pub fn generations(&self) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("gen-")
                .and_then(|rest| rest.strip_suffix(".ckpt"))
            {
                if let Ok(epoch) = num.parse::<u64>() {
                    out.push((epoch, entry.path()));
                }
            }
        }
        out.sort_by_key(|&(epoch, _)| epoch);
        Ok(out)
    }

    /// Loads and fully validates one checkpoint file: header, version,
    /// declared length, CRC32, then structural decoding.
    pub fn load(path: &Path) -> Result<TrainCheckpoint, CheckpointError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < HEADER_LEN {
            return Err(corrupt(format!(
                "file shorter than header: {}",
                bytes.len()
            )));
        }
        if &bytes[..4] != CKPT_MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if !(CKPT_MIN_VERSION..=CKPT_VERSION).contains(&version) {
            return Err(corrupt(format!("unsupported version {version}")));
        }
        let declared = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != declared {
            return Err(corrupt(format!(
                "payload length {} != declared {declared} (torn write)",
                payload.len()
            )));
        }
        let actual_crc = crc32(payload);
        if actual_crc != stored_crc {
            return Err(corrupt(format!(
                "crc mismatch: stored {stored_crc:08x}, computed {actual_crc:08x}"
            )));
        }
        TrainCheckpoint::from_bytes_versioned(payload, version)
    }

    /// Loads the newest generation that passes full validation, walking
    /// back through older generations when the latest is torn or rotted.
    /// Returns `Ok(None)` when the store holds no loadable checkpoint.
    pub fn load_latest_valid(&self) -> Result<Option<(TrainCheckpoint, PathBuf)>, CheckpointError> {
        let gens = self.generations()?;
        for (epoch, path) in gens.into_iter().rev() {
            match Self::load(&path) {
                Ok(ckpt) => return Ok(Some((ckpt, path))),
                Err(CheckpointError::Corrupt(msg)) => {
                    privim_obs::counter("checkpoint.corrupt_skipped").add(1);
                    privim_obs::warn!(
                        "checkpoint",
                        "corrupt_generation_skipped",
                        epoch = epoch,
                        path = path.display().to_string(),
                        reason = msg,
                    );
                }
                Err(other) => return Err(other),
            }
        }
        Ok(None)
    }

    /// Deletes all but the newest `keep` generations. Called only after
    /// a new generation is fully durable.
    fn prune(&self) -> Result<(), CheckpointError> {
        let gens = self.generations()?;
        if gens.len() > self.keep {
            for (_, path) in &gens[..gens.len() - self.keep] {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

/// `fsync` on the directory so the rename itself is durable (no-op
/// outside Unix).
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_nn::models::build_model;
    use privim_nn::optim::{Adam, Optimizer, Sgd};
    use privim_obs::{clear_fault_plan, set_fault_plan, FaultAction, FaultPlan};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Mutex;

    // Fault state is process-global; tests that arm plans serialize.
    static FAULT_LOCK: Mutex<()> = Mutex::new(());

    fn sample_checkpoint(epoch: u64) -> TrainCheckpoint {
        let mut rng = StdRng::seed_from_u64(epoch ^ 0xC0FFEE);
        let model = build_model(ModelKind::Gcn, 4, 8, 2, &mut rng);
        let mut adam = Adam::new(0.01);
        // Give Adam nonzero moments so the round trip is non-trivial.
        let mut params = model.params().clone();
        let grad = privim_nn::params::GradVec::zeros_like(&params);
        adam.step(&mut params, &grad);
        let mut ledger = PrivacyLedger::new(1e-5);
        let sub = privim_dp::rdp::SubsampledConfig {
            max_occurrences: 4,
            batch_size: 8,
            container_size: 64,
        };
        for _ in 0..3 {
            ledger.record_step(
                privim_dp::ledger::MechanismKind::SubsampledGaussian,
                2.0,
                4.0,
                &sub,
            );
        }
        TrainCheckpoint {
            epoch,
            master_seed: 42,
            config_crc: 0xDEAD_BEEF,
            trace_id: 0x00C0_FFEE_00C0_FFEE_00C0_FFEE_00C0_FFEE,
            model: ModelCheckpoint::capture(model.as_ref(), 4, 8, 2),
            optimizer: adam.snapshot(),
            ledger: Some(ledger),
            losses: vec![0.9, 0.7, 0.5],
            clip_fractions: vec![0.5, 0.25, 0.125],
            split: Some(SplitProvenance {
                split_seed: 42,
                train_fraction: 0.5,
            }),
        }
    }

    fn tmp_store(name: &str, keep: usize) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("privim-ckpt-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        CheckpointStore::open(&dir, keep).unwrap()
    }

    #[test]
    fn round_trip_is_bitwise_lossless() {
        let ckpt = sample_checkpoint(7);
        let decoded = TrainCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(decoded.epoch, 7);
        assert_eq!(decoded.master_seed, 42);
        assert_eq!(decoded.config_crc, 0xDEAD_BEEF);
        assert_eq!(decoded.trace_id, ckpt.trace_id);
        assert_eq!(decoded.optimizer, ckpt.optimizer);
        for ((n1, m1), (n2, m2)) in ckpt.model.params.iter().zip(&decoded.model.params) {
            assert_eq!(n1, n2);
            for (a, b) in m1.data().iter().zip(m2.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let l1 = ckpt.ledger.as_ref().unwrap();
        let l2 = decoded.ledger.as_ref().unwrap();
        assert_eq!(l1.entries(), l2.entries());
        for (a, b) in l1.gammas().iter().zip(l2.gammas()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(decoded.losses, ckpt.losses);
        assert_eq!(decoded.clip_fractions, ckpt.clip_fractions);
        assert_eq!(decoded.split, ckpt.split);
        assert_eq!(
            decoded.split.unwrap().train_fraction.to_bits(),
            0.5f64.to_bits()
        );
    }

    #[test]
    fn version2_payloads_still_decode_without_split() {
        // A version-2 payload is exactly a version-3 payload with
        // `split: None` minus its trailing one-byte split tag.
        let mut ckpt = sample_checkpoint(4);
        ckpt.split = None;
        let v3 = ckpt.to_bytes();
        let v2 = &v3[..v3.len() - 1];
        let decoded = TrainCheckpoint::from_bytes_versioned(v2, 2).unwrap();
        assert_eq!(decoded.epoch, 4);
        assert!(decoded.split.is_none());
        // Strict per-version framing: a v3 decode of a v2 payload is a
        // truncation, and a v2 decode of a v3 payload has a trailing
        // byte — both must fail.
        assert!(TrainCheckpoint::from_bytes_versioned(v2, 3).is_err());
        assert!(TrainCheckpoint::from_bytes_versioned(&v3, 2).is_err());
    }

    #[test]
    fn store_loads_version2_files_written_by_older_builds() {
        let store = tmp_store("v2compat", 3);
        let mut ckpt = sample_checkpoint(9);
        ckpt.split = None;
        let v3 = ckpt.to_bytes();
        let payload = &v3[..v3.len() - 1];
        let mut file = Vec::new();
        file.extend_from_slice(CKPT_MAGIC);
        file.extend_from_slice(&2u32.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&crc32(payload).to_le_bytes());
        file.extend_from_slice(payload);
        let path = store.dir().join("gen-000009.ckpt");
        std::fs::write(&path, &file).unwrap();
        let loaded = CheckpointStore::load(&path).unwrap();
        assert_eq!(loaded.epoch, 9);
        assert!(loaded.split.is_none(), "v2 files decode with no split");
        // The newest-valid fallback walk also sees it.
        let (latest, _) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!(latest.epoch, 9);
        // An out-of-range version is rejected outright.
        file[4..8].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, &file).unwrap();
        assert!(matches!(
            CheckpointStore::load(&path),
            Err(CheckpointError::Corrupt(msg)) if msg.contains("unsupported version")
        ));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn sgd_and_no_ledger_round_trip() {
        let mut ckpt = sample_checkpoint(1);
        ckpt.optimizer = Sgd::new(0.3).snapshot();
        ckpt.ledger = None;
        let decoded = TrainCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(decoded.optimizer, ckpt.optimizer);
        assert!(decoded.ledger.is_none());
    }

    #[test]
    fn decoder_rejects_mutations_never_panics() {
        let bytes = sample_checkpoint(3).to_bytes();
        // Every truncation point (stride keeps runtime sane).
        for cut in (0..bytes.len()).step_by(3) {
            assert!(
                TrainCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} must fail"
            );
        }
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(TrainCheckpoint::from_bytes(&extended).is_err());
        // Byte-flip sweep: decoding must never panic; flips in f64
        // payloads may legitimately still parse.
        for pos in (0..bytes.len()).step_by(5) {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0xFF;
            let _ = TrainCheckpoint::from_bytes(&mutated);
        }
    }

    #[test]
    fn store_save_load_and_prune() {
        let store = tmp_store("prune", 2);
        for epoch in [5u64, 10, 15, 20] {
            store.save(&sample_checkpoint(epoch)).unwrap();
        }
        let gens = store.generations().unwrap();
        let epochs: Vec<u64> = gens.iter().map(|&(e, _)| e).collect();
        assert_eq!(epochs, vec![15, 20], "keep=2 retains the newest two");
        let (latest, path) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!(latest.epoch, 20);
        assert!(path.ends_with("gen-000020.ckpt"));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_generation() {
        let store = tmp_store("fallback", 3);
        store.save(&sample_checkpoint(1)).unwrap();
        store.save(&sample_checkpoint(2)).unwrap();
        // Rot the newest generation on disk.
        let gens = store.generations().unwrap();
        let newest = &gens.last().unwrap().1;
        privim_obs::fault::flip_byte(newest, 40).unwrap();
        let (ckpt, _) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!(ckpt.epoch, 1, "must fall back past the rotted gen 2");
        // Truncate the older one too: nothing valid remains.
        let older = &store.generations().unwrap()[0].1;
        privim_obs::fault::truncate_tail(older, 10_000_000).unwrap();
        assert!(store.load_latest_valid().unwrap().is_none());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn kill_mid_write_leaves_previous_generation_intact() {
        let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let store = tmp_store("midkill", 3);
        store.save(&sample_checkpoint(1)).unwrap();
        set_fault_plan(FaultPlan::kill_after("checkpoint.write.mid", 1));
        match store.save(&sample_checkpoint(2)) {
            Err(CheckpointError::Killed { site }) => {
                assert_eq!(site, "checkpoint.write.mid");
            }
            other => panic!("expected kill, got {other:?}"),
        }
        clear_fault_plan();
        // The torn temp file is ignored; generation 1 still loads.
        let (ckpt, _) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!(ckpt.epoch, 1);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn silent_pre_rename_corruption_is_caught_by_crc() {
        let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let store = tmp_store("rot", 3);
        store.save(&sample_checkpoint(1)).unwrap();
        set_fault_plan(FaultPlan::new().arm(
            "checkpoint.write.pre_rename",
            1,
            FaultAction::TruncateTail(7),
        ));
        // The save itself reports success — the corruption is silent.
        store.save(&sample_checkpoint(2)).unwrap();
        clear_fault_plan();
        assert!(
            matches!(
                CheckpointStore::load(&store.gen_path(2)),
                Err(CheckpointError::Corrupt(_))
            ),
            "gen 2 must fail its CRC"
        );
        let (ckpt, _) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!(ckpt.epoch, 1, "fallback to the last good generation");
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn injected_io_error_surfaces_as_io() {
        let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let store = tmp_store("ioerr", 3);
        set_fault_plan(FaultPlan::new().arm("checkpoint.write.pre", 1, FaultAction::IoError));
        assert!(matches!(
            store.save(&sample_checkpoint(1)),
            Err(CheckpointError::Io(_))
        ));
        clear_fault_plan();
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }
}
