//! The subgraph container `G_sub` — the pool Algorithm 2 mini-batches from.

use privim_graph::ops::induced_subgraph;
use privim_graph::{Graph, NodeId};
use privim_nn::graph_tensors::GraphTensors;

/// One extracted training subgraph: the induced graph, its original node
/// ids, and the precomputed tensors for GNN forward passes.
#[derive(Debug, Clone)]
pub struct SubgraphSample {
    /// Induced subgraph with nodes relabeled to `0..n`.
    pub graph: Graph,
    /// Original node ids; `original[i]` is subgraph node `i`.
    pub original: Vec<NodeId>,
    /// Precomputed tensors (features + message-passing indices).
    pub tensors: GraphTensors,
}

impl SubgraphSample {
    /// Extracts the subgraph of `parent` induced by `nodes` and prepares
    /// its tensors with `feature_dim`-dimensional structural features.
    pub fn extract(parent: &Graph, nodes: Vec<NodeId>, feature_dim: usize) -> Self {
        let graph = induced_subgraph(parent, &nodes);
        let tensors =
            GraphTensors::with_structural_features_for_subgraph(&graph, feature_dim, &nodes);
        SubgraphSample {
            graph,
            original: nodes,
            tensors,
        }
    }

    /// Number of nodes in the sample.
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// True if the sample is empty (never produced by the samplers).
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }
}

/// The pool of training subgraphs plus bookkeeping for privacy accounting.
#[derive(Debug, Clone, Default)]
pub struct SubgraphContainer {
    samples: Vec<SubgraphSample>,
}

impl SubgraphContainer {
    /// An empty container.
    pub fn new() -> Self {
        SubgraphContainer::default()
    }

    /// Adds one extracted subgraph.
    pub fn push(&mut self, sample: SubgraphSample) {
        self.samples.push(sample);
    }

    /// Merges another container into this one (Algorithm 3, line 7).
    pub fn extend(&mut self, other: SubgraphContainer) {
        self.samples.extend(other.samples);
    }

    /// Number of subgraphs `m = |G_sub|`.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no subgraphs were extracted.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples.
    pub fn samples(&self) -> &[SubgraphSample] {
        &self.samples
    }

    /// Sample at `index`.
    pub fn get(&self, index: usize) -> &SubgraphSample {
        &self.samples[index]
    }

    /// The empirically observed maximum number of subgraphs any single
    /// original node appears in. For the dual-stage scheme this is `≤ M`
    /// by construction; for the naive scheme it is `≤ N_g` (Lemma 1). The
    /// accountant uses the *analytical* bounds, never this observation —
    /// this method exists for tests and for the EGN baseline, which has no
    /// analytical bound.
    pub fn observed_max_occurrence(&self, num_nodes: usize) -> usize {
        let mut counts = vec![0usize; num_nodes];
        for s in &self.samples {
            for &v in &s.original {
                counts[v as usize] += 1;
            }
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// The maximum number of subgraphs any single *edge* (adjacent node
    /// pair) of the parent graph appears in — the empirical pair
    /// co-occurrence bound used by edge-level DP accounting
    /// (`AdjacencyLevel::Edge`). Always at most
    /// [`SubgraphContainer::observed_max_occurrence`].
    pub fn observed_max_edge_occurrence(&self) -> usize {
        use std::collections::HashMap;
        let mut counts: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        for s in &self.samples {
            for (local_v, local_u, _) in s.graph.edges() {
                let a = s.original[local_v as usize];
                let b = s.original[local_u as usize];
                *counts.entry((a, b)).or_insert(0) += 1;
            }
        }
        counts.into_values().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::GraphBuilder;

    fn parent() -> Graph {
        let mut b = GraphBuilder::new(6);
        for i in 0..5 {
            b.add_edge(i, i + 1, 1.0);
        }
        b.build()
    }

    #[test]
    fn extract_builds_tensors_and_mapping() {
        let g = parent();
        let s = SubgraphSample::extract(&g, vec![1, 2, 3], 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s.graph.num_nodes(), 3);
        assert_eq!(s.graph.num_edges(), 2); // 1->2, 2->3 survive
        assert_eq!(s.tensors.num_nodes, 3);
        assert_eq!(s.tensors.feature_dim(), 4);
        assert_eq!(s.original, vec![1, 2, 3]);
    }

    #[test]
    fn occurrence_counting() {
        let g = parent();
        let mut c = SubgraphContainer::new();
        c.push(SubgraphSample::extract(&g, vec![0, 1], 2));
        c.push(SubgraphSample::extract(&g, vec![1, 2], 2));
        c.push(SubgraphSample::extract(&g, vec![1, 5], 2));
        assert_eq!(c.len(), 3);
        assert_eq!(c.observed_max_occurrence(6), 3); // node 1 in all three
    }

    #[test]
    fn extend_merges_pools() {
        let g = parent();
        let mut a = SubgraphContainer::new();
        a.push(SubgraphSample::extract(&g, vec![0, 1], 2));
        let mut b = SubgraphContainer::new();
        b.push(SubgraphSample::extract(&g, vec![2, 3], 2));
        b.push(SubgraphSample::extract(&g, vec![4, 5], 2));
        a.extend(b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_container_reports_zero() {
        let c = SubgraphContainer::new();
        assert!(c.is_empty());
        assert_eq!(c.observed_max_occurrence(10), 0);
        assert_eq!(c.observed_max_edge_occurrence(), 0);
    }

    #[test]
    fn edge_occurrence_never_exceeds_node_occurrence() {
        let g = parent();
        let mut c = SubgraphContainer::new();
        c.push(SubgraphSample::extract(&g, vec![0, 1, 2], 2));
        c.push(SubgraphSample::extract(&g, vec![1, 2, 3], 2));
        c.push(SubgraphSample::extract(&g, vec![2, 4], 2));
        let node = c.observed_max_occurrence(6);
        let edge = c.observed_max_edge_occurrence();
        assert!(edge <= node, "edge {edge} > node {node}");
        // Edge 1->2 appears in the first two subgraphs.
        assert_eq!(edge, 2);
        assert_eq!(node, 3); // node 2 in all three
    }
}
