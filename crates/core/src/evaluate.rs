//! Evaluation utilities beyond raw spread: seed-set agreement, coverage
//! curves, and multi-method comparisons against the CELF reference.

use serde::{Deserialize, Serialize};

use privim_graph::{Graph, NodeId};
use privim_im::greedy::celf_coverage;
use privim_im::models::deterministic_one_step_coverage;

/// Jaccard similarity of two seed sets (1.0 = identical).
pub fn seed_jaccard(a: &[NodeId], b: &[NodeId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<_> = a.iter().collect();
    let sb: std::collections::HashSet<_> = b.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Precision@k of `selected` against a reference seed set: the fraction of
/// selected seeds that the reference also picked.
pub fn seed_precision(selected: &[NodeId], reference: &[NodeId]) -> f64 {
    if selected.is_empty() {
        return 0.0;
    }
    let reference: std::collections::HashSet<_> = reference.iter().collect();
    selected.iter().filter(|s| reference.contains(s)).count() as f64 / selected.len() as f64
}

/// Spread of every prefix of `seeds` under the deterministic one-step
/// objective — the marginal-utility curve a practitioner inspects to pick
/// the campaign budget.
pub fn coverage_curve(g: &Graph, seeds: &[NodeId]) -> Vec<usize> {
    (1..=seeds.len())
        .map(|k| deterministic_one_step_coverage(g, &seeds[..k]))
        .collect()
}

/// A method's full scorecard against CELF on one graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scorecard {
    /// Spread of the evaluated seed set.
    pub spread: f64,
    /// CELF reference spread for the same `k`.
    pub celf_spread: f64,
    /// Coverage ratio percent.
    pub coverage_ratio: f64,
    /// Jaccard with the CELF seed set.
    pub jaccard_vs_celf: f64,
    /// Precision against the CELF seed set.
    pub precision_vs_celf: f64,
}

/// Builds a [`Scorecard`] for `seeds` under the deterministic one-step
/// objective.
pub fn scorecard(g: &Graph, seeds: &[NodeId]) -> Scorecard {
    let spread = deterministic_one_step_coverage(g, seeds) as f64;
    let (celf_seeds, celf_spread) = celf_coverage(g, seeds.len());
    Scorecard {
        spread,
        celf_spread,
        coverage_ratio: if celf_spread > 0.0 {
            100.0 * spread / celf_spread
        } else {
            0.0
        },
        jaccard_vs_celf: seed_jaccard(seeds, &celf_seeds),
        precision_vs_celf: seed_precision(seeds, &celf_seeds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::GraphBuilder;

    fn star(spokes: usize) -> Graph {
        let mut b = GraphBuilder::new(spokes + 1);
        for i in 1..=spokes {
            b.add_edge(0, i as NodeId, 1.0);
        }
        b.build()
    }

    #[test]
    fn jaccard_and_precision_basics() {
        assert_eq!(seed_jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(seed_jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((seed_jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(seed_jaccard(&[], &[]), 1.0);
        assert_eq!(seed_precision(&[1, 2], &[2, 3]), 0.5);
        assert_eq!(seed_precision(&[], &[1]), 0.0);
    }

    #[test]
    fn coverage_curve_is_monotone_and_ends_at_total() {
        let g = star(4);
        let curve = coverage_curve(&g, &[0, 1, 2]);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(curve[0], 5); // hub covers everything
        assert_eq!(
            *curve.last().unwrap(),
            deterministic_one_step_coverage(&g, &[0, 1, 2])
        );
    }

    #[test]
    fn scorecard_against_celf() {
        let g = star(5);
        // Picking the hub is optimal.
        let card = scorecard(&g, &[0]);
        assert_eq!(card.coverage_ratio, 100.0);
        assert_eq!(card.jaccard_vs_celf, 1.0);
        assert_eq!(card.precision_vs_celf, 1.0);
        // Picking a spoke is maximally wrong.
        let bad = scorecard(&g, &[3]);
        assert!(bad.coverage_ratio < 20.0);
        assert_eq!(bad.jaccard_vs_celf, 0.0);
    }

    #[test]
    fn scorecard_serializes() {
        let g = star(3);
        let card = scorecard(&g, &[0]);
        let json = serde_json::to_string(&card).unwrap();
        assert!(json.contains("coverage_ratio"));
    }
}
