//! Algorithm 2: differentially private GNN training.
//!
//! Treats each subgraph as one sample: per-subgraph gradients are clipped
//! to l2 norm `C`, summed over the batch, perturbed with Gaussian noise of
//! standard deviation `σ · Δ_g` (`Δ_g = C · N_g`, Lemma 2), and applied
//! with learning rate `η / B`. The same loop also serves the baselines:
//! noise can be disabled (non-private) or swapped for Symmetric
//! Multivariate Laplace (the HP baseline).

use rand::seq::SliceRandom;
use rand::Rng;

use privim_dp::ledger::{MechanismKind, PrivacyLedger};
use privim_dp::mechanisms::{gaussian, symmetric_multivariate_laplace};
use privim_dp::rdp::{calibrate_sigma, RdpAccountant, SubsampledConfig};
use privim_nn::models::GnnModel;
use privim_nn::optim::{Optimizer, Sgd};
use privim_nn::params::GradVec;
use privim_nn::tape::Tape;

use crate::config::{LossKind, PrivImConfig};
use crate::container::SubgraphContainer;
use crate::loss::{im_loss, lt_loss};

/// Which noise the private training loop injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseKind {
    /// Gaussian noise (Algorithm 2; PrivIM, PrivIM*, EGN).
    Gaussian,
    /// Symmetric Multivariate Laplace (the HP baseline's mechanism).
    SymmetricLaplace,
}

/// Privacy setup for one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacySetup {
    /// Calibrated noise multiplier σ.
    pub sigma: f64,
    /// Occurrence bound `N_g` used for the sensitivity `Δ_g = C · N_g`.
    pub max_occurrences: usize,
    /// Noise family.
    pub noise: NoiseKind,
    /// The ε the calibration targeted.
    pub target_epsilon: f64,
    /// The δ used.
    pub delta: f64,
}

impl PrivacySetup {
    /// Calibrates σ for `(epsilon, delta)` over the run described by
    /// `config` and the container size `m` (Theorem 3 + Theorem 1).
    pub fn calibrate(
        epsilon: f64,
        delta: f64,
        config: &PrivImConfig,
        container_size: usize,
        max_occurrences: usize,
        noise: NoiseKind,
    ) -> Self {
        let sub = SubsampledConfig {
            max_occurrences: max_occurrences.max(1),
            batch_size: config.batch_size.min(container_size.max(1)),
            container_size: container_size.max(1),
        };
        let sigma = calibrate_sigma(epsilon, delta, &sub, config.iterations);
        PrivacySetup {
            sigma,
            max_occurrences: sub.max_occurrences,
            noise,
            target_epsilon: epsilon,
            delta,
        }
    }

    /// Absolute per-coordinate noise standard deviation `σ · C · N_g`.
    pub fn noise_std(&self, clip_bound: f64) -> f64 {
        self.sigma * clip_bound * self.max_occurrences as f64
    }

    /// The `(ε, α)` actually spent by `iterations` steps at this σ.
    pub fn spent_epsilon(&self, config: &PrivImConfig, container_size: usize) -> (f64, f64) {
        let sub = self.subsampled_config(config, container_size);
        let mut acct = RdpAccountant::default();
        acct.compose_subsampled_gaussian(self.sigma, &sub, config.iterations);
        acct.epsilon(self.delta)
    }

    /// The cumulative `(ε, best α)` after each of the run's iterations —
    /// the per-step privacy spend telemetry reports.
    pub fn epsilon_schedule(
        &self,
        config: &PrivImConfig,
        container_size: usize,
    ) -> Vec<(f64, f64)> {
        let sub = self.subsampled_config(config, container_size);
        RdpAccountant::default().epsilon_schedule(self.sigma, &sub, config.iterations, self.delta)
    }

    fn subsampled_config(&self, config: &PrivImConfig, container_size: usize) -> SubsampledConfig {
        SubsampledConfig {
            max_occurrences: self.max_occurrences,
            batch_size: config.batch_size.min(container_size.max(1)),
            container_size: container_size.max(1),
        }
    }
}

/// Why a training run aborted.
#[derive(Debug)]
pub enum TrainError {
    /// `max_bad_steps` consecutive steps produced a non-finite loss or
    /// gradient; the run has diverged beyond recovery.
    NonFiniteDivergence {
        /// Iteration index (0-based) of the last bad step.
        step: usize,
        /// Length of the non-finite streak.
        consecutive: usize,
    },
    /// An armed fault fired (fault-injection harness; never occurs in
    /// production where no [`privim_obs::FaultPlan`] is installed).
    Fault(privim_obs::FaultSignal),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NonFiniteDivergence { step, consecutive } => write!(
                f,
                "training diverged: {consecutive} consecutive non-finite steps ending at \
                 iteration {step}"
            ),
            TrainError::Fault(signal) => write!(f, "{signal}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<privim_obs::FaultSignal> for TrainError {
    fn from(signal: privim_obs::FaultSignal) -> Self {
        TrainError::Fault(signal)
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean batch loss per iteration.
    pub losses: Vec<f64>,
    /// Per-iteration fraction of subgraph gradients whose l2 norm hit the
    /// clip bound `C` (empty for non-private runs, which never clip).
    pub clip_fractions: Vec<f64>,
    /// Wall-clock seconds spent in the training loop.
    pub training_secs: f64,
    /// σ used (None for non-private runs).
    pub sigma: Option<f64>,
}

/// Outcome of one [`dp_step`] invocation.
pub(crate) struct StepStats {
    /// Mean batch loss (may be non-finite when `skipped`).
    pub mean_loss: f64,
    /// Fraction of per-subgraph gradients that hit the clip bound.
    pub clip_fraction: f64,
    /// Mean pre-clip gradient l2 norm across the batch.
    pub grad_norm_pre: f64,
    /// Mean post-clip gradient l2 norm across the batch.
    pub grad_norm_post: f64,
    /// True when the step was abandoned before any noise was drawn
    /// because the loss or summed gradient went non-finite. A skipped
    /// step releases nothing, so it consumes no privacy budget.
    pub skipped: bool,
}

/// One Algorithm 2 step: sample a batch, accumulate clipped per-subgraph
/// gradients, perturb, and apply. Shared verbatim by the legacy
/// [`train`] loop (one RNG stream across all iterations) and the
/// crash-safe resumable loop in [`crate::resume`] (a fresh derived RNG
/// per epoch) — both must take bitwise-identical steps.
///
/// RNG discipline: only batch selection and noise sampling touch `rng`,
/// in that order; the non-finite guard and the fault site never do, so
/// guarded and unguarded healthy runs are bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dp_step<R: Rng + ?Sized>(
    model: &mut dyn GnnModel,
    optimizer: &mut dyn Optimizer,
    container: &SubgraphContainer,
    config: &PrivImConfig,
    privacy: Option<&PrivacySetup>,
    indices: &[usize],
    batch: usize,
    step: usize,
    rng: &mut R,
) -> Result<StepStats, TrainError> {
    let chosen: Vec<usize> = indices.choose_multiple(rng, batch).copied().collect();
    let mut sum = GradVec::zeros_like(model.params());
    let mut batch_loss = 0.0;
    let mut clipped = 0usize;
    let mut pre_norm_sum = 0.0;
    let mut post_norm_sum = 0.0;
    for &idx in &chosen {
        let sample = container.get(idx);
        let mut tape = Tape::new();
        let pv = model.params().bind(&mut tape);
        let probs = model.forward(&mut tape, &sample.tensors, &pv);
        let loss = match config.loss {
            LossKind::IcProduct => im_loss(
                &mut tape,
                &sample.tensors,
                probs,
                config.diffusion_steps,
                config.lambda,
            ),
            LossKind::LtTruncated => lt_loss(
                &mut tape,
                &sample.tensors,
                probs,
                config.diffusion_steps,
                config.lambda,
            ),
        };
        batch_loss += tape.value(loss).as_scalar();
        let grads = tape.backward(loss);
        let mut gv = model.params().grads(&pv, grads);
        // Per-sample clip + accumulate (Algorithm 2, lines 6-7) over
        // P gradient entries: the l2 norm costs 2P flops, the clip
        // rescale P, the accumulate P; traffic is one read for the
        // norm, read+write for the rescale, and read + read-modify-
        // write for the accumulate.
        let prof = privim_obs::ProfScope::enter("train.clip_accumulate");
        let p64 = gv.num_entries() as u64;
        if privacy.is_some() {
            prof.add_work(4 * p64, 8 * 6 * p64, p64);
            let pre_norm = gv.clip(config.clip_bound);
            pre_norm_sum += pre_norm;
            post_norm_sum += pre_norm.min(config.clip_bound);
            if pre_norm > config.clip_bound {
                clipped += 1;
            }
        } else {
            prof.add_work(p64, 8 * 3 * p64, p64);
        }
        sum.add_assign(&gv);
        drop(prof);
    }
    privim_obs::fault_point("train.post_backward")?;
    let mean_loss = batch_loss / batch as f64;
    let clip_fraction = clipped as f64 / batch as f64;
    let grad_norm_pre = pre_norm_sum / batch as f64;
    let grad_norm_post = post_norm_sum / batch as f64;
    // Non-finite guard, evaluated BEFORE any noise is sampled: a skipped
    // step releases no perturbed gradient, so the accountant records
    // nothing and no budget is spent. (Clipping bounds each sample's
    // gradient norm but NaN/Inf pass through `min` unclamped.)
    let finite = mean_loss.is_finite()
        && sum
            .blocks()
            .iter()
            .all(|b| b.data().iter().all(|v| v.is_finite()));
    if !finite {
        privim_obs::counter("train.bad_steps").add(1);
        privim_obs::warn!(
            "train",
            "non_finite_step",
            step = step,
            loss = mean_loss,
            private = privacy.is_some(),
        );
        return Ok(StepStats {
            mean_loss,
            clip_fraction,
            grad_norm_pre,
            grad_norm_post,
            skipped: true,
        });
    }
    if let Some(setup) = privacy {
        let std = setup.noise_std(config.clip_bound);
        match setup.noise {
            NoiseKind::Gaussian => {
                sum.map_entries_mut(|x| *x += gaussian(rng, std));
            }
            NoiseKind::SymmetricLaplace => {
                // SML draws one radial factor per block application; we
                // apply it blockwise to keep the heavy-tailed coupling.
                for block in sum.blocks_mut() {
                    let noise = symmetric_multivariate_laplace(rng, std, block.data().len());
                    for (x, n) in block.data_mut().iter_mut().zip(noise) {
                        *x += n;
                    }
                }
            }
        }
    }
    sum.scale_assign(1.0 / batch as f64);
    optimizer.step(model.params_mut(), &sum);
    Ok(StepStats {
        mean_loss,
        clip_fraction,
        grad_norm_pre,
        grad_norm_post,
        skipped: false,
    })
}

/// Runs Algorithm 2. With `privacy = None`, runs the non-private variant
/// (no clipping, no noise) used by the `ε = ∞` reference.
///
/// Fails with [`TrainError::NonFiniteDivergence`] after
/// `config.max_bad_steps` consecutive non-finite steps; isolated bad
/// steps are skipped before noise is drawn, so they consume no budget.
pub fn train<R: Rng + ?Sized>(
    model: &mut dyn GnnModel,
    container: &SubgraphContainer,
    config: &PrivImConfig,
    privacy: Option<&PrivacySetup>,
    rng: &mut R,
) -> Result<TrainReport, TrainError> {
    assert!(
        !container.is_empty(),
        "cannot train on an empty subgraph container"
    );
    let _span = privim_obs::span!("training");
    let started = std::time::Instant::now();
    let mut optimizer = Sgd::new(config.learning_rate);
    let m = container.len();
    let batch = config.batch_size.min(m);
    let indices: Vec<usize> = (0..m).collect();
    let mut losses = Vec::with_capacity(config.iterations);
    let mut clip_fractions = Vec::with_capacity(if privacy.is_some() {
        config.iterations
    } else {
        0
    });
    // Per-step cumulative ε is O(steps × orders) to compute, so only pay
    // for it when an Info-level sink is listening. Never touches `rng`.
    let epsilon_schedule: Option<Vec<(f64, f64)>> = privacy
        .filter(|_| privim_obs::enabled(privim_obs::Level::Info))
        .map(|setup| setup.epsilon_schedule(config, m));
    // The budget ledger appends one entry (and emits a `dp`/`mechanism`
    // event) per noisy step. Like the schedule above, it only runs when a
    // sink listens, and it never touches `rng`.
    let mut ledger: Option<PrivacyLedger> = privacy
        .filter(|_| privim_obs::enabled(privim_obs::Level::Debug))
        .map(|setup| PrivacyLedger::new(setup.delta));
    let mut consecutive_bad = 0usize;
    let mut noisy_steps = 0usize;

    for iter in 0..config.iterations {
        let stats = dp_step(
            model,
            &mut optimizer,
            container,
            config,
            privacy,
            &indices,
            batch,
            iter,
            rng,
        )?;
        losses.push(stats.mean_loss);
        privim_obs::counter("train.iterations").add(1);
        privim_obs::histogram("train.loss").record(stats.mean_loss);
        if stats.skipped {
            consecutive_bad += 1;
            if privacy.is_some() {
                clip_fractions.push(stats.clip_fraction);
            }
            if consecutive_bad >= config.max_bad_steps {
                return Err(TrainError::NonFiniteDivergence {
                    step: iter,
                    consecutive: consecutive_bad,
                });
            }
            continue;
        }
        consecutive_bad = 0;
        if let Some(setup) = privacy {
            noisy_steps += 1;
            clip_fractions.push(stats.clip_fraction);
            privim_obs::histogram("train.clip_fraction").record(stats.clip_fraction);
            let spent = epsilon_schedule
                .as_ref()
                .and_then(|s| s.get(noisy_steps - 1))
                .copied();
            privim_obs::info!(
                "train",
                "epoch",
                epoch = iter,
                loss = stats.mean_loss,
                clip_fraction = stats.clip_fraction,
                grad_norm_pre = stats.grad_norm_pre,
                grad_norm_post = stats.grad_norm_post,
                noise_std = setup.noise_std(config.clip_bound),
                epsilon_spent = spent.map(|(eps, _)| eps),
            );
            if let Some((eps, alpha)) = spent {
                privim_obs::debug!(
                    "dp",
                    "epsilon",
                    step = iter + 1,
                    epsilon = eps,
                    alpha = alpha
                );
            }
            if let Some(ledger) = ledger.as_mut() {
                let kind = match setup.noise {
                    NoiseKind::Gaussian => MechanismKind::SubsampledGaussian,
                    NoiseKind::SymmetricLaplace => MechanismKind::SubsampledSml,
                };
                let sensitivity = config.clip_bound * setup.max_occurrences as f64;
                let sub = setup.subsampled_config(config, m);
                ledger.record_step(kind, setup.sigma, sensitivity, &sub);
            }
        } else {
            privim_obs::info!("train", "epoch", epoch = iter, loss = stats.mean_loss);
        }
    }

    if let Some(ledger) = &ledger {
        debug_assert!(
            ledger.verify_replay(1e-9).is_ok(),
            "privacy ledger replay diverged from its recorded epsilons"
        );
    }

    Ok(TrainReport {
        losses,
        clip_fractions,
        training_secs: started.elapsed().as_secs_f64(),
        sigma: privacy.map(|p| p.sigma),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_datasets::generators::holme_kim;
    use privim_graph::NodeId;
    use privim_nn::models::{build_model, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::sampling::extract_dual_stage;

    fn setup(seed: u64) -> (privim_graph::Graph, SubgraphContainer, PrivImConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = holme_kim(300, 4, 0.4, 1.0, &mut rng);
        let cfg = PrivImConfig {
            subgraph_size: 10,
            walk_length: 120,
            hops: 2,
            sampling_rate: Some(0.6),
            freq_threshold: 4,
            feature_dim: 4,
            hidden: 8,
            batch_size: 6,
            iterations: 8,
            ..PrivImConfig::default()
        };
        let candidates: Vec<NodeId> = g.nodes().collect();
        let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
        (g, out.container, cfg)
    }

    #[test]
    fn non_private_training_reduces_loss() {
        let (_, container, mut cfg) = setup(1);
        cfg.iterations = 60;
        cfg.learning_rate = 0.05;
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = build_model(
            ModelKind::Gcn,
            cfg.feature_dim,
            cfg.hidden,
            cfg.hops,
            &mut rng,
        );
        let report = train(model.as_mut(), &container, &cfg, None, &mut rng).unwrap();
        assert_eq!(report.losses.len(), 60);
        assert!(report.sigma.is_none());
        assert!(
            report.clip_fractions.is_empty(),
            "non-private runs never clip"
        );
        // Per-iteration losses are noisy (each batch holds different random
        // subgraphs), so compare the initial average against the best and
        // the trailing average against the initial one with a tolerance.
        let head: f64 = report.losses[..10].iter().sum::<f64>() / 10.0;
        let tail: f64 = report.losses[50..].iter().sum::<f64>() / 10.0;
        let best = report.losses.iter().copied().fold(f64::MAX, f64::min);
        assert!(
            best < head * 0.9,
            "best {best} not clearly below initial {head}"
        );
        assert!(
            tail < head * 1.02,
            "loss diverged: head {head}, tail {tail}"
        );
    }

    #[test]
    fn private_training_runs_and_spends_at_most_epsilon() {
        let (_, container, cfg) = setup(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = build_model(
            ModelKind::Grat,
            cfg.feature_dim,
            cfg.hidden,
            cfg.hops,
            &mut rng,
        );
        let setup = PrivacySetup::calibrate(
            3.0,
            1e-4,
            &cfg,
            container.len(),
            cfg.freq_threshold,
            NoiseKind::Gaussian,
        );
        let report = train(model.as_mut(), &container, &cfg, Some(&setup), &mut rng).unwrap();
        assert_eq!(report.losses.len(), cfg.iterations);
        assert_eq!(report.sigma, Some(setup.sigma));
        assert_eq!(report.clip_fractions.len(), cfg.iterations);
        assert!(report
            .clip_fractions
            .iter()
            .all(|&f| (0.0..=1.0).contains(&f)));
        let (spent, _) = setup.spent_epsilon(&cfg, container.len());
        assert!(spent <= 3.0 * 1.0001, "spent {spent} > target");
        // Parameters stay finite despite noise.
        for p in model.params().iter() {
            assert!(p.value.is_finite(), "{} became non-finite", p.name);
        }
    }

    #[test]
    fn sml_noise_path_runs() {
        let (_, container, cfg) = setup(5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = build_model(
            ModelKind::Gcn,
            cfg.feature_dim,
            cfg.hidden,
            cfg.hops,
            &mut rng,
        );
        let setup = PrivacySetup::calibrate(
            2.0,
            1e-4,
            &cfg,
            container.len(),
            11,
            NoiseKind::SymmetricLaplace,
        );
        let report = train(model.as_mut(), &container, &cfg, Some(&setup), &mut rng).unwrap();
        assert_eq!(report.losses.len(), cfg.iterations);
        for p in model.params().iter() {
            assert!(p.value.is_finite());
        }
    }

    #[test]
    fn noise_std_scales_with_occurrence_bound() {
        let (_, container, cfg) = setup(7);
        let a = PrivacySetup::calibrate(3.0, 1e-4, &cfg, container.len(), 4, NoiseKind::Gaussian);
        let b = PrivacySetup::calibrate(3.0, 1e-4, &cfg, container.len(), 100, NoiseKind::Gaussian);
        assert!(
            b.noise_std(cfg.clip_bound) > a.noise_std(cfg.clip_bound),
            "larger N_g must inject more absolute noise: {} vs {}",
            b.noise_std(cfg.clip_bound),
            a.noise_std(cfg.clip_bound)
        );
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (_, container, cfg) = setup(8);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model = build_model(
                ModelKind::Gcn,
                cfg.feature_dim,
                cfg.hidden,
                cfg.hops,
                &mut rng,
            );
            let r = train(model.as_mut(), &container, &cfg, None, &mut rng).unwrap();
            r.losses
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn poisoned_learning_rate_aborts_instead_of_emitting_garbage() {
        // An absurd learning rate overflows the weights within a step or
        // two; the guard must skip the non-finite steps (drawing no
        // noise) and abort after `max_bad_steps` consecutive ones.
        let (_, container, mut cfg) = setup(13);
        cfg.learning_rate = 1e300;
        cfg.iterations = 30;
        cfg.max_bad_steps = 3;
        let mut rng = StdRng::seed_from_u64(14);
        let mut model = build_model(
            ModelKind::Gcn,
            cfg.feature_dim,
            cfg.hidden,
            cfg.hops,
            &mut rng,
        );
        let setup = PrivacySetup::calibrate(
            3.0,
            1e-4,
            &cfg,
            container.len(),
            cfg.freq_threshold,
            NoiseKind::Gaussian,
        );
        match train(model.as_mut(), &container, &cfg, Some(&setup), &mut rng) {
            Err(TrainError::NonFiniteDivergence { consecutive, .. }) => {
                assert_eq!(consecutive, cfg.max_bad_steps);
            }
            other => panic!("expected divergence abort, got {other:?}"),
        }
        // The non-private path hits the same guard.
        let mut rng = StdRng::seed_from_u64(15);
        let mut model = build_model(
            ModelKind::Gcn,
            cfg.feature_dim,
            cfg.hidden,
            cfg.hops,
            &mut rng,
        );
        assert!(matches!(
            train(model.as_mut(), &container, &cfg, None, &mut rng),
            Err(TrainError::NonFiniteDivergence { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "empty subgraph container")]
    fn empty_container_is_rejected() {
        let (_, _, cfg) = setup(11);
        let container = SubgraphContainer::new();
        let mut rng = StdRng::seed_from_u64(12);
        let mut model = build_model(
            ModelKind::Gcn,
            cfg.feature_dim,
            cfg.hidden,
            cfg.hops,
            &mut rng,
        );
        let _ = train(model.as_mut(), &container, &cfg, None, &mut rng);
    }
}
