//! The parameter-selection indicator (Section IV-C, Eqs. 10–12 and
//! Appendix H).
//!
//! Models the utility trend over the subgraph size `n` and the frequency
//! threshold `M` with Gamma pdfs whose shapes are tied to the dataset size:
//! `β_n = k_n ln|V| + b_n` and `β_M = k_M / ln|V| + b_M`, so the indicator
//! adapts across datasets without running the full training pipeline.

use serde::{Deserialize, Serialize};

use privim_dp::math::{gamma_mode, gamma_pdf};

/// Parameters of the indicator `I(n, M)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Indicator {
    /// Scale `ψ_n` of the subgraph-size Gamma.
    pub psi_n: f64,
    /// Scale `ψ_M` of the threshold Gamma.
    pub psi_m: f64,
    /// Slope `k_n` of `β_n` against `ln|V|`.
    pub k_n: f64,
    /// Intercept `b_n`.
    pub b_n: f64,
    /// Slope `k_M` of `β_M` against `1/ln|V|`.
    pub k_m: f64,
    /// Intercept `b_M`.
    pub b_m: f64,
}

impl Default for Indicator {
    /// The constants the paper reports for all datasets (Section V-D):
    /// `ψ_n = 25, ψ_M = 5, k_n = 0.47, b_n = −1.03, k_M = 4.02, b_M = 1.22`.
    fn default() -> Self {
        Indicator {
            psi_n: 25.0,
            psi_m: 5.0,
            k_n: 0.47,
            b_n: -1.03,
            k_m: 4.02,
            b_m: 1.22,
        }
    }
}

impl Indicator {
    /// Shape `β_n` for a graph with `num_nodes` nodes (Eq. 12).
    pub fn beta_n(&self, num_nodes: usize) -> f64 {
        self.k_n * (num_nodes as f64).ln() + self.b_n
    }

    /// Shape `β_M` for a graph with `num_nodes` nodes (Eq. 12).
    pub fn beta_m(&self, num_nodes: usize) -> f64 {
        self.k_m / (num_nodes as f64).ln() + self.b_m
    }

    /// Unnormalized indicator `ξ(n) + ξ(M)` (numerator of Eq. 10).
    pub fn raw(&self, n: f64, m: f64, num_nodes: usize) -> f64 {
        gamma_pdf(n, self.beta_n(num_nodes).max(1e-6), self.psi_n)
            + gamma_pdf(m, self.beta_m(num_nodes).max(1e-6), self.psi_m)
    }

    /// Normalized indicator `I(n, M)` over the grid (Eq. 10): raw values
    /// divided by the grid maximum, so the best combination scores 1.
    pub fn values_on_grid(
        &self,
        n_grid: &[usize],
        m_grid: &[usize],
        num_nodes: usize,
    ) -> Vec<Vec<f64>> {
        let mut raw: Vec<Vec<f64>> = n_grid
            .iter()
            .map(|&n| {
                m_grid
                    .iter()
                    .map(|&m| self.raw(n as f64, m as f64, num_nodes))
                    .collect()
            })
            .collect();
        let max = raw
            .iter()
            .flatten()
            .copied()
            .fold(f64::MIN, f64::max)
            .max(f64::MIN_POSITIVE);
        for row in &mut raw {
            for v in row {
                *v /= max;
            }
        }
        raw
    }

    /// Grid search guided by the indicator (Section IV-C): returns the
    /// `(n, M)` pair maximizing `I` over the given grids.
    pub fn best(&self, n_grid: &[usize], m_grid: &[usize], num_nodes: usize) -> (usize, usize) {
        assert!(
            !n_grid.is_empty() && !m_grid.is_empty(),
            "grids must be non-empty"
        );
        let values = self.values_on_grid(n_grid, m_grid, num_nodes);
        let mut best = (n_grid[0], m_grid[0]);
        let mut best_v = f64::MIN;
        for (i, &n) in n_grid.iter().enumerate() {
            for (j, &m) in m_grid.iter().enumerate() {
                if values[i][j] > best_v {
                    best_v = values[i][j];
                    best = (n, m);
                }
            }
        }
        best
    }

    /// The continuous optima implied by the Gamma modes (Eq. 46):
    /// `n* = (β_n − 1)ψ_n`, `M* = (β_M − 1)ψ_M`.
    pub fn continuous_optimum(&self, num_nodes: usize) -> (f64, f64) {
        (
            gamma_mode(self.beta_n(num_nodes), self.psi_n),
            gamma_mode(self.beta_m(num_nodes), self.psi_m),
        )
    }

    /// Fits `k_n, b_n, k_M, b_M` by least squares from pilot observations
    /// `(num_nodes, best_n, best_m)` (Appendix H, Eqs. 47–51), keeping the
    /// scales `psi_n`, `psi_m` fixed.
    ///
    /// Note: the paper's Eq. 50 writes the regressor as `ln(1/|V|)` while
    /// Eq. 12 uses `1/ln|V|`; we use `1/ln|V|`, the form consistent with
    /// the indicator definition (and with the reported constants).
    pub fn fit(observations: &[(usize, f64, f64)], psi_n: f64, psi_m: f64) -> Indicator {
        assert!(
            observations.len() >= 2,
            "need at least two observations to fit"
        );
        // Mode relation: x/ψ = β − 1 = k·g(|V|) + b − 1.
        let fit_line = |xs: &[f64], ys: &[f64]| -> (f64, f64) {
            let t = xs.len() as f64;
            let sx: f64 = xs.iter().sum();
            let sy: f64 = ys.iter().sum();
            let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
            let sxx: f64 = xs.iter().map(|x| x * x).sum();
            let k = (t * sxy - sx * sy) / (t * sxx - sx * sx);
            // b − 1 = mean(y) − k·mean(x) ⇒ b = (Σy − kΣx + t)/t (Eq. 49).
            let b = (sy - k * sx + t) / t;
            (k, b)
        };
        let ln_v: Vec<f64> = observations
            .iter()
            .map(|&(v, _, _)| (v as f64).ln())
            .collect();
        let inv_ln_v: Vec<f64> = ln_v.iter().map(|&l| 1.0 / l).collect();
        let n_over_psi: Vec<f64> = observations.iter().map(|&(_, n, _)| n / psi_n).collect();
        let m_over_psi: Vec<f64> = observations.iter().map(|&(_, _, m)| m / psi_m).collect();
        let (k_n, b_n) = fit_line(&ln_v, &n_over_psi);
        let (k_m, b_m) = fit_line(&inv_ln_v, &m_over_psi);
        Indicator {
            psi_n,
            psi_m,
            k_n,
            b_n,
            k_m,
            b_m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_reproduce_lastfm_optimum() {
        // Section V-D: on LastFM (|V| = 7.6K) the indicator peaks at
        // M = 4 and n around 60.
        let ind = Indicator::default();
        let (n_star, m_star) = ind.continuous_optimum(7_600);
        assert!((50.0..70.0).contains(&n_star), "n* = {n_star}");
        assert!((2.0..5.0).contains(&m_star), "M* = {m_star}");
        let best = ind.best(&[10, 20, 30, 40, 50, 60, 70, 80], &[2, 4, 6, 8, 10], 7_600);
        assert_eq!(best.1, 4, "best M should be 4 on LastFM");
        assert!((50..=70).contains(&best.0), "best n = {}", best.0);
    }

    #[test]
    fn larger_datasets_prefer_larger_n_and_smaller_m() {
        // Section IV-C's design intuition.
        let ind = Indicator::default();
        let (n_small, m_small) = ind.continuous_optimum(1_000);
        let (n_large, m_large) = ind.continuous_optimum(196_000);
        assert!(n_large > n_small, "n*: {n_large} vs {n_small}");
        assert!(m_large < m_small, "M*: {m_large} vs {m_small}");
    }

    #[test]
    fn grid_values_are_normalized() {
        let ind = Indicator::default();
        let grid = ind.values_on_grid(&[20, 40, 60, 80], &[2, 4, 6, 8], 12_000);
        let max = grid.iter().flatten().copied().fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(grid.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn indicator_is_unimodal_in_each_axis() {
        let ind = Indicator::default();
        // Fix M, scan n: strictly rises then falls around the mode.
        let ns: Vec<usize> = (5..=120).step_by(5).collect();
        let vals: Vec<f64> = ns.iter().map(|&n| ind.raw(n as f64, 4.0, 22_500)).collect();
        let peak = vals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        for w in vals[..=peak].windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        for w in vals[peak..].windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn fit_recovers_known_parameters() {
        // Synthesize observations exactly on the model, then re-fit.
        let truth = Indicator::default();
        let observations: Vec<(usize, f64, f64)> =
            [1_000usize, 5_900, 7_600, 12_000, 22_500, 196_000]
                .iter()
                .map(|&v| {
                    let (n, m) = truth.continuous_optimum(v);
                    (v, n, m)
                })
                .collect();
        let fitted = Indicator::fit(&observations, truth.psi_n, truth.psi_m);
        assert!((fitted.k_n - truth.k_n).abs() < 1e-9, "k_n {}", fitted.k_n);
        assert!((fitted.b_n - truth.b_n).abs() < 1e-9, "b_n {}", fitted.b_n);
        assert!((fitted.k_m - truth.k_m).abs() < 1e-9, "k_m {}", fitted.k_m);
        assert!((fitted.b_m - truth.b_m).abs() < 1e-9, "b_m {}", fitted.b_m);
    }

    #[test]
    fn fit_tolerates_noisy_observations() {
        let truth = Indicator::default();
        let observations: Vec<(usize, f64, f64)> = [1_000usize, 7_600, 22_500, 196_000]
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let (n, m) = truth.continuous_optimum(v);
                let jitter = if i % 2 == 0 { 1.5 } else { -1.5 };
                (v, n + jitter, m + jitter * 0.1)
            })
            .collect();
        let fitted = Indicator::fit(&observations, truth.psi_n, truth.psi_m);
        assert!((fitted.k_n - truth.k_n).abs() < 0.15);
        assert!((fitted.k_m - truth.k_m).abs() < 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let ind = Indicator::default();
        let json = serde_json::to_string(&ind).unwrap();
        let back: Indicator = serde_json::from_str(&json).unwrap();
        assert_eq!(ind, back);
    }
}
