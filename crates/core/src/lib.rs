//! # PrivIM — differentially private GNNs for influence maximization
//!
//! The paper's core contribution, built on the workspace substrates:
//!
//! - [`config`] — hyperparameters with the paper's defaults.
//! - [`container`] — the subgraph pool `G_sub` Algorithm 2 batches from.
//! - [`sampling`] — Algorithm 1 (naive θ-bounded RWR) and Algorithm 3
//!   (dual-stage adaptive frequency sampling: SCS + BES).
//! - [`loss`] — the Eq. 5 probabilistic penalty loss.
//! - [`train`] — Algorithm 2 DP-SGD with per-subgraph clipping, Gaussian or
//!   SML noise, and σ calibration via the Theorem 3 accountant.
//! - [`indicator`] — the Gamma-pdf parameter-selection indicator
//!   (Eqs. 10–12, Appendix H fitting).
//! - [`pipeline`] — end-to-end runs of PrivIM, PrivIM+SCS, PrivIM*, EGN,
//!   HP, HP-GRAT and the non-private reference.
//! - [`checkpoint`] — atomic, CRC-verified training checkpoints with
//!   generation retention.
//! - [`resume`] — the crash-safe training loop: kill it anywhere, resume
//!   from the last durable generation, and get bit-identical final
//!   weights and an exactly re-verified ε schedule.
//!
//! # Quickstart
//!
//! ```
//! use privim_core::config::PrivImConfig;
//! use privim_core::pipeline::{run_method, Method};
//! use privim_datasets::paper::Dataset;
//!
//! let graph = Dataset::Email.generate(0.25, 42); // 250-node Email replica
//! let config = PrivImConfig {
//!     epsilon: Some(4.0),
//!     ..PrivImConfig::small()
//! };
//! let result = run_method(&graph, Method::PrivImStar, &config, 7);
//! assert_eq!(result.seeds.len(), config.seed_size);
//! assert!(result.sigma.is_some()); // noise was calibrated and injected
//! ```

pub mod checkpoint;
pub mod config;
pub mod container;
pub mod evaluate;
pub mod indicator;
pub mod loss;
pub mod pipeline;
pub mod resume;
pub mod sampling;
pub mod train;

pub use checkpoint::{crc32, CheckpointError, CheckpointStore, TrainCheckpoint};
pub use config::PrivImConfig;
pub use container::{SubgraphContainer, SubgraphSample};
pub use evaluate::{scorecard, seed_jaccard, Scorecard};
pub use indicator::Indicator;
pub use pipeline::{run_method, run_method_with_candidates, Method, PipelineResult};
pub use resume::{train_resumable, BudgetHalt, ResumableOutcome, ResumeError, ResumeOptions};
pub use train::{train, NoiseKind, PrivacySetup, TrainError, TrainReport};
