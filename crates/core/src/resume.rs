//! Crash-safe resumable training.
//!
//! [`train_resumable`] runs the same Algorithm 2 steps as
//! [`crate::train::train`], but derives a fresh RNG for every epoch from
//! the master seed (`StdRng::seed_from_u64(splitmix64-mix(seed, epoch))`)
//! instead of threading one stream across the run. That makes the epoch
//! cursor the *only* generator state: a checkpoint stores no RNG bytes,
//! and a run killed at any instruction and resumed from its last durable
//! generation replays the remaining epochs bit-identically — final
//! weights, loss history, and the privacy ledger's ε schedule all match
//! an uninterrupted run exactly.
//!
//! On resume the ledger is re-verified end to end:
//! [`PrivacyLedger::verify_replay`] replays the accounting from the
//! entries alone and must match every recorded cumulative ε within
//! 1e-9, and the accountant reconstructed from the restored γ state must
//! convert to the recorded final ε bit-for-bit. A checkpoint that fails
//! either check — or whose configuration digest disagrees — is refused
//! with a typed error rather than silently mis-accounting the budget.

use rand::rngs::StdRng;
use rand::SeedableRng;

use privim_dp::budget::{BudgetDecision, BudgetGuard};
use privim_dp::ledger::{MechanismKind, PrivacyLedger};
use privim_nn::models::{build_model, GnnModel, ModelKind};
use privim_nn::optim::{Optimizer, Sgd};
use privim_obs::fault::splitmix64;

use crate::checkpoint::{
    crc32, CheckpointError, CheckpointStore, SplitProvenance, TrainCheckpoint,
};
use crate::config::PrivImConfig;
use crate::container::SubgraphContainer;
use crate::train::{dp_step, PrivacySetup, TrainError, TrainReport};

/// Errors from the resumable training loop.
#[derive(Debug)]
pub enum ResumeError {
    /// Checkpoint storage failed (I/O, corruption with no fallback, or
    /// an injected kill during a write).
    Checkpoint(CheckpointError),
    /// An injected kill fired inside a training step.
    Killed {
        /// The fault site that fired.
        site: String,
    },
    /// Training itself aborted (e.g. non-finite divergence).
    Train(TrainError),
    /// The checkpoint was written under a different configuration.
    ConfigMismatch {
        /// Digest of the current configuration.
        expected: u32,
        /// Digest recorded in the checkpoint.
        found: u32,
    },
    /// The restored ledger failed exact ε re-verification.
    LedgerMismatch(String),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Checkpoint(e) => write!(f, "{e}"),
            ResumeError::Killed { site } => write!(f, "killed at fault site {site}"),
            ResumeError::Train(e) => write!(f, "{e}"),
            ResumeError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was written under a different configuration \
                 (digest {found:08x}, current {expected:08x}); refusing to resume"
            ),
            ResumeError::LedgerMismatch(msg) => {
                write!(f, "restored privacy ledger failed verification: {msg}")
            }
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<CheckpointError> for ResumeError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Killed { site } => ResumeError::Killed { site },
            other => ResumeError::Checkpoint(other),
        }
    }
}

impl From<TrainError> for ResumeError {
    fn from(e: TrainError) -> Self {
        match e {
            TrainError::Fault(privim_obs::FaultSignal::Kill { site }) => {
                ResumeError::Killed { site }
            }
            other => ResumeError::Train(other),
        }
    }
}

/// Knobs for the checkpoint cadence.
#[derive(Debug, Clone, Copy)]
pub struct ResumeOptions {
    /// Write a checkpoint every this many completed epochs (and always
    /// after the final one). Minimum 1.
    pub checkpoint_every: usize,
    /// Generations to retain on disk. Minimum 1.
    pub keep: usize,
    /// Hard ε ceiling for private runs: a [`BudgetGuard`] projects the
    /// accountant-exact ε of every prospective step and halts the run
    /// before the first step that would overspend. `None` disables the
    /// guard. Ignored for non-private runs.
    pub epsilon_budget: Option<f64>,
    /// Fraction of `epsilon_budget` at which the guard's one-shot
    /// warning fires. Only read when `epsilon_budget` is set.
    pub budget_warn_fraction: f64,
    /// Provenance of the train/test node split the caller drew, stamped
    /// into every checkpoint generation so privacy audits can
    /// reconstruct the exact membership ground truth later. `None`
    /// when no split was drawn.
    pub split: Option<SplitProvenance>,
}

impl Default for ResumeOptions {
    fn default() -> Self {
        ResumeOptions {
            checkpoint_every: 1,
            keep: 3,
            epsilon_budget: None,
            budget_warn_fraction: privim_dp::budget::DEFAULT_WARN_FRACTION,
            split: None,
        }
    }
}

/// Record of a budget-enforced halt (see [`ResumeOptions::epsilon_budget`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetHalt {
    /// The epoch whose step was refused (0-indexed; equals the number of
    /// completed epochs).
    pub epoch: u64,
    /// The configured ε ceiling.
    pub budget: f64,
    /// Accountant-exact cumulative ε actually committed.
    pub epsilon_spent: f64,
    /// The exact cumulative ε the refused step would have reached.
    pub projected_next: f64,
    /// Steps taken by *this* invocation before the halt. 0 means a
    /// resumed run refused to take any further step under the budget.
    pub fresh_steps: u64,
}

/// Outcome of a resumable run.
pub struct ResumableOutcome {
    /// The trained model.
    pub model: Box<dyn GnnModel>,
    /// Loss/clip history over ALL epochs (restored prefix + new).
    pub report: TrainReport,
    /// Epoch the run resumed from (`None` for a fresh start).
    pub resumed_from: Option<u64>,
    /// Cumulative ε actually spent per the ledger (private runs).
    pub final_epsilon: Option<f64>,
    /// The run-scoped trace id stamped into every telemetry event and
    /// checkpoint of this run. Derived from the master seed, so a
    /// resumed run carries the same id as its killed predecessor.
    pub trace_id: u128,
    /// Set when the ε budget guard halted the run before completing all
    /// configured iterations.
    pub budget_halt: Option<BudgetHalt>,
}

/// Digest of the configuration a checkpoint belongs to. The `Debug`
/// rendering covers every field and is deterministic, so it serves as a
/// cheap structural fingerprint without serde.
pub fn config_digest(config: &PrivImConfig) -> u32 {
    crc32(format!("{config:?}").as_bytes())
}

/// The derived seed for `epoch`'s RNG stream. Also used for the fresh
/// model-init stream (tag `u64::MAX`), which no epoch can collide with
/// because epochs stay below `config.iterations`.
fn epoch_seed(master_seed: u64, epoch: u64) -> u64 {
    splitmix64(master_seed ^ splitmix64(epoch))
}

/// Verifies a restored ledger's exactness: entry-replay within `1e-9`
/// everywhere, and the accountant rebuilt from the restored γ state
/// must reproduce the recorded final cumulative ε.
fn verify_restored_ledger(ledger: &PrivacyLedger) -> Result<(), ResumeError> {
    ledger
        .verify_replay(1e-9)
        .map_err(ResumeError::LedgerMismatch)?;
    if let Some(recorded) = ledger.cumulative_epsilon() {
        let (restored, _alpha) = ledger.accountant().epsilon(ledger.delta());
        let diff = (recorded - restored).abs();
        if !(diff <= 1e-9) {
            return Err(ResumeError::LedgerMismatch(format!(
                "restored accountant ε = {restored} but ledger recorded {recorded} \
                 (|Δ| = {diff:e} > 1e-9)"
            )));
        }
    }
    Ok(())
}

/// Runs (or resumes) crash-safe DP training.
///
/// Starts from the newest valid checkpoint in `store` when one exists —
/// falling back past torn or rotted generations — and from scratch
/// otherwise. Interruptions at any fault site (or real crashes) are
/// harmless: re-invoking with the same arguments produces bit-identical
/// final weights and an identical ε schedule to an uninterrupted run.
pub fn train_resumable(
    kind: ModelKind,
    container: &SubgraphContainer,
    config: &PrivImConfig,
    privacy: Option<&PrivacySetup>,
    master_seed: u64,
    store: &CheckpointStore,
    opts: ResumeOptions,
) -> Result<ResumableOutcome, ResumeError> {
    assert!(
        !container.is_empty(),
        "cannot train on an empty subgraph container"
    );
    // Run-scoped trace: derived from the master seed alone (no RNG is
    // consumed, no wall clock is read), so a resumed run reconstructs
    // the exact context its killed predecessor stamped into telemetry
    // and checkpoints. The restore path below verifies the stored id.
    let run_ctx = privim_obs::TraceContext::from_seed(master_seed);
    privim_obs::trace::set_run_trace(run_ctx);
    let _trace = run_ctx.enter();
    let _span = privim_obs::span!("training_resumable");
    let started = std::time::Instant::now();
    let expected_crc = config_digest(config);
    let checkpoint_every = opts.checkpoint_every.max(1);

    let restored = store.load_latest_valid()?;
    let (
        mut model,
        mut optimizer,
        mut ledger,
        mut losses,
        mut clip_fractions,
        start_epoch,
        resumed_from,
    ): (
        Box<dyn GnnModel>,
        Box<dyn Optimizer>,
        Option<PrivacyLedger>,
        Vec<f64>,
        Vec<f64>,
        u64,
        Option<u64>,
    ) = match restored {
        Some((ckpt, path)) => {
            if ckpt.config_crc != expected_crc {
                return Err(ResumeError::ConfigMismatch {
                    expected: expected_crc,
                    found: ckpt.config_crc,
                });
            }
            if ckpt.master_seed != master_seed {
                return Err(ResumeError::ConfigMismatch {
                    expected: crc32(&master_seed.to_le_bytes()),
                    found: crc32(&ckpt.master_seed.to_le_bytes()),
                });
            }
            // Correlation proof: the checkpoint must carry this run's
            // trace id (both are pure functions of the master seed).
            if ckpt.trace_id != run_ctx.trace_id {
                return Err(ResumeError::ConfigMismatch {
                    expected: crc32(&run_ctx.trace_id.to_le_bytes()),
                    found: crc32(&ckpt.trace_id.to_le_bytes()),
                });
            }
            if let Some(l) = &ckpt.ledger {
                verify_restored_ledger(l)?;
            }
            if privacy.is_some() != ckpt.ledger.is_some() {
                return Err(ResumeError::LedgerMismatch(
                    "privacy mode differs between run and checkpoint".into(),
                ));
            }
            let model = ckpt
                .model
                .restore()
                .map_err(|e| CheckpointError::Corrupt(format!("model restore: {e}")))?;
            privim_obs::counter("checkpoint.resumed").add(1);
            privim_obs::info!(
                "checkpoint",
                "resumed",
                epoch = ckpt.epoch,
                path = path.display().to_string(),
                epsilon_so_far = ckpt.ledger.as_ref().and_then(|l| l.cumulative_epsilon()),
            );
            (
                model,
                ckpt.optimizer.build(),
                ckpt.ledger,
                ckpt.losses,
                ckpt.clip_fractions,
                ckpt.epoch,
                Some(ckpt.epoch),
            )
        }
        None => {
            let mut init_rng = StdRng::seed_from_u64(epoch_seed(master_seed, u64::MAX));
            let model = build_model(
                kind,
                config.feature_dim,
                config.hidden,
                config.hops,
                &mut init_rng,
            );
            let ledger = privacy.map(|setup| PrivacyLedger::new(setup.delta));
            (
                model,
                Box::new(Sgd::new(config.learning_rate)) as Box<dyn Optimizer>,
                ledger,
                Vec::new(),
                Vec::new(),
                0,
                None,
            )
        }
    };

    let m = container.len();
    let batch = config.batch_size.min(m);
    let indices: Vec<usize> = (0..m).collect();
    let mut consecutive_bad = 0usize;
    let mut last_ckpt_epoch: Option<u64> = resumed_from;
    let mut budget_halt: Option<BudgetHalt> = None;
    // The guard is pure arithmetic over cloned accountant state: it
    // never mutates the ledger and never draws randomness, so arming it
    // cannot perturb the seeded epoch streams below.
    let mut guard: Option<BudgetGuard> = match (privacy, opts.epsilon_budget) {
        (Some(_), Some(budget)) => Some(BudgetGuard::with_warn_fraction(
            budget,
            opts.budget_warn_fraction,
        )),
        _ => None,
    };

    for epoch in start_epoch..config.iterations as u64 {
        if let (Some(g), Some(setup)) = (guard.as_mut(), privacy) {
            let ledger = ledger.as_ref().expect("private runs carry a ledger");
            let sub = privim_dp::rdp::SubsampledConfig {
                max_occurrences: setup.max_occurrences,
                batch_size: batch,
                container_size: m.max(1),
            };
            match g.check_next_step(ledger, setup.sigma, &sub) {
                BudgetDecision::Halt { spent, projected } => {
                    let fresh_steps = epoch - start_epoch;
                    privim_obs::warn!(
                        "dp",
                        "budget_halt",
                        epoch = epoch,
                        budget = g.budget(),
                        epsilon_spent = spent,
                        projected_next = projected,
                        fresh_steps = fresh_steps,
                    );
                    privim_obs::counter("dp.budget_halts").add(1);
                    privim_obs::watch::observe("dp.epsilon_next", epoch, projected);
                    budget_halt = Some(BudgetHalt {
                        epoch,
                        budget: g.budget(),
                        epsilon_spent: spent,
                        projected_next: projected,
                        fresh_steps,
                    });
                    break;
                }
                BudgetDecision::Warn {
                    projected,
                    steps_remaining,
                } => {
                    privim_obs::warn!(
                        "dp",
                        "budget_warning",
                        epoch = epoch,
                        budget = g.budget(),
                        projected = projected,
                        steps_remaining = steps_remaining,
                    );
                    privim_obs::watch::observe("dp.epsilon_next", epoch, projected);
                }
                BudgetDecision::Proceed { projected } => {
                    privim_obs::watch::observe("dp.epsilon_next", epoch, projected);
                }
            }
        }
        // The whole point: each epoch's randomness depends only on
        // (master_seed, epoch), never on how many times the process died
        // on the way here.
        let mut rng = StdRng::seed_from_u64(epoch_seed(master_seed, epoch));
        let stats = dp_step(
            model.as_mut(),
            optimizer.as_mut(),
            container,
            config,
            privacy,
            &indices,
            batch,
            epoch as usize,
            &mut rng,
        )?;
        losses.push(stats.mean_loss);
        privim_obs::counter("train.iterations").add(1);
        privim_obs::histogram("train.loss").record(stats.mean_loss);
        privim_obs::watch::observe("train.loss", epoch, stats.mean_loss);
        if stats.skipped {
            consecutive_bad += 1;
            if privacy.is_some() {
                clip_fractions.push(stats.clip_fraction);
            }
            if consecutive_bad >= config.max_bad_steps {
                return Err(TrainError::NonFiniteDivergence {
                    step: epoch as usize,
                    consecutive: consecutive_bad,
                }
                .into());
            }
        } else {
            consecutive_bad = 0;
            if let Some(setup) = privacy {
                clip_fractions.push(stats.clip_fraction);
                privim_obs::histogram("train.clip_fraction").record(stats.clip_fraction);
                let ledger = ledger.as_mut().expect("private runs carry a ledger");
                let mech = match setup.noise {
                    crate::train::NoiseKind::Gaussian => MechanismKind::SubsampledGaussian,
                    crate::train::NoiseKind::SymmetricLaplace => MechanismKind::SubsampledSml,
                };
                let sensitivity = config.clip_bound * setup.max_occurrences as f64;
                let sub = privim_dp::rdp::SubsampledConfig {
                    max_occurrences: setup.max_occurrences,
                    batch_size: batch,
                    container_size: m.max(1),
                };
                let (eps, _alpha) = ledger.record_step(mech, setup.sigma, sensitivity, &sub);
                privim_obs::watch::observe("dp.epsilon_spent", epoch, eps);
                privim_obs::info!(
                    "train",
                    "epoch",
                    epoch = epoch,
                    loss = stats.mean_loss,
                    clip_fraction = stats.clip_fraction,
                    epsilon_spent = eps,
                );
            } else {
                privim_obs::info!("train", "epoch", epoch = epoch, loss = stats.mean_loss);
            }
        }

        let completed = epoch + 1;
        if completed % checkpoint_every as u64 == 0 || completed == config.iterations as u64 {
            let ckpt = TrainCheckpoint {
                epoch: completed,
                master_seed,
                config_crc: expected_crc,
                trace_id: run_ctx.trace_id,
                model: privim_nn::serialize::Checkpoint::capture(
                    model.as_ref(),
                    config.feature_dim,
                    config.hidden,
                    config.hops,
                ),
                optimizer: optimizer.snapshot(),
                ledger: ledger.clone(),
                losses: losses.clone(),
                clip_fractions: clip_fractions.clone(),
                split: opts.split,
            };
            store.save(&ckpt)?;
            last_ckpt_epoch = Some(completed);
        }
    }

    // A budget halt is a clean, resumable stop: persist everything
    // committed so far (unless the newest generation already covers it,
    // as on an immediate resume-refusal).
    if let Some(h) = &budget_halt {
        if last_ckpt_epoch != Some(h.epoch) {
            let ckpt = TrainCheckpoint {
                epoch: h.epoch,
                master_seed,
                config_crc: expected_crc,
                trace_id: run_ctx.trace_id,
                model: privim_nn::serialize::Checkpoint::capture(
                    model.as_ref(),
                    config.feature_dim,
                    config.hidden,
                    config.hops,
                ),
                optimizer: optimizer.snapshot(),
                ledger: ledger.clone(),
                losses: losses.clone(),
                clip_fractions: clip_fractions.clone(),
                split: opts.split,
            };
            store.save(&ckpt)?;
        }
    }

    if let Some(l) = &ledger {
        // The invariant the whole subsystem exists to protect: the
        // ledger's recorded schedule replays exactly, interrupted or not.
        verify_restored_ledger(l)?;
    }

    Ok(ResumableOutcome {
        trace_id: run_ctx.trace_id,
        final_epsilon: ledger.as_ref().and_then(|l| l.cumulative_epsilon()),
        report: TrainReport {
            losses,
            clip_fractions,
            training_secs: started.elapsed().as_secs_f64(),
            sigma: privacy.map(|p| p.sigma),
        },
        model,
        resumed_from,
        budget_halt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::extract_dual_stage;
    use crate::train::NoiseKind;
    use privim_datasets::generators::holme_kim;
    use privim_graph::NodeId;

    fn setup(seed: u64) -> (SubgraphContainer, PrivImConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = holme_kim(200, 4, 0.4, 1.0, &mut rng);
        let cfg = PrivImConfig {
            subgraph_size: 10,
            walk_length: 120,
            hops: 2,
            sampling_rate: Some(0.6),
            freq_threshold: 4,
            feature_dim: 4,
            hidden: 8,
            batch_size: 6,
            iterations: 6,
            ..PrivImConfig::default()
        };
        let candidates: Vec<NodeId> = g.nodes().collect();
        let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
        (out.container, cfg)
    }

    fn store(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("privim-resume-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        CheckpointStore::open(&dir, 3).unwrap()
    }

    fn weights(model: &dyn GnnModel) -> Vec<u64> {
        model
            .params()
            .iter()
            .flat_map(|p| p.value.data().iter().map(|v| v.to_bits()))
            .collect()
    }

    #[test]
    fn uninterrupted_run_completes_and_checkpoints() {
        let (container, cfg) = setup(1);
        let st = store("plain");
        let setup =
            PrivacySetup::calibrate(3.0, 1e-4, &cfg, container.len(), 4, NoiseKind::Gaussian);
        let out = train_resumable(
            ModelKind::Gcn,
            &container,
            &cfg,
            Some(&setup),
            99,
            &st,
            ResumeOptions::default(),
        )
        .unwrap();
        assert_eq!(out.report.losses.len(), cfg.iterations);
        assert!(out.resumed_from.is_none());
        assert!(out.final_epsilon.unwrap() > 0.0);
        let gens = st.generations().unwrap();
        assert_eq!(gens.len(), 3, "keep=3");
        assert_eq!(gens.last().unwrap().0, cfg.iterations as u64);
        std::fs::remove_dir_all(st.dir()).ok();
    }

    #[test]
    fn completed_run_resumes_to_a_noop_with_identical_weights() {
        let (container, cfg) = setup(2);
        let st = store("noop");
        let run = |st: &CheckpointStore| {
            train_resumable(
                ModelKind::Gcn,
                &container,
                &cfg,
                None,
                7,
                st,
                ResumeOptions::default(),
            )
            .unwrap()
        };
        let first = run(&st);
        let second = run(&st); // resumes at the final epoch: zero new steps
        assert_eq!(second.resumed_from, Some(cfg.iterations as u64));
        // Trace correlation across the restart: both runs and the
        // on-disk checkpoint carry the seed-derived trace id.
        let expected_trace = privim_obs::TraceContext::from_seed(7).trace_id;
        assert_eq!(first.trace_id, expected_trace);
        assert_eq!(second.trace_id, expected_trace);
        let (ckpt, _) = st.load_latest_valid().unwrap().unwrap();
        assert_eq!(ckpt.trace_id, expected_trace);
        assert_eq!(
            weights(first.model.as_ref()),
            weights(second.model.as_ref())
        );
        assert_eq!(first.report.losses, second.report.losses);
        std::fs::remove_dir_all(st.dir()).ok();
    }

    #[test]
    fn mismatched_config_is_refused() {
        let (container, cfg) = setup(3);
        let st = store("cfgmismatch");
        train_resumable(
            ModelKind::Gcn,
            &container,
            &cfg,
            None,
            7,
            &st,
            ResumeOptions::default(),
        )
        .unwrap();
        let mut other = cfg.clone();
        other.learning_rate *= 2.0;
        other.iterations += 1;
        assert!(matches!(
            train_resumable(
                ModelKind::Gcn,
                &container,
                &other,
                None,
                7,
                &st,
                ResumeOptions::default(),
            ),
            Err(ResumeError::ConfigMismatch { .. })
        ));
        std::fs::remove_dir_all(st.dir()).ok();
    }

    #[test]
    fn epoch_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..1000u64 {
            assert!(seen.insert(epoch_seed(12345, epoch)));
        }
        assert!(
            seen.insert(epoch_seed(12345, u64::MAX)),
            "init tag distinct"
        );
    }
}
