//! The probabilistic penalty loss for IM (Eq. 5).
//!
//! The GNN emits a per-node seed probability `x_u = φ(h_u)`. Theorem 2
//! defines the true one-step influence probability
//! `p_i(u) = 1 − Π_{v ∈ N_in(u)} (1 − w_vu · a_{i-1}(v))` with `a_0 = x`,
//! and upper-bounds it by the truncated message-passing sum for the noise
//! analysis. The implementation trains on the *exact* product form: the
//! truncated sum saturates at 1 on dense neighborhoods, where its gradient
//! vanishes and the loss stops ranking nodes; the product form's gradient
//! degrades smoothly instead (see `neighbor_survival` in `privim-nn`).
//! The loss minimizes the total probability of remaining uninfluenced after
//! `j` steps plus a λ-weighted seed-budget penalty:
//!
//! ```text
//! L(G; W) = Σ_u Π_{i=0}^{j} (1 − a_i(u))  +  λ Σ_u x_u
//! ```

use std::rc::Rc;

use privim_nn::graph_tensors::GraphTensors;
use privim_nn::tape::{Tape, Var};

/// Records the Eq. 5 loss for seed probabilities `x` (an `N × 1` variable
/// already on `tape`); returns the scalar loss variable.
pub fn im_loss(tape: &mut Tape, gt: &GraphTensors, x: Var, steps: usize, lambda: f64) -> Var {
    assert!(steps >= 1, "need at least one diffusion step");
    assert!(lambda >= 0.0, "lambda must be non-negative");
    // Π_{i=0..j} (1 − a_i), built incrementally. a_0 = x.
    let mut not_influenced = tape.one_minus(x);
    let mut activation = x;
    for _ in 0..steps {
        let survive = tape.neighbor_survival(
            activation,
            Rc::clone(&gt.src),
            Rc::clone(&gt.dst),
            Rc::clone(&gt.edge_weight),
            gt.num_nodes,
        );
        not_influenced = tape.mul(not_influenced, survive);
        activation = tape.one_minus(survive);
    }
    let uninfluenced_total = tape.sum(not_influenced);
    let seed_budget = tape.sum(x);
    let penalty = tape.scale(seed_budget, lambda);
    tape.add(uninfluenced_total, penalty)
}

/// Evaluates the loss value for fixed probabilities without building
/// gradients — used by tests and by training-progress reporting.
pub fn im_loss_value(gt: &GraphTensors, probs: &[f64], steps: usize, lambda: f64) -> f64 {
    let mut tape = Tape::new();
    let x = tape.leaf(privim_nn::matrix::Matrix::from_vec(
        probs.len(),
        1,
        probs.to_vec(),
    ));
    let loss = im_loss(&mut tape, gt, x, steps, lambda);
    tape.value(loss).as_scalar()
}

/// Linear Threshold surrogate loss (the paper's Section VII extension).
///
/// Under the LT model with uniform random thresholds, a node with
/// activation mass `Σ w_vu · a_v ≤ 1` from its in-neighbors activates with
/// probability exactly `min(1, Σ w_vu · a_v)` — the truncated-sum form
/// that is only an *upper bound* under IC (Theorem 2) is the *exact*
/// one-step activation probability under LT. The same Eq. 5 penalty
/// structure therefore trains an LT influence maximizer.
pub fn lt_loss(tape: &mut Tape, gt: &GraphTensors, x: Var, steps: usize, lambda: f64) -> Var {
    assert!(steps >= 1, "need at least one diffusion step");
    assert!(lambda >= 0.0, "lambda must be non-negative");
    let mut not_influenced = tape.one_minus(x);
    let mut activation = x;
    for _ in 0..steps {
        let flow = tape.spmm_fixed(
            activation,
            Rc::clone(&gt.src),
            Rc::clone(&gt.dst),
            Rc::clone(&gt.edge_weight),
            gt.num_nodes,
        );
        let p = tape.clamp(flow, 0.0, 1.0);
        let survive = tape.one_minus(p);
        not_influenced = tape.mul(not_influenced, survive);
        activation = p;
    }
    let uninfluenced_total = tape.sum(not_influenced);
    let seed_budget = tape.sum(x);
    let penalty = tape.scale(seed_budget, lambda);
    tape.add(uninfluenced_total, penalty)
}

/// [`lt_loss`] evaluated at fixed probabilities.
pub fn lt_loss_value(gt: &GraphTensors, probs: &[f64], steps: usize, lambda: f64) -> f64 {
    let mut tape = Tape::new();
    let x = tape.leaf(privim_nn::matrix::Matrix::from_vec(
        probs.len(),
        1,
        probs.to_vec(),
    ));
    let loss = lt_loss(&mut tape, gt, x, steps, lambda);
    tape.value(loss).as_scalar()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::{Graph, GraphBuilder};
    use privim_nn::matrix::Matrix;
    use privim_nn::testutil::check_gradients_at;

    fn star() -> Graph {
        // Hub 0 with out-edges to 1..=3, weight 1.
        let mut b = GraphBuilder::new(4);
        for i in 1..4 {
            b.add_edge(0, i, 1.0);
        }
        b.build()
    }

    #[test]
    fn hub_seed_minimizes_uninfluenced_term() {
        let g = star();
        let gt = GraphTensors::with_structural_features(&g, 2);
        // Seeding the hub covers everyone in one step.
        let hub = im_loss_value(&gt, &[1.0, 0.0, 0.0, 0.0], 1, 0.0);
        // Π over hub: (1-1)=0; spokes: (1-0)(1-1)=0 → total 0.
        assert!(hub.abs() < 1e-12, "hub loss {hub}");
        // Seeding one spoke leaves hub and two spokes uninfluenced.
        let spoke = im_loss_value(&gt, &[0.0, 1.0, 0.0, 0.0], 1, 0.0);
        assert!((spoke - 3.0).abs() < 1e-12, "spoke loss {spoke}");
        assert!(hub < spoke);
    }

    #[test]
    fn lambda_penalizes_large_seed_sets() {
        let g = star();
        let gt = GraphTensors::with_structural_features(&g, 2);
        let all = [1.0, 1.0, 1.0, 1.0];
        let one = [1.0, 0.0, 0.0, 0.0];
        let l_all = im_loss_value(&gt, &all, 1, 0.5);
        let l_one = im_loss_value(&gt, &one, 1, 0.5);
        assert!((l_all - 2.0).abs() < 1e-12); // 0 uninfluenced + 0.5·4
        assert!((l_one - 0.5).abs() < 1e-12); // 0 uninfluenced + 0.5·1
        assert!(l_one < l_all);
    }

    #[test]
    fn multi_step_diffusion_reaches_farther() {
        // Path 0 -> 1 -> 2; seed at 0 covers node 2 only with j = 2.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let gt = GraphTensors::with_structural_features(&g, 2);
        let x = [1.0, 0.0, 0.0];
        let one_step = im_loss_value(&gt, &x, 1, 0.0);
        let two_step = im_loss_value(&gt, &x, 2, 0.0);
        assert!((one_step - 1.0).abs() < 1e-12, "{one_step}");
        assert!(two_step.abs() < 1e-12, "{two_step}");
    }

    #[test]
    fn loss_gradient_matches_finite_differences() {
        let g = star();
        let gt = GraphTensors::with_structural_features(&g, 2);
        // Probabilities strictly inside (0, 1) so clamp is differentiable.
        let x0 = Matrix::from_vec(4, 1, vec![0.3, 0.2, 0.1, 0.25]);
        check_gradients_at(
            &[x0],
            |tape, vars| im_loss(tape, &gt, vars[0], 2, 0.7),
            1e-6,
        );
    }

    #[test]
    fn loss_is_bounded_below_by_penalty_only() {
        let g = star();
        let gt = GraphTensors::with_structural_features(&g, 2);
        for probs in [[0.5; 4], [0.9, 0.1, 0.3, 0.7]] {
            let l = im_loss_value(&gt, &probs, 1, 0.2);
            let penalty: f64 = 0.2 * probs.iter().sum::<f64>();
            assert!(l >= penalty - 1e-12);
            assert!(l <= 4.0 + penalty + 1e-12);
        }
    }

    #[test]
    fn lt_loss_matches_lt_simulation_for_binary_seeds() {
        // Single in-edge of weight 0.3: under LT with uniform thresholds,
        // P(activate) = 0.3 exactly; expected uninfluenced mass = 0.7.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.3);
        let g = b.build();
        let gt = GraphTensors::with_structural_features(&g, 2);
        let l = super::lt_loss_value(&gt, &[1.0, 0.0], 1, 0.0);
        assert!((l - 0.7).abs() < 1e-12, "{l}");
    }

    #[test]
    fn lt_loss_saturates_at_full_activation() {
        // Two in-edges of weight 0.8 each: mass 1.6 clamps to 1 (uniform
        // threshold is always exceeded) — node 2 activates surely.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 0.8);
        b.add_edge(1, 2, 0.8);
        let g = b.build();
        let gt = GraphTensors::with_structural_features(&g, 2);
        let l = super::lt_loss_value(&gt, &[1.0, 1.0, 0.0], 1, 0.0);
        assert!(l.abs() < 1e-12, "{l}");
        // Under the IC product loss the same input leaves survival
        // (1-0.8)² = 0.04 — the two models genuinely differ here.
        let ic = im_loss_value(&gt, &[1.0, 1.0, 0.0], 1, 0.0);
        assert!((ic - 0.04).abs() < 1e-12, "{ic}");
    }

    #[test]
    fn lt_loss_gradient_matches_finite_differences() {
        let g = star();
        let gt = GraphTensors::with_structural_features(&g, 2);
        // Keep Σwx strictly inside (0, 1) so the clamp is differentiable.
        let x0 = Matrix::from_vec(4, 1, vec![0.3, 0.2, 0.1, 0.25]);
        check_gradients_at(
            &[x0],
            |tape, vars| super::lt_loss(tape, &gt, vars[0], 2, 0.4),
            1e-6,
        );
    }

    #[test]
    fn weighted_edges_scale_influence() {
        // Edge weight 0.5: spoke is influenced with probability ≤ 0.5·x.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5);
        let g = b.build();
        let gt = GraphTensors::with_structural_features(&g, 2);
        let l = im_loss_value(&gt, &[1.0, 0.0], 1, 0.0);
        // Node 0 seed: contributes 0. Node 1: (1-0)·(1-0.5) = 0.5.
        assert!((l - 0.5).abs() < 1e-12, "{l}");
    }
}
