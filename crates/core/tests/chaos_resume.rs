//! Chaos test for crash-safe resumable training.
//!
//! For each of several seeds, a baseline run trains uninterrupted while a
//! chaos run is repeatedly killed at fault sites chosen pseudo-randomly
//! (mid-step, mid-checkpoint-write, post-rename) and resumed from its
//! last durable generation after every kill. The two runs must agree
//! bit-for-bit: identical final weights, identical loss history, and an
//! identical cumulative ε down to the last mantissa bit — crashes may
//! cost wall-clock time but never privacy budget or reproducibility.
//!
//! Fault plans and observability sinks are process-global, so every test
//! here serializes on one mutex.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use privim_core::checkpoint::CheckpointStore;
use privim_core::config::PrivImConfig;
use privim_core::resume::{train_resumable, ResumableOutcome, ResumeError, ResumeOptions};
use privim_core::sampling::extract_dual_stage;
use privim_core::train::{NoiseKind, PrivacySetup};
use privim_core::SubgraphContainer;
use privim_datasets::generators::holme_kim;
use privim_graph::NodeId;
use privim_nn::models::{GnnModel, ModelKind};
use privim_obs::fault::{clear_fault_plan, flip_byte, set_fault_plan, splitmix64, FaultPlan};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Sites a simulated SIGKILL can land on: inside a training step, inside
/// a checkpoint write (torn temp file), and after the rename but before
/// pruning (new generation durable, old ones still present).
const KILL_SITES: &[&str] = &[
    "train.post_backward",
    "checkpoint.write.mid",
    "checkpoint.write.post_rename",
];

fn fixture(seed: u64) -> (SubgraphContainer, PrivImConfig, PrivacySetup) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = holme_kim(200, 4, 0.4, 1.0, &mut rng);
    let cfg = PrivImConfig {
        subgraph_size: 10,
        walk_length: 120,
        hops: 2,
        sampling_rate: Some(0.6),
        freq_threshold: 4,
        feature_dim: 4,
        hidden: 8,
        batch_size: 6,
        iterations: 6,
        ..PrivImConfig::default()
    };
    let candidates: Vec<NodeId> = g.nodes().collect();
    let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
    let setup = PrivacySetup::calibrate(
        3.0,
        1e-4,
        &cfg,
        out.container.len(),
        cfg.freq_threshold,
        NoiseKind::Gaussian,
    );
    (out.container, cfg, setup)
}

fn fresh_store(name: &str, seed: u64) -> CheckpointStore {
    let dir = std::env::temp_dir().join(format!("privim-chaos-{name}-{seed}"));
    std::fs::remove_dir_all(&dir).ok();
    CheckpointStore::open(&dir, 3).unwrap()
}

fn weights(model: &dyn GnnModel) -> Vec<u64> {
    model
        .params()
        .iter()
        .flat_map(|p| p.value.data().iter().map(|v| v.to_bits()))
        .collect()
}

fn run_once(
    container: &SubgraphContainer,
    cfg: &PrivImConfig,
    setup: &PrivacySetup,
    master_seed: u64,
    store: &CheckpointStore,
) -> Result<ResumableOutcome, ResumeError> {
    train_resumable(
        ModelKind::Gcn,
        container,
        cfg,
        Some(setup),
        master_seed,
        store,
        ResumeOptions::default(),
    )
}

/// Runs to completion under repeated injected kills, resuming after each
/// one. Returns the final outcome and the number of kills that fired.
fn run_with_chaos(
    container: &SubgraphContainer,
    cfg: &PrivImConfig,
    setup: &PrivacySetup,
    master_seed: u64,
    store: &CheckpointStore,
    chaos_seed: u64,
) -> (ResumableOutcome, usize) {
    let mut kills = 0usize;
    for attempt in 0u64..16 {
        // Arm one pseudo-random kill for the first few attempts, then run
        // clean so the loop always terminates.
        if attempt < 4 {
            set_fault_plan(FaultPlan::from_seed(
                splitmix64(chaos_seed).wrapping_add(attempt),
                KILL_SITES,
                cfg.iterations as u64,
            ));
        } else {
            clear_fault_plan();
        }
        let result = run_once(container, cfg, setup, master_seed, store);
        clear_fault_plan();
        match result {
            Ok(out) => return (out, kills),
            Err(ResumeError::Killed { site }) => {
                assert!(
                    KILL_SITES.contains(&site.as_str()),
                    "unexpected kill site {site}"
                );
                kills += 1;
            }
            Err(other) => panic!("chaos run failed with a non-kill error: {other}"),
        }
    }
    panic!("chaos run did not complete within 16 attempts");
}

#[test]
fn killed_and_resumed_runs_match_uninterrupted_runs_bit_for_bit() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear_fault_plan();
    for seed in [101u64, 202, 303] {
        let (container, cfg, setup) = fixture(seed);
        let master_seed = splitmix64(seed ^ 0xDEAD_BEEF);

        let baseline_store = fresh_store("baseline", seed);
        let baseline = run_once(&container, &cfg, &setup, master_seed, &baseline_store)
            .expect("uninterrupted run");
        assert!(baseline.resumed_from.is_none());
        assert_eq!(baseline.report.losses.len(), cfg.iterations);
        let base_eps = baseline.final_epsilon.expect("private run spends ε");

        let chaos_store = fresh_store("chaos", seed);
        let (chaos, kills) = run_with_chaos(
            &container,
            &cfg,
            &setup,
            master_seed,
            &chaos_store,
            seed.wrapping_mul(7),
        );
        assert!(
            kills > 0,
            "seed {seed}: no kill ever fired — chaos run was vacuous"
        );

        // The whole guarantee: a run killed at arbitrary points and
        // resumed is indistinguishable from one that never died.
        assert_eq!(
            weights(baseline.model.as_ref()),
            weights(chaos.model.as_ref()),
            "seed {seed}: final weights diverged after {kills} kills"
        );
        assert_eq!(
            baseline.report.losses, chaos.report.losses,
            "seed {seed}: loss history diverged"
        );
        let chaos_eps = chaos.final_epsilon.expect("private run spends ε");
        assert_eq!(
            base_eps.to_bits(),
            chaos_eps.to_bits(),
            "seed {seed}: ε diverged — baseline {base_eps}, chaos {chaos_eps}"
        );

        std::fs::remove_dir_all(baseline_store.dir()).ok();
        std::fs::remove_dir_all(chaos_store.dir()).ok();
    }
}

#[test]
fn chaos_kill_dumps_the_recorder_and_the_run_trace_survives_the_resume() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear_fault_plan();
    let seed = 505u64;
    let (container, cfg, setup) = fixture(seed);
    let master_seed = splitmix64(seed ^ 0x00C0_FFEE);
    let store = fresh_store("recorder", seed);

    let dump_path = std::env::temp_dir().join(format!("privim-chaos-dump-{seed}.jsonl"));
    std::fs::remove_file(&dump_path).ok();
    privim_obs::FlightRecorder::reset();
    privim_obs::FlightRecorder::set_dump_path(Some(dump_path.clone()));
    privim_obs::FlightRecorder::arm();

    // Deterministic kill mid-epoch-2: epoch 1 has already checkpointed
    // (checkpoint_every defaults to 1), so the resume is a real one.
    set_fault_plan(FaultPlan::kill_after("train.post_backward", 2));
    let result = run_once(&container, &cfg, &setup, master_seed, &store);
    clear_fault_plan();
    match result {
        Err(ResumeError::Killed { site }) => assert_eq!(site, "train.post_backward"),
        Err(other) => panic!("expected an injected kill, got {other}"),
        Ok(_) => panic!("expected an injected kill, but the run completed"),
    }

    // The kill dumped the rings: the file exists, every line parses (the
    // same JSONL shape telemetry tooling reads), and the tail names the
    // kill site — the black-box answers "what were we doing when we died".
    let text = std::fs::read_to_string(&dump_path).expect("injected kill must write the dump");
    privim_obs::RunTelemetry::from_jsonl(&text).expect("every dump line is valid JSON");
    let tail = text.lines().last().expect("dump is not empty");
    assert!(
        tail.contains("site=train.post_backward"),
        "dump tail must name the kill site: {tail}"
    );

    // Resume to completion. The run trace id is a pure function of the
    // master seed, so the resumed run derives the identical id — and the
    // checkpoint header proves the correlation across the kill.
    let out = run_once(&container, &cfg, &setup, master_seed, &store).expect("resume completes");
    privim_obs::FlightRecorder::disarm();
    privim_obs::FlightRecorder::set_dump_path(None);
    assert!(out.resumed_from.is_some(), "the kill must force a resume");
    let expected = privim_obs::TraceContext::from_seed(master_seed).trace_id;
    assert_eq!(
        out.trace_id, expected,
        "resumed run must keep the run trace"
    );
    let (ckpt, _) = store
        .load_latest_valid()
        .unwrap()
        .expect("final checkpoint");
    assert_eq!(
        ckpt.trace_id, expected,
        "checkpoint header carries the trace"
    );

    std::fs::remove_file(&dump_path).ok();
    std::fs::remove_dir_all(store.dir()).ok();
}

#[test]
fn corrupted_latest_generation_degrades_to_previous_and_still_matches() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear_fault_plan();
    let seed = 404u64;
    let (container, cfg, setup) = fixture(seed);
    let master_seed = splitmix64(seed);

    let store = fresh_store("corrupt", seed);
    let done = run_once(&container, &cfg, &setup, master_seed, &store).unwrap();
    let reference = weights(done.model.as_ref());
    let reference_eps = done.final_epsilon.unwrap();

    // Rot a byte in the newest generation's payload. The CRC check must
    // reject it, fall back to the previous generation, and replay the
    // final epoch to the same weights and the same exact ε.
    let gens = store.generations().unwrap();
    assert_eq!(gens.len(), 3, "keep=3 after a full run");
    let (latest_epoch, latest_path) = gens.last().unwrap().clone();
    assert_eq!(latest_epoch, cfg.iterations as u64);
    flip_byte(&latest_path, 40).unwrap();

    let recovered = run_once(&container, &cfg, &setup, master_seed, &store).unwrap();
    let resumed_from = recovered
        .resumed_from
        .expect("must resume from a checkpoint");
    assert!(
        resumed_from < cfg.iterations as u64,
        "resumed from {resumed_from}: corrupt latest generation was not skipped"
    );
    assert_eq!(
        reference,
        weights(recovered.model.as_ref()),
        "recovery from the previous generation diverged"
    );
    assert_eq!(
        reference_eps.to_bits(),
        recovered.final_epsilon.unwrap().to_bits(),
        "ε after fallback recovery diverged"
    );

    std::fs::remove_dir_all(store.dir()).ok();
}
