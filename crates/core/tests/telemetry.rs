//! End-to-end telemetry: a private pipeline run with a JSONL sink
//! installed must produce an event stream that parses back into a
//! [`privim_obs::RunTelemetry`] carrying per-epoch losses, clip
//! fractions, phase timings, and the cumulative ε spend — and installing
//! the sink must not change the run's numeric results (instrumentation
//! may never consume RNG).

use std::sync::Arc;

use privim_core::config::PrivImConfig;
use privim_core::pipeline::{run_method, Method, PipelineResult};
use privim_datasets::generators::holme_kim;
use privim_obs::{JsonlSink, Level, RunTelemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_config() -> PrivImConfig {
    PrivImConfig {
        subgraph_size: 10,
        walk_length: 100,
        hops: 2,
        sampling_rate: Some(0.5),
        freq_threshold: 4,
        feature_dim: 4,
        hidden: 8,
        batch_size: 6,
        iterations: 6,
        seed_size: 10,
        epsilon: Some(4.0),
        ..PrivImConfig::default()
    }
}

fn run_once(g: &privim_graph::Graph, cfg: &PrivImConfig) -> PipelineResult {
    run_method(g, Method::PrivImStar, cfg, 7)
}

// One test function on purpose: sinks are process-global, and the harness
// runs #[test] functions of one binary in parallel threads.
#[test]
fn jsonl_telemetry_round_trips_and_leaves_results_unchanged() {
    let mut rng = StdRng::seed_from_u64(1);
    let g = holme_kim(250, 4, 0.4, 1.0, &mut rng);
    let cfg = fast_config();

    // Reference run with telemetry fully disabled.
    let baseline = run_once(&g, &cfg);

    // Instrumented run: JSONL sink at Debug level.
    let path = std::env::temp_dir().join("privim-core-telemetry-e2e.jsonl");
    privim_obs::install_sink(Arc::new(
        JsonlSink::create_with_level(&path, Level::Debug).expect("create telemetry file"),
    ));
    let instrumented = run_once(&g, &cfg);
    privim_obs::take_sinks();

    // Telemetry must not perturb the run: same RNG draws, same outcome.
    assert_eq!(baseline.seeds, instrumented.seeds, "sink changed the RNG stream");
    assert_eq!(baseline.spread, instrumented.spread);
    assert_eq!(baseline.sigma, instrumented.sigma);
    assert_eq!(baseline.container_size, instrumented.container_size);

    let text = std::fs::read_to_string(&path).expect("read telemetry file");
    std::fs::remove_file(&path).ok();
    let report = RunTelemetry::from_jsonl(&text).expect("telemetry parses back");

    // Per-epoch training records with loss + clip diagnostics.
    assert_eq!(report.epochs.len(), cfg.iterations);
    for (i, e) in report.epochs.iter().enumerate() {
        assert_eq!(e.epoch, i as u64);
        assert!(e.loss.is_finite(), "epoch {i} loss not recorded");
        let clip = e.clip_fraction.expect("private run must record clip fraction");
        assert!((0.0..=1.0).contains(&clip));
        assert!(e.grad_norm_pre.unwrap() >= e.grad_norm_post.unwrap() - 1e-12);
        assert!(e.noise_std.unwrap() > 0.0);
        assert!(e.epsilon_spent.unwrap() > 0.0);
    }

    // Phase timings from the pipeline spans.
    for phase in ["pipeline", "extraction", "calibration", "training", "inference"] {
        let secs = report.phase_secs(phase).unwrap_or_else(|| panic!("missing phase {phase}"));
        assert!(secs >= 0.0);
    }
    assert!(
        report.phase_secs("pipeline").unwrap() >= report.phase_secs("training").unwrap(),
        "outer span must cover the training span"
    );

    // Cumulative ε spend: monotone, ends at (close to) the target.
    assert_eq!(report.epsilon_trace.len(), cfg.iterations);
    for w in report.epsilon_trace.windows(2) {
        assert!(w[1] > w[0], "epsilon spend must be monotone");
    }
    let final_eps = report.final_epsilon().unwrap();
    assert!(final_eps <= cfg.epsilon.unwrap() * 1.0001, "overspent: {final_eps}");
    assert!(final_eps > cfg.epsilon.unwrap() * 0.5, "implausibly small spend: {final_eps}");

    // The per-epoch epsilon_spent agrees with the dp/epsilon trace.
    assert_eq!(
        report.epochs.last().unwrap().epsilon_spent.unwrap(),
        *report.epsilon_trace.last().unwrap()
    );

    // Metrics side-channel: the global registry saw the same run.
    let snap = privim_obs::snapshot();
    assert!(snap.counters.get("train.iterations").copied().unwrap_or(0) >= cfg.iterations as u64);
    assert!(snap.histograms.contains_key("span.training"));
}
