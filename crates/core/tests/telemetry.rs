//! End-to-end telemetry: a private pipeline run with a JSONL sink
//! installed must produce an event stream that parses back into a
//! [`privim_obs::RunTelemetry`] carrying per-epoch losses, clip
//! fractions, phase timings, the cumulative ε spend and the privacy
//! ledger — and neither installing the sink nor enabling the profiler
//! may change the run's numeric results (instrumentation never consumes
//! RNG).

use std::sync::Arc;

use privim_core::config::PrivImConfig;
use privim_core::pipeline::{run_method, Method, PipelineResult};
use privim_datasets::generators::holme_kim;
use privim_obs::{JsonlSink, Level, RunTelemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_config() -> PrivImConfig {
    PrivImConfig {
        subgraph_size: 10,
        walk_length: 100,
        hops: 2,
        sampling_rate: Some(0.5),
        freq_threshold: 4,
        feature_dim: 4,
        hidden: 8,
        batch_size: 6,
        iterations: 6,
        seed_size: 10,
        epsilon: Some(4.0),
        ..PrivImConfig::default()
    }
}

fn run_once(g: &privim_graph::Graph, cfg: &PrivImConfig) -> PipelineResult {
    run_method(g, Method::PrivImStar, cfg, 7)
}

// One test function on purpose: sinks are process-global, and the harness
// runs #[test] functions of one binary in parallel threads.
#[test]
fn jsonl_telemetry_round_trips_and_leaves_results_unchanged() {
    let mut rng = StdRng::seed_from_u64(1);
    let g = holme_kim(250, 4, 0.4, 1.0, &mut rng);
    let cfg = fast_config();

    // Reference run with telemetry fully disabled.
    let baseline = run_once(&g, &cfg);

    // Instrumented run: JSONL sink at Debug level.
    let path = std::env::temp_dir().join("privim-core-telemetry-e2e.jsonl");
    privim_obs::install_sink(Arc::new(
        JsonlSink::create_with_level(&path, Level::Debug).expect("create telemetry file"),
    ));
    let instrumented = run_once(&g, &cfg);
    privim_obs::take_sinks();

    // Telemetry must not perturb the run: same RNG draws, same outcome.
    assert_eq!(
        baseline.seeds, instrumented.seeds,
        "sink changed the RNG stream"
    );
    assert_eq!(baseline.spread, instrumented.spread);
    assert_eq!(baseline.sigma, instrumented.sigma);
    assert_eq!(baseline.container_size, instrumented.container_size);

    let text = std::fs::read_to_string(&path).expect("read telemetry file");
    std::fs::remove_file(&path).ok();
    let report = RunTelemetry::from_jsonl(&text).expect("telemetry parses back");

    // Per-epoch training records with loss + clip diagnostics.
    assert_eq!(report.epochs.len(), cfg.iterations);
    for (i, e) in report.epochs.iter().enumerate() {
        assert_eq!(e.epoch, i as u64);
        assert!(e.loss.is_finite(), "epoch {i} loss not recorded");
        let clip = e
            .clip_fraction
            .expect("private run must record clip fraction");
        assert!((0.0..=1.0).contains(&clip));
        assert!(e.grad_norm_pre.unwrap() >= e.grad_norm_post.unwrap() - 1e-12);
        assert!(e.noise_std.unwrap() > 0.0);
        assert!(e.epsilon_spent.unwrap() > 0.0);
    }

    // Phase timings from the pipeline spans.
    for phase in [
        "pipeline",
        "extraction",
        "calibration",
        "training",
        "inference",
    ] {
        let secs = report
            .phase_secs(phase)
            .unwrap_or_else(|| panic!("missing phase {phase}"));
        assert!(secs >= 0.0);
    }
    assert!(
        report.phase_secs("pipeline").unwrap() >= report.phase_secs("training").unwrap(),
        "outer span must cover the training span"
    );

    // Cumulative ε spend: monotone, ends at (close to) the target.
    assert_eq!(report.epsilon_trace.len(), cfg.iterations);
    for w in report.epsilon_trace.windows(2) {
        assert!(w[1] > w[0], "epsilon spend must be monotone");
    }
    let final_eps = report.final_epsilon().unwrap();
    assert!(
        final_eps <= cfg.epsilon.unwrap() * 1.0001,
        "overspent: {final_eps}"
    );
    assert!(
        final_eps > cfg.epsilon.unwrap() * 0.5,
        "implausibly small spend: {final_eps}"
    );

    // The per-epoch epsilon_spent agrees with the dp/epsilon trace.
    assert_eq!(
        report.epochs.last().unwrap().epsilon_spent.unwrap(),
        *report.epsilon_trace.last().unwrap()
    );

    // Privacy-budget ledger: one record per noisy step, carrying the
    // mechanism parameters, and replayable offline to the same ε.
    assert_eq!(
        report.ledger.len(),
        cfg.iterations,
        "one ledger record per iteration"
    );
    for (i, rec) in report.ledger.iter().enumerate() {
        assert_eq!(rec.step, i as u64 + 1);
        assert_eq!(rec.mechanism, "subsampled_gaussian");
        assert_eq!(
            Some(rec.sigma),
            instrumented.sigma,
            "ledger σ must match the run's"
        );
        assert!(rec.sensitivity > 0.0);
        assert!(rec.sampling_rate > 0.0 && rec.sampling_rate <= 1.0);
        assert!(
            (rec.epsilon_after - report.epsilon_trace[i]).abs() <= 1e-9,
            "ledger ε diverges from the dp/epsilon trace at step {}",
            i + 1
        );
    }
    let replayed = privim_dp::replay_records(&report.ledger, &privim_dp::rdp::DEFAULT_ORDERS);
    assert_eq!(replayed.len(), report.ledger.len());
    for (rec, &(eps, _alpha)) in report.ledger.iter().zip(&replayed) {
        assert!(
            (rec.epsilon_after - eps).abs() <= 1e-9,
            "replaying the ledger must reproduce the accountant: step {} recorded {} vs {}",
            rec.step,
            rec.epsilon_after,
            eps
        );
    }

    // Metrics side-channel: the global registry saw the same run.
    let snap = privim_obs::snapshot();
    assert!(snap.counters.get("train.iterations").copied().unwrap_or(0) >= cfg.iterations as u64);
    assert!(snap.histograms.contains_key("span.training"));

    // Flight recorder armed under a run-scoped trace context: capture
    // copies bytes into per-thread rings and never touches the RNG, so
    // the run stays bit-identical — and the rings must hold events
    // stamped with the entered trace.
    let run_ctx = privim_obs::TraceContext::from_seed(7);
    privim_obs::FlightRecorder::reset();
    privim_obs::FlightRecorder::arm();
    let recorded = {
        let _t = run_ctx.enter();
        run_once(&g, &cfg)
    };
    privim_obs::FlightRecorder::disarm();
    assert_eq!(
        baseline.seeds, recorded.seeds,
        "recorder/tracing changed the RNG stream"
    );
    assert_eq!(baseline.spread, recorded.spread);
    assert_eq!(baseline.sigma, recorded.sigma);
    assert!(
        privim_obs::FlightRecorder::dump()
            .iter()
            .any(|e| e.trace_id == run_ctx.trace_id),
        "armed recorder must capture events under the run trace"
    );

    // Profiler off (the default): the baseline/instrumented equality above
    // already proves bit-identical output. Profiler on: still bit-identical
    // (scopes read clocks, never the RNG), and the call tree is populated.
    privim_obs::set_profiling(true);
    let profiled = run_once(&g, &cfg);
    privim_obs::set_profiling(false);
    assert_eq!(
        baseline.seeds, profiled.seeds,
        "profiler changed the RNG stream"
    );
    assert_eq!(baseline.spread, profiled.spread);
    assert_eq!(baseline.sigma, profiled.sigma);

    let prof = privim_obs::profile_report();
    assert!(!prof.is_empty(), "profiled run must record scopes");
    for scope in ["training", "nn.matmul", "nn.matmul.bwd"] {
        assert!(
            prof.rows.iter().any(|r| r.name == scope && r.calls > 0),
            "missing profile scope {scope}:\n{}",
            prof.render_table()
        );
    }
    // FLOP counters only tick while profiling is enabled.
    let snap = privim_obs::snapshot();
    assert!(snap.counters.get("nn.flops.matmul").copied().unwrap_or(0) > 0);

    // Roofline work counters: the bit-identity assertions above ran with
    // profiling *and* work counters armed, so the hot kernels must carry
    // exact flop/byte/item attribution in the merged call tree …
    for scope in ["nn.matmul", "train.clip_accumulate"] {
        let row = prof
            .rows
            .iter()
            .find(|r| r.name == scope)
            .unwrap_or_else(|| panic!("missing work-counter scope {scope}"));
        assert!(row.has_work(), "{scope} recorded no work counters");
        assert!(
            row.arithmetic_intensity().is_some(),
            "{scope} must derive a roofline intensity (flops and bytes both set)"
        );
        assert!(row.items > 0, "{scope} item counter empty");
    }
    // … and the per-scope flop totals agree exactly with the metrics
    // counter, which is fed the same values at the same sites.
    let matmul_flops: u64 = prof
        .rows
        .iter()
        .filter(|r| r.name.starts_with("nn.matmul"))
        .map(|r| r.flops)
        .sum();
    assert_eq!(
        Some(matmul_flops),
        snap.counters.get("nn.flops.matmul").copied(),
        "profile work counters and metrics counter diverged"
    );
    privim_obs::reset_profile();
}
