//! End-to-end telemetry: a private pipeline run with a JSONL sink
//! installed must produce an event stream that parses back into a
//! [`privim_obs::RunTelemetry`] carrying per-epoch losses, clip
//! fractions, phase timings, the cumulative ε spend and the privacy
//! ledger — and neither installing the sink nor enabling the profiler
//! may change the run's numeric results (instrumentation never consumes
//! RNG).

use std::sync::{Arc, Mutex};

use privim_core::config::PrivImConfig;
use privim_core::pipeline::{run_method, Method, PipelineResult};
use privim_datasets::generators::holme_kim;
use privim_obs::{JsonlSink, Level, RunTelemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

// Sinks, the watchdog and the metrics registry are process-global, and
// the harness runs #[test] functions of one binary in parallel threads:
// every test here serializes on this gate.
static GATE: Mutex<()> = Mutex::new(());

fn fast_config() -> PrivImConfig {
    PrivImConfig {
        subgraph_size: 10,
        walk_length: 100,
        hops: 2,
        sampling_rate: Some(0.5),
        freq_threshold: 4,
        feature_dim: 4,
        hidden: 8,
        batch_size: 6,
        iterations: 6,
        seed_size: 10,
        epsilon: Some(4.0),
        ..PrivImConfig::default()
    }
}

fn run_once(g: &privim_graph::Graph, cfg: &PrivImConfig) -> PipelineResult {
    run_method(g, Method::PrivImStar, cfg, 7)
}

#[test]
fn jsonl_telemetry_round_trips_and_leaves_results_unchanged() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(1);
    let g = holme_kim(250, 4, 0.4, 1.0, &mut rng);
    let cfg = fast_config();

    // Reference run with telemetry fully disabled.
    let baseline = run_once(&g, &cfg);

    // Instrumented run: JSONL sink at Debug level.
    let path = std::env::temp_dir().join("privim-core-telemetry-e2e.jsonl");
    privim_obs::install_sink(Arc::new(
        JsonlSink::create_with_level(&path, Level::Debug).expect("create telemetry file"),
    ));
    let instrumented = run_once(&g, &cfg);
    privim_obs::take_sinks();

    // Telemetry must not perturb the run: same RNG draws, same outcome.
    assert_eq!(
        baseline.seeds, instrumented.seeds,
        "sink changed the RNG stream"
    );
    assert_eq!(baseline.spread, instrumented.spread);
    assert_eq!(baseline.sigma, instrumented.sigma);
    assert_eq!(baseline.container_size, instrumented.container_size);

    let text = std::fs::read_to_string(&path).expect("read telemetry file");
    std::fs::remove_file(&path).ok();
    let report = RunTelemetry::from_jsonl(&text).expect("telemetry parses back");

    // Per-epoch training records with loss + clip diagnostics.
    assert_eq!(report.epochs.len(), cfg.iterations);
    for (i, e) in report.epochs.iter().enumerate() {
        assert_eq!(e.epoch, i as u64);
        assert!(e.loss.is_finite(), "epoch {i} loss not recorded");
        let clip = e
            .clip_fraction
            .expect("private run must record clip fraction");
        assert!((0.0..=1.0).contains(&clip));
        assert!(e.grad_norm_pre.unwrap() >= e.grad_norm_post.unwrap() - 1e-12);
        assert!(e.noise_std.unwrap() > 0.0);
        assert!(e.epsilon_spent.unwrap() > 0.0);
    }

    // Phase timings from the pipeline spans.
    for phase in [
        "pipeline",
        "extraction",
        "calibration",
        "training",
        "inference",
    ] {
        let secs = report
            .phase_secs(phase)
            .unwrap_or_else(|| panic!("missing phase {phase}"));
        assert!(secs >= 0.0);
    }
    assert!(
        report.phase_secs("pipeline").unwrap() >= report.phase_secs("training").unwrap(),
        "outer span must cover the training span"
    );

    // Cumulative ε spend: monotone, ends at (close to) the target.
    assert_eq!(report.epsilon_trace.len(), cfg.iterations);
    for w in report.epsilon_trace.windows(2) {
        assert!(w[1] > w[0], "epsilon spend must be monotone");
    }
    let final_eps = report.final_epsilon().unwrap();
    assert!(
        final_eps <= cfg.epsilon.unwrap() * 1.0001,
        "overspent: {final_eps}"
    );
    assert!(
        final_eps > cfg.epsilon.unwrap() * 0.5,
        "implausibly small spend: {final_eps}"
    );

    // The per-epoch epsilon_spent agrees with the dp/epsilon trace.
    assert_eq!(
        report.epochs.last().unwrap().epsilon_spent.unwrap(),
        *report.epsilon_trace.last().unwrap()
    );

    // Privacy-budget ledger: one record per noisy step, carrying the
    // mechanism parameters, and replayable offline to the same ε.
    assert_eq!(
        report.ledger.len(),
        cfg.iterations,
        "one ledger record per iteration"
    );
    for (i, rec) in report.ledger.iter().enumerate() {
        assert_eq!(rec.step, i as u64 + 1);
        assert_eq!(rec.mechanism, "subsampled_gaussian");
        assert_eq!(
            Some(rec.sigma),
            instrumented.sigma,
            "ledger σ must match the run's"
        );
        assert!(rec.sensitivity > 0.0);
        assert!(rec.sampling_rate > 0.0 && rec.sampling_rate <= 1.0);
        assert!(
            (rec.epsilon_after - report.epsilon_trace[i]).abs() <= 1e-9,
            "ledger ε diverges from the dp/epsilon trace at step {}",
            i + 1
        );
    }
    let replayed = privim_dp::replay_records(&report.ledger, &privim_dp::rdp::DEFAULT_ORDERS);
    assert_eq!(replayed.len(), report.ledger.len());
    for (rec, &(eps, _alpha)) in report.ledger.iter().zip(&replayed) {
        assert!(
            (rec.epsilon_after - eps).abs() <= 1e-9,
            "replaying the ledger must reproduce the accountant: step {} recorded {} vs {}",
            rec.step,
            rec.epsilon_after,
            eps
        );
    }

    // Metrics side-channel: the global registry saw the same run.
    let snap = privim_obs::snapshot();
    assert!(snap.counters.get("train.iterations").copied().unwrap_or(0) >= cfg.iterations as u64);
    assert!(snap.histograms.contains_key("span.training"));

    // Flight recorder armed under a run-scoped trace context: capture
    // copies bytes into per-thread rings and never touches the RNG, so
    // the run stays bit-identical — and the rings must hold events
    // stamped with the entered trace.
    let run_ctx = privim_obs::TraceContext::from_seed(7);
    privim_obs::FlightRecorder::reset();
    privim_obs::FlightRecorder::arm();
    let recorded = {
        let _t = run_ctx.enter();
        run_once(&g, &cfg)
    };
    privim_obs::FlightRecorder::disarm();
    assert_eq!(
        baseline.seeds, recorded.seeds,
        "recorder/tracing changed the RNG stream"
    );
    assert_eq!(baseline.spread, recorded.spread);
    assert_eq!(baseline.sigma, recorded.sigma);
    assert!(
        privim_obs::FlightRecorder::dump()
            .iter()
            .any(|e| e.trace_id == run_ctx.trace_id),
        "armed recorder must capture events under the run trace"
    );

    // Span export armed: the JSONL span sink is fed only at explicit
    // export_span call sites (the serving tier), never from the training
    // hot path — so arming it must leave seeded outputs bit-identical.
    let span_path = std::env::temp_dir().join("privim-core-telemetry-spans.jsonl");
    std::fs::remove_file(&span_path).ok();
    privim_obs::arm_span_export("core-test", span_path.to_str().unwrap()).expect("arm span export");
    assert!(privim_obs::span_export_armed());
    let span_armed = {
        let _t = run_ctx.enter();
        run_once(&g, &cfg)
    };
    privim_obs::disarm_span_export();
    std::fs::remove_file(&span_path).ok();
    assert_eq!(
        baseline.seeds, span_armed.seeds,
        "span export changed the RNG stream"
    );
    assert_eq!(baseline.spread, span_armed.spread);
    assert_eq!(baseline.sigma, span_armed.sigma);

    // Profiler off (the default): the baseline/instrumented equality above
    // already proves bit-identical output. Profiler on: still bit-identical
    // (scopes read clocks, never the RNG), and the call tree is populated.
    privim_obs::set_profiling(true);
    let profiled = run_once(&g, &cfg);
    privim_obs::set_profiling(false);
    assert_eq!(
        baseline.seeds, profiled.seeds,
        "profiler changed the RNG stream"
    );
    assert_eq!(baseline.spread, profiled.spread);
    assert_eq!(baseline.sigma, profiled.sigma);

    let prof = privim_obs::profile_report();
    assert!(!prof.is_empty(), "profiled run must record scopes");
    for scope in ["training", "nn.matmul", "nn.matmul.bwd"] {
        assert!(
            prof.rows.iter().any(|r| r.name == scope && r.calls > 0),
            "missing profile scope {scope}:\n{}",
            prof.render_table()
        );
    }
    // FLOP counters only tick while profiling is enabled.
    let snap = privim_obs::snapshot();
    assert!(snap.counters.get("nn.flops.matmul").copied().unwrap_or(0) > 0);

    // Roofline work counters: the bit-identity assertions above ran with
    // profiling *and* work counters armed, so the hot kernels must carry
    // exact flop/byte/item attribution in the merged call tree …
    for scope in ["nn.matmul", "train.clip_accumulate"] {
        let row = prof
            .rows
            .iter()
            .find(|r| r.name == scope)
            .unwrap_or_else(|| panic!("missing work-counter scope {scope}"));
        assert!(row.has_work(), "{scope} recorded no work counters");
        assert!(
            row.arithmetic_intensity().is_some(),
            "{scope} must derive a roofline intensity (flops and bytes both set)"
        );
        assert!(row.items > 0, "{scope} item counter empty");
    }
    // … and the per-scope flop totals agree exactly with the metrics
    // counter, which is fed the same values at the same sites.
    let matmul_flops: u64 = prof
        .rows
        .iter()
        .filter(|r| r.name.starts_with("nn.matmul"))
        .map(|r| r.flops)
        .sum();
    assert_eq!(
        Some(matmul_flops),
        snap.counters.get("nn.flops.matmul").copied(),
        "profile work counters and metrics counter diverged"
    );
    privim_obs::reset_profile();
}

// The ε budget guard: the halt must land exactly before the first
// overspending step, carry the accountant's numbers bit-for-bit, leave
// seeded outputs bit-identical with the watchdog armed, and refuse
// further steps on resume under the same budget.
#[test]
fn budget_guard_halts_exactly_and_keeps_runs_bit_identical() {
    use privim_core::checkpoint::CheckpointStore;
    use privim_core::resume::{train_resumable, ResumeOptions};
    use privim_core::sampling::extract_dual_stage;
    use privim_core::train::{NoiseKind, PrivacySetup};
    use privim_nn::models::{GnnModel, ModelKind};

    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());

    let mut rng = StdRng::seed_from_u64(11);
    let g = holme_kim(200, 4, 0.4, 1.0, &mut rng);
    let cfg = PrivImConfig {
        subgraph_size: 10,
        walk_length: 120,
        hops: 2,
        sampling_rate: Some(0.6),
        freq_threshold: 4,
        feature_dim: 4,
        hidden: 8,
        batch_size: 6,
        iterations: 6,
        ..PrivImConfig::default()
    };
    let candidates: Vec<privim_graph::NodeId> = g.nodes().collect();
    let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
    let setup = PrivacySetup::calibrate(
        3.0,
        1e-4,
        &cfg,
        out.container.len(),
        cfg.freq_threshold,
        NoiseKind::Gaussian,
    );
    let store = |name: &str| {
        let dir = std::env::temp_dir().join(format!("privim-budget-e2e-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        CheckpointStore::open(&dir, 3).unwrap()
    };
    let run = |st: &CheckpointStore, budget: Option<f64>| {
        train_resumable(
            ModelKind::Gcn,
            &out.container,
            &cfg,
            Some(&setup),
            77,
            st,
            ResumeOptions {
                epsilon_budget: budget,
                ..ResumeOptions::default()
            },
        )
        .unwrap()
    };
    let weights = |model: &dyn GnnModel| -> Vec<u64> {
        model
            .params()
            .iter()
            .flat_map(|p| p.value.data().iter().map(|v| v.to_bits()))
            .collect()
    };

    // Reference: unguarded, watchdog disarmed. Its ledger carries the
    // exact cumulative ε after each of the 6 steps.
    let st_ref = store("ref");
    let reference = run(&st_ref, None);
    assert!(reference.budget_halt.is_none());
    let (ckpt, _) = st_ref.load_latest_valid().unwrap().unwrap();
    let eps_trace: Vec<f64> = ckpt
        .ledger
        .as_ref()
        .unwrap()
        .to_records()
        .iter()
        .map(|r| r.epsilon_after)
        .collect();
    assert_eq!(eps_trace.len(), cfg.iterations);

    // Generous budget + armed watchdog: completes all epochs and the
    // output is bit-identical — the guard and rule engine consume no RNG.
    privim_obs::watch::arm(vec![privim_obs::AlertRule::new(
        "epsilon_budget",
        "dp.epsilon_next",
        privim_obs::RuleKind::BurnRate {
            budget: eps_trace[5] * 2.0,
            warn_fraction: 0.8,
        },
    )]);
    let st_armed = store("armed");
    let armed = run(&st_armed, Some(eps_trace[5] * 2.0));
    assert!(armed.budget_halt.is_none(), "generous budget must not halt");
    assert_eq!(
        weights(reference.model.as_ref()),
        weights(armed.model.as_ref()),
        "armed watchdog changed the training stream"
    );
    assert_eq!(reference.report.losses, armed.report.losses);
    assert_eq!(
        reference.final_epsilon.unwrap().to_bits(),
        armed.final_epsilon.unwrap().to_bits()
    );
    privim_obs::watch::disarm();

    // A budget strictly between the spend after 3 and after 4 steps must
    // halt exactly before step 4, reporting both sides bit-for-bit.
    let budget = (eps_trace[2] + eps_trace[3]) / 2.0;
    let path = std::env::temp_dir().join("privim-budget-e2e-halt.jsonl");
    privim_obs::install_sink(Arc::new(
        JsonlSink::create_with_level(&path, Level::Debug).expect("create telemetry file"),
    ));
    let st_halt = store("halt");
    let halted = run(&st_halt, Some(budget));
    privim_obs::take_sinks();
    let halt = halted.budget_halt.expect("tight budget must halt");
    assert_eq!(halt.epoch, 3, "halt before the first overspending step");
    assert_eq!(halt.fresh_steps, 3);
    assert_eq!(halt.budget, budget);
    assert_eq!(
        halt.epsilon_spent.to_bits(),
        eps_trace[2].to_bits(),
        "committed spend must be accountant-exact"
    );
    assert_eq!(
        halt.projected_next.to_bits(),
        eps_trace[3].to_bits(),
        "projected spend must equal what recording the step would cost"
    );
    assert_eq!(halted.report.losses, reference.report.losses[..3]);
    assert_eq!(
        halted.final_epsilon.unwrap().to_bits(),
        eps_trace[2].to_bits()
    );
    // The halt persisted a checkpoint at the halt epoch with the ledger
    // stopped at the committed spend.
    let (halt_ckpt, _) = st_halt.load_latest_valid().unwrap().unwrap();
    assert_eq!(halt_ckpt.epoch, 3);
    assert_eq!(
        halt_ckpt
            .ledger
            .as_ref()
            .unwrap()
            .cumulative_epsilon()
            .unwrap()
            .to_bits(),
        eps_trace[2].to_bits()
    );
    // The halt is a structured, greppable telemetry event.
    let text = std::fs::read_to_string(&path).expect("read telemetry file");
    std::fs::remove_file(&path).ok();
    let halt_line = text
        .lines()
        .find(|l| l.contains("\"budget_halt\""))
        .expect("budget_halt event in the stream");
    let event = privim_obs::json::parse(halt_line).unwrap();
    let fields = event.get("fields").unwrap();
    assert_eq!(fields.get("epoch").unwrap().as_u64(), Some(3));
    assert_eq!(
        fields.get("epsilon_spent").unwrap().as_f64(),
        Some(eps_trace[2])
    );
    assert_eq!(
        fields.get("projected_next").unwrap().as_f64(),
        Some(eps_trace[3])
    );

    // Resume under the same budget: refuses to take any further step,
    // with the model exactly where the halt left it.
    let resumed = run(&st_halt, Some(budget));
    let refusal = resumed
        .budget_halt
        .expect("resume must refuse to overspend");
    assert_eq!(refusal.epoch, 3);
    assert_eq!(refusal.fresh_steps, 0, "no step may run on resume");
    assert_eq!(refusal.epsilon_spent.to_bits(), eps_trace[2].to_bits());
    assert_eq!(resumed.resumed_from, Some(3));
    assert_eq!(
        weights(resumed.model.as_ref()),
        weights(halted.model.as_ref())
    );

    for st in [st_ref, st_armed, st_halt] {
        std::fs::remove_dir_all(st.dir()).ok();
    }
}
