//! Property-based tests for the PrivIM core: sampler invariants, loss
//! bounds, and accounting interplay.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use privim_core::config::PrivImConfig;
use privim_core::loss::im_loss_value;
use privim_core::sampling::{extract_dual_stage, extract_naive};
use privim_datasets::generators::holme_kim;
use privim_dp::rdp::naive_occurrence_bound;
use privim_graph::NodeId;
use privim_nn::graph_tensors::GraphTensors;

fn small_config(n: usize, m: usize, hops: usize) -> PrivImConfig {
    PrivImConfig {
        subgraph_size: n,
        freq_threshold: m,
        hops,
        walk_length: 120,
        sampling_rate: Some(0.8),
        feature_dim: 4,
        ..PrivImConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dual_stage_never_exceeds_threshold(
        graph_seed in 0u64..30,
        rng_seed in 0u64..30,
        m in 1usize..6,
        n in 4usize..14,
    ) {
        let mut grng = StdRng::seed_from_u64(graph_seed);
        let g = holme_kim(150, 3, 0.3, 1.0, &mut grng);
        let cfg = small_config(n, m, 2);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
        let observed = out.container.observed_max_occurrence(g.num_nodes());
        prop_assert!(observed <= m, "observed {observed} > M = {m}");
        // Frequency vector is exact bookkeeping.
        prop_assert!(out.frequency.iter().all(|&f| f as usize <= m));
    }

    #[test]
    fn naive_respects_lemma1_bound(
        graph_seed in 0u64..20,
        rng_seed in 0u64..20,
        theta in 2usize..6,
        hops in 1usize..3,
    ) {
        let mut grng = StdRng::seed_from_u64(graph_seed);
        let g = holme_kim(120, 3, 0.3, 1.0, &mut grng);
        let mut cfg = small_config(8, 100, hops);
        cfg.theta = theta;
        let candidates: Vec<NodeId> = g.nodes().collect();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let (container, projected) = extract_naive(&g, &cfg, &candidates, &mut rng);
        let bound = naive_occurrence_bound(theta, hops);
        prop_assert!(container.observed_max_occurrence(g.num_nodes()) <= bound);
        // And the projection invariant that Lemma 1 builds on.
        for u in projected.nodes() {
            prop_assert!(projected.in_degree(u) <= theta);
        }
    }

    #[test]
    fn subgraph_sizes_are_exactly_as_requested(
        graph_seed in 0u64..20,
        n in 4usize..12,
    ) {
        let mut grng = StdRng::seed_from_u64(graph_seed);
        let g = holme_kim(150, 4, 0.3, 1.0, &mut grng);
        let cfg = small_config(n, 4, 2);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let mut rng = StdRng::seed_from_u64(graph_seed + 1);
        let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
        let bes = (n / cfg.bes_divisor).max(2);
        for (i, s) in out.container.samples().iter().enumerate() {
            let want = if i < out.stage1_count { n } else { bes };
            prop_assert_eq!(s.len(), want);
            prop_assert_eq!(s.graph.num_nodes(), want);
            prop_assert_eq!(s.tensors.num_nodes, want);
        }
    }

    #[test]
    fn loss_is_bounded_and_decreasing_in_seed_mass(
        graph_seed in 0u64..20,
        probs in proptest::collection::vec(0.01f64..0.95, 40),
        bump_idx in 0usize..40,
    ) {
        let mut grng = StdRng::seed_from_u64(graph_seed);
        let g = holme_kim(40, 3, 0.3, 1.0, &mut grng);
        let gt = GraphTensors::with_structural_features(&g, 4);
        let n = g.num_nodes() as f64;

        let loss = im_loss_value(&gt, &probs, 1, 0.0);
        prop_assert!(loss >= 0.0 && loss <= n + 1e-9, "loss {loss} out of [0, {n}]");

        // With λ = 0, raising any x can only reduce uninfluenced mass.
        let mut bumped = probs.clone();
        bumped[bump_idx % probs.len()] = (bumped[bump_idx % probs.len()] + 0.04).min(1.0);
        let bumped_loss = im_loss_value(&gt, &bumped, 1, 0.0);
        prop_assert!(bumped_loss <= loss + 1e-9, "loss rose when seed mass grew");
    }

    #[test]
    fn loss_penalty_is_linear_in_lambda(
        graph_seed in 0u64..20,
        probs in proptest::collection::vec(0.0f64..1.0, 30),
        lambda in 0.0f64..3.0,
    ) {
        let mut grng = StdRng::seed_from_u64(graph_seed);
        let g = holme_kim(30, 3, 0.3, 1.0, &mut grng);
        let gt = GraphTensors::with_structural_features(&g, 4);
        let base = im_loss_value(&gt, &probs, 1, 0.0);
        let with = im_loss_value(&gt, &probs, 1, lambda);
        let mass: f64 = probs.iter().sum();
        prop_assert!((with - base - lambda * mass).abs() < 1e-9);
    }

    #[test]
    fn more_diffusion_steps_never_increase_uninfluenced_mass(
        graph_seed in 0u64..20,
        probs in proptest::collection::vec(0.0f64..1.0, 30),
    ) {
        let mut grng = StdRng::seed_from_u64(graph_seed);
        let g = holme_kim(30, 3, 0.3, 1.0, &mut grng);
        let gt = GraphTensors::with_structural_features(&g, 4);
        let one = im_loss_value(&gt, &probs, 1, 0.0);
        let three = im_loss_value(&gt, &probs, 3, 0.0);
        prop_assert!(three <= one + 1e-9, "longer diffusion left more uninfluenced");
    }
}
