//! Privacy-invariant tests: the accounting promises the framework makes
//! must hold across configurations and methods.

use privim_core::config::PrivImConfig;
use privim_core::pipeline::{run_method, Method};
use privim_core::train::{NoiseKind, PrivacySetup};
use privim_datasets::generators::holme_kim;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph() -> privim_graph::Graph {
    let mut rng = StdRng::seed_from_u64(2);
    holme_kim(220, 4, 0.35, 1.0, &mut rng)
}

fn config(eps: f64) -> PrivImConfig {
    PrivImConfig {
        epsilon: Some(eps),
        subgraph_size: 12,
        hops: 2,
        hidden: 8,
        feature_dim: 4,
        batch_size: 8,
        iterations: 10,
        seed_size: 8,
        sampling_rate: Some(0.7),
        ..PrivImConfig::default()
    }
}

#[test]
fn spent_epsilon_never_exceeds_target_across_grid() {
    for eps in [0.5, 1.0, 2.0, 4.0, 8.0] {
        for m in [30usize, 100, 400] {
            for n_g in [2usize, 4, 10, 50] {
                let cfg = config(eps);
                let setup = PrivacySetup::calibrate(eps, 1e-5, &cfg, m, n_g, NoiseKind::Gaussian);
                let (spent, _) = setup.spent_epsilon(&cfg, m);
                assert!(
                    spent <= eps * 1.0001,
                    "eps={eps} m={m} n_g={n_g}: spent {spent}"
                );
                assert!(setup.sigma > 0.0);
            }
        }
    }
}

#[test]
fn tighter_epsilon_means_more_absolute_noise() {
    let cfg = config(1.0);
    let mut prev = f64::INFINITY;
    for eps in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let setup = PrivacySetup::calibrate(eps, 1e-5, &cfg, 100, 4, NoiseKind::Gaussian);
        let noise = setup.noise_std(cfg.clip_bound);
        assert!(
            noise < prev,
            "noise must shrink as eps grows: {noise} >= {prev}"
        );
        prev = noise;
    }
}

#[test]
fn every_private_method_reports_its_sigma_and_bound() {
    let g = graph();
    for method in [
        Method::PrivImStar,
        Method::PrivImScs,
        Method::PrivIm,
        Method::Egn,
        Method::Hp,
    ] {
        let r = run_method(&g, method, &config(3.0), 4);
        assert!(r.sigma.is_some(), "{method}");
        assert!(r.occurrence_bound >= 1, "{method}");
        match method {
            Method::PrivImStar | Method::PrivImScs => {
                assert_eq!(r.occurrence_bound, config(3.0).freq_threshold, "{method}")
            }
            Method::PrivIm => assert_eq!(
                r.occurrence_bound,
                privim_dp::rdp::naive_occurrence_bound(config(3.0).theta, config(3.0).hops),
                "{method}"
            ),
            Method::Egn => assert_eq!(r.occurrence_bound, r.container_size, "{method}"),
            _ => assert_eq!(r.occurrence_bound, config(3.0).theta + 1, "{method}"),
        }
    }
}

#[test]
fn dual_stage_noise_is_far_below_naive_noise_at_equal_epsilon() {
    let cfg = config(3.0);
    let star = PrivacySetup::calibrate(
        3.0,
        1e-5,
        &cfg,
        100,
        cfg.freq_threshold,
        NoiseKind::Gaussian,
    );
    let naive_bound = privim_dp::rdp::naive_occurrence_bound(cfg.theta, cfg.hops);
    let naive = PrivacySetup::calibrate(3.0, 1e-5, &cfg, 100, naive_bound, NoiseKind::Gaussian);
    let ratio = naive.noise_std(cfg.clip_bound) / star.noise_std(cfg.clip_bound);
    assert!(
        ratio > 5.0,
        "the dual-stage advantage should be large: naive/star noise ratio = {ratio:.1}"
    );
}

#[test]
fn nonprivate_runs_never_report_privacy_artifacts() {
    let g = graph();
    let mut cfg = config(1.0);
    cfg.epsilon = None;
    let r = run_method(&g, Method::PrivImStar, &cfg, 5);
    assert!(r.sigma.is_none());
    let r = run_method(&g, Method::NonPrivate, &config(1.0), 5);
    assert!(
        r.sigma.is_none(),
        "NonPrivate ignores epsilon by definition"
    );
}

#[test]
fn delta_defaults_respect_the_paper_constraint() {
    // δ < 1/|V_train| for every candidate-set size.
    let cfg = config(1.0);
    for n in [10usize, 100, 1_000, 100_000] {
        let delta = cfg.effective_delta(n);
        assert!(delta < 1.0 / n as f64, "n={n}: delta {delta}");
        assert!(delta > 0.0);
    }
}
