//! Integration test of the Linear Threshold extension: training with the
//! LT loss must produce seed sets that perform under LT diffusion, and the
//! LossKind switch must actually change the objective being optimized.

use privim_core::config::{LossKind, PrivImConfig};
use privim_core::pipeline::{run_method, Method};
use privim_datasets::paper::Dataset;
use privim_graph::algorithms::weighted_cascade;
use privim_im::models::{DiffusionConfig, DiffusionModel};
use privim_im::spread::influence_spread;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(loss: LossKind) -> PrivImConfig {
    PrivImConfig {
        epsilon: None,
        loss,
        subgraph_size: 14,
        hops: 2,
        hidden: 12,
        feature_dim: 8,
        batch_size: 16,
        iterations: 40,
        learning_rate: 0.02,
        seed_size: 10,
        sampling_rate: Some(0.8),
        ..PrivImConfig::default()
    }
}

#[test]
fn lt_trained_model_beats_random_under_lt_diffusion() {
    let base = Dataset::LastFm.generate(0.05, 31);
    let g = weighted_cascade(&base);
    let lt = DiffusionConfig {
        model: DiffusionModel::LinearThreshold,
        max_steps: Some(2),
    };

    let r = run_method(&g, Method::NonPrivate, &config(LossKind::LtTruncated), 3);
    let mut rng = StdRng::seed_from_u64(4);
    let trained = influence_spread(&g, &r.seeds, &lt, 3_000, &mut rng);

    let random = privim_im::greedy::random_seeds(&g, r.seeds.len(), &mut rng);
    let baseline = influence_spread(&g, &random, &lt, 3_000, &mut rng);
    assert!(
        trained > baseline * 1.3,
        "LT-trained spread {trained:.1} should clearly beat random {baseline:.1}"
    );
}

#[test]
fn loss_kinds_produce_different_training_dynamics() {
    // On a weighted graph the two losses are genuinely different
    // objectives; their training trajectories must differ.
    let base = Dataset::Bitcoin.generate(0.06, 7);
    let g = weighted_cascade(&base);
    let ic = run_method(&g, Method::NonPrivate, &config(LossKind::IcProduct), 5);
    let lt = run_method(&g, Method::NonPrivate, &config(LossKind::LtTruncated), 5);
    assert_ne!(
        ic.final_loss, lt.final_loss,
        "the two loss kinds evaluated identically — switch is dead"
    );
}

#[test]
fn both_losses_run_privately() {
    let base = Dataset::LastFm.generate(0.04, 9);
    let g = weighted_cascade(&base);
    for loss in [LossKind::IcProduct, LossKind::LtTruncated] {
        let mut cfg = config(loss);
        cfg.epsilon = Some(3.0);
        let r = run_method(&g, Method::PrivImStar, &cfg, 2);
        assert!(r.sigma.is_some());
        assert!(r.final_loss.is_finite());
        assert_eq!(r.seeds.len(), cfg.seed_size);
    }
}
