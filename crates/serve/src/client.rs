//! A small blocking HTTP/1.1 client with keep-alive, used by the
//! integration tests and the `loadgen` bench harness. Not a general
//! client: it speaks exactly the dialect [`crate::server`] serves
//! (`Content-Length` framing, no chunked encoding, no redirects).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header named `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// The client; one TCP connection, transparently re-established when a
/// kept-alive socket turns out to be dead.
pub struct HttpClient {
    addr: SocketAddr,
    reader: Option<BufReader<TcpStream>>,
    timeout: Duration,
    reconnects: usize,
}

impl HttpClient {
    /// Connects eagerly with a 10 s request timeout.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<HttpClient> {
        HttpClient::with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects eagerly with the given read/write timeout.
    pub fn with_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> std::io::Result<HttpClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let mut client = HttpClient {
            addr,
            reader: None,
            timeout,
            reconnects: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Times the client reconnected a dead kept-alive socket.
    pub fn reconnects(&self) -> usize {
        self.reconnects
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// `POST path` with a JSON body and extra request headers (e.g.
    /// `X-Request-Id` for trace correlation).
    pub fn post_with_headers(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        self.request_with_headers("POST", path, headers, Some(body))
    }

    /// Sends one request; on a dead reused connection, reconnects once
    /// and retries (a fresh connection's failure is returned as-is).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`HttpClient::request`] with extra request headers, sent verbatim
    /// after the `Host` header.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        let reused = self.reader.is_some();
        match self.try_request(method, path, headers, body) {
            Ok(resp) => Ok(resp),
            Err(e) if reused => {
                self.reader = None;
                self.reconnects += 1;
                self.try_request(method, path, headers, body)
                    .map_err(|retry| {
                        std::io::Error::new(
                            retry.kind(),
                            format!("{retry} (after retry; first: {e})"),
                        )
                    })
            }
            Err(e) => {
                self.reader = None;
                Err(e)
            }
        }
    }

    fn ensure_connected(&mut self) -> std::io::Result<()> {
        if self.reader.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            self.reader = Some(BufReader::new(stream));
        }
        Ok(())
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        self.ensure_connected()?;
        let reader = self.reader.as_mut().expect("connected");
        let stream = reader.get_mut();
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            head.push_str("Content-Type: application/json\r\n");
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body)?;
        }
        stream.flush()?;
        let resp = read_response(reader)?;
        let close = resp
            .header("connection")
            .map(|v| v.to_ascii_lowercase().contains("close"))
            .unwrap_or(false);
        if close {
            self.reader = None;
        }
        Ok(resp)
    }
}

fn bad(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn read_line<R: BufRead>(r: &mut R) -> std::io::Result<String> {
    let mut line = Vec::new();
    r.read_until(b'\n', &mut line)?;
    if line.last() != Some(&b'\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| bad("non-UTF-8 response header".into()))
}

fn read_response<R: BufRead>(r: &mut R) -> std::io::Result<ClientResponse> {
    let status_line = read_line(r)?;
    let mut parts = status_line.splitn(3, ' ');
    let (version, status) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("bad status line: {status_line:?}")));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| bad(format!("bad status code in {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("bad header: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let resp = ClientResponse {
        status,
        headers,
        body: Vec::new(),
    };
    let mut resp = resp;
    if let Some(len) = resp.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| bad(format!("bad content-length {len:?}")))?;
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        resp.body = body;
    } else {
        r.read_to_end(&mut resp.body)?;
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_with_body() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello";
        let resp = read_response(&mut raw.as_bytes()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("text/plain"));
        assert_eq!(resp.body, b"hello");
    }

    #[test]
    fn parses_a_bodyless_response_to_eof() {
        let raw = "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\n";
        let resp = read_response(&mut raw.as_bytes()).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.body.is_empty());
    }

    #[test]
    fn rejects_garbage_status_lines() {
        assert!(read_response(&mut "SIP/2.0 200 OK\r\n\r\n".as_bytes()).is_err());
        assert!(read_response(&mut "HTTP/1.1 abc OK\r\n\r\n".as_bytes()).is_err());
        assert!(read_response(&mut "".as_bytes()).is_err());
    }
}
