//! A small blocking HTTP/1.1 client with keep-alive, used by the
//! integration tests and the `loadgen` bench harness. Not a general
//! client: it speaks exactly the dialect [`crate::server`] serves
//! (`Content-Length` framing, no chunked encoding, no redirects).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header named `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// The client; one TCP connection, transparently re-established when a
/// kept-alive socket turns out to be dead.
pub struct HttpClient {
    addr: SocketAddr,
    reader: Option<BufReader<TcpStream>>,
    /// Whether the current connection has successfully served at least
    /// one response — only then is it a *pooled keep-alive* connection
    /// whose failure signatures are safe to resend.
    served: bool,
    timeout: Duration,
    reconnects: usize,
}

impl HttpClient {
    /// Connects eagerly with a 10 s request timeout.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<HttpClient> {
        HttpClient::with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects eagerly with the given read/write timeout.
    pub fn with_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> std::io::Result<HttpClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let mut client = HttpClient {
            addr,
            reader: None,
            served: false,
            timeout,
            reconnects: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Times the client reconnected a dead kept-alive socket.
    pub fn reconnects(&self) -> usize {
        self.reconnects
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// `POST path` with a JSON body and extra request headers (e.g.
    /// `X-Request-Id` for trace correlation).
    pub fn post_with_headers(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        self.request_with_headers("POST", path, headers, Some(body))
    }

    /// Sends one request. When a pooled keep-alive connection turns out
    /// to be stale — the server closed it while it sat idle, seen as a
    /// broken-pipe/reset on the first write or an EOF/reset before any
    /// response byte — the client transparently reconnects and resends
    /// once. Failures that arrive *mid-response* (or on a fresh
    /// connection) are surfaced as-is: the request may have executed,
    /// so silently resending could double-execute it or paper over
    /// corruption.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`HttpClient::request`] with extra request headers, sent verbatim
    /// after the `Host` header.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        // A connection is only "pooled" once it has served a response;
        // a freshly-opened socket failing is a real error, not staleness.
        let reused = self.reader.is_some() && self.served;
        match self.try_request(method, path, headers, body) {
            Ok(resp) => Ok(resp),
            Err(fail) if reused && fail.stale => {
                self.reader = None;
                self.reconnects += 1;
                self.try_request(method, path, headers, body)
                    .map_err(|retry| {
                        std::io::Error::new(
                            retry.err.kind(),
                            format!(
                                "{} (after stale-connection resend; first: {})",
                                retry.err, fail.err
                            ),
                        )
                    })
            }
            Err(fail) => {
                self.reader = None;
                Err(fail.err)
            }
        }
    }

    fn ensure_connected(&mut self) -> std::io::Result<()> {
        if self.reader.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            // Small request/response exchanges: Nagle + delayed ACK adds
            // tens of milliseconds per round trip for nothing.
            let _ = stream.set_nodelay(true);
            self.reader = Some(BufReader::new(stream));
            self.served = false;
        }
        Ok(())
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> Result<ClientResponse, TryError> {
        // A connect failure is never a stale-socket signature.
        self.ensure_connected().map_err(TryError::fatal)?;
        let reader = self.reader.as_mut().expect("connected");
        let stream = reader.get_mut();
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            head.push_str("Content-Type: application/json\r\n");
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        // A write into a socket the server already closed surfaces as
        // broken-pipe/reset: the request was never processed, so it is
        // safe to resend on a fresh connection.
        let send = stream
            .write_all(head.as_bytes())
            .and_then(|()| body.map_or(Ok(()), |b| stream.write_all(b)))
            .and_then(|()| stream.flush());
        send.map_err(|e| TryError {
            stale: stale_disconnect_kind(e.kind()),
            err: e,
        })?;
        let resp = read_response(reader)?;
        self.served = true;
        let close = resp
            .header("connection")
            .map(|v| v.to_ascii_lowercase().contains("close"))
            .unwrap_or(false);
        if close {
            self.reader = None;
        }
        Ok(resp)
    }
}

/// One attempt's failure: `stale` marks the two signatures of a pooled
/// keep-alive connection the server closed while it was idle (write-side
/// broken pipe/reset, or clean EOF before any response byte). Only those
/// are safe to transparently resend; anything mid-response is fatal.
#[derive(Debug)]
struct TryError {
    err: std::io::Error,
    stale: bool,
}

impl TryError {
    fn fatal(err: std::io::Error) -> TryError {
        TryError { err, stale: false }
    }
}

impl From<std::io::Error> for TryError {
    fn from(err: std::io::Error) -> TryError {
        TryError::fatal(err)
    }
}

/// Error kinds produced by writing into — or reading the first response
/// byte from — a socket whose peer already closed it.
fn stale_disconnect_kind(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::WriteZero
    )
}

fn bad(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn read_line<R: BufRead>(r: &mut R) -> std::io::Result<String> {
    let mut line = Vec::new();
    r.read_until(b'\n', &mut line)?;
    if line.last() != Some(&b'\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| bad("non-UTF-8 response header".into()))
}

fn read_response<R: BufRead>(r: &mut R) -> Result<ClientResponse, TryError> {
    let status_line = {
        let mut line = Vec::new();
        if let Err(e) = r.read_until(b'\n', &mut line) {
            // A reset with zero response bytes is the other face of the
            // stale keep-alive close (the server dropped the socket with
            // our request bytes unread, turning FIN into RST). Any error
            // after the first response byte is fatal.
            let stale = line.is_empty() && stale_disconnect_kind(e.kind());
            return Err(TryError { err: e, stale });
        }
        if line.is_empty() {
            // Clean EOF with zero response bytes: the keep-alive socket
            // was closed between requests — the stale signature.
            return Err(TryError {
                err: std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the idle connection",
                ),
                stale: true,
            });
        }
        if line.last() != Some(&b'\n') {
            return Err(TryError::fatal(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            )));
        }
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        String::from_utf8(line).map_err(|_| bad("non-UTF-8 response header".into()))?
    };
    let mut parts = status_line.splitn(3, ' ');
    let (version, status) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("bad status line: {status_line:?}")).into());
    }
    let status: u16 = status
        .parse()
        .map_err(|_| bad(format!("bad status code in {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("bad header: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut resp = ClientResponse {
        status,
        headers,
        body: Vec::new(),
    };
    if let Some(len) = resp.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| bad(format!("bad content-length {len:?}")))?;
        let mut body = vec![0u8; len];
        r.read_exact(&mut body).map_err(TryError::fatal)?;
        resp.body = body;
    } else {
        r.read_to_end(&mut resp.body).map_err(TryError::fatal)?;
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_with_body() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello";
        let resp = read_response(&mut raw.as_bytes()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("text/plain"));
        assert_eq!(resp.body, b"hello");
    }

    #[test]
    fn parses_a_bodyless_response_to_eof() {
        let raw = "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\n";
        let resp = read_response(&mut raw.as_bytes()).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.body.is_empty());
    }

    #[test]
    fn rejects_garbage_status_lines() {
        assert!(read_response(&mut "SIP/2.0 200 OK\r\n\r\n".as_bytes()).is_err());
        assert!(read_response(&mut "HTTP/1.1 abc OK\r\n\r\n".as_bytes()).is_err());
        assert!(read_response(&mut "".as_bytes()).is_err());
    }

    #[test]
    fn only_zero_byte_eof_is_classified_stale() {
        // EOF before any response byte: the stale keep-alive signature.
        let err = read_response(&mut "".as_bytes()).unwrap_err();
        assert!(err.stale, "zero-byte EOF is stale");
        // EOF mid-status-line, mid-headers, or mid-body: fatal, because
        // the server did start processing the request.
        let err = read_response(&mut "HTTP/1.1 20".as_bytes()).unwrap_err();
        assert!(!err.stale, "torn status line is not stale");
        let err = read_response(&mut "HTTP/1.1 200 OK\r\nContent-Le".as_bytes()).unwrap_err();
        assert!(!err.stale, "torn headers are not stale");
        let err = read_response(&mut "HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nabc".as_bytes())
            .unwrap_err();
        assert!(!err.stale, "torn body is not stale");
    }

    fn read_head(stream: &mut TcpStream) {
        use std::io::Read;
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            if stream.read(&mut byte).map(|n| n == 0).unwrap_or(true) {
                return;
            }
            buf.push(byte[0]);
        }
    }

    #[test]
    fn resends_once_when_the_pooled_connection_went_stale() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: one keep-alive response, then close the
            // socket while the client still believes it is pooled.
            let (mut s, _) = listener.accept().unwrap();
            read_head(&mut s);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\nConnection: keep-alive\r\n\r\na")
                .unwrap();
            drop(s);
            // Second connection: the transparent resend.
            let (mut s, _) = listener.accept().unwrap();
            read_head(&mut s);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\nConnection: close\r\n\r\nb")
                .unwrap();
        });
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.get("/one").unwrap().body, b"a");
        let resp = client.get("/two").expect("stale socket must be resent");
        assert_eq!(resp.body, b"b");
        assert_eq!(client.reconnects(), 1);
        server.join().unwrap();
    }

    #[test]
    fn a_fresh_connection_is_never_resent() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Accept and immediately close the very first connection:
            // the client's first request fails with the stale signature
            // (clean EOF) but must NOT resend — the socket never served.
            let (s, _) = listener.accept().unwrap();
            drop(s);
        });
        let mut client = HttpClient::connect(addr).unwrap();
        assert!(client.get("/one").is_err(), "fresh-socket EOF is an error");
        assert_eq!(client.reconnects(), 0, "no resend on a fresh connection");
        server.join().unwrap();
    }

    #[test]
    fn mid_response_failure_is_surfaced_not_resent() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_head(&mut s);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\nConnection: keep-alive\r\n\r\na")
                .unwrap();
            // Second request on the same socket: answer with a torn
            // response and close — the request *did* reach the server,
            // so the client must not silently resend it.
            read_head(&mut s);
            s.write_all(b"HTTP/1.1 2").unwrap();
        });
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.get("/one").unwrap().body, b"a");
        assert!(client.get("/two").is_err(), "torn response is an error");
        assert_eq!(client.reconnects(), 0, "no resend on mid-response failure");
        server.join().unwrap();
    }
}
