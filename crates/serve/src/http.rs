//! Minimal HTTP/1.1 message handling over blocking streams.
//!
//! Implements exactly the subset the inference server needs — request
//! parsing with `Content-Length` bodies, response writing, and keep-alive
//! negotiation — on plain `std::io` traits, so the whole layer stays
//! dependency-free and unit-testable against in-memory buffers.

use std::io::{BufRead, Read, Write};

/// Upper bound on a single header line (request line included).
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of header fields per request.
const MAX_HEADERS: usize = 100;

/// The one `Retry-After` value every 503 in the tier advertises — queue
/// shed, loading gate, drain, and router no-backend alike — so clients
/// back off uniformly no matter which layer shed them.
pub const RETRY_AFTER_SECS: &str = "1";

/// Request methods the server distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// Anything else, preserved for the 405 response.
    Other(String),
}

impl Method {
    fn parse(s: &str) -> Method {
        match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            other => Method::Other(other.to_string()),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::Get => f.write_str("GET"),
            Method::Post => f.write_str("POST"),
            Method::Other(s) => f.write_str(s),
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target (path + optional query), exactly as sent.
    pub path: String,
    /// Header fields in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// True for `HTTP/1.1`, false for `HTTP/1.0`.
    pub http11: bool,
}

impl Request {
    /// First header named `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response,
    /// following HTTP/1.1 defaults (`close` opts out) and HTTP/1.0
    /// defaults (`keep-alive` opts in).
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }

    /// The path without its query string.
    pub fn route(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }
}

/// Parse failures; each maps to a response status where one makes sense.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed before sending a full request.
    UnexpectedEof,
    /// Could not parse the request line or a header.
    Malformed(String),
    /// A line, header count, or body exceeded its limit.
    TooLarge(String),
    /// Underlying transport failure (including read timeouts).
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::UnexpectedEof => f.write_str("connection closed mid-request"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(msg) => write!(f, "request too large: {msg}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl HttpError {
    /// The status code a server should answer this parse failure with
    /// (`None` when the connection is past saving).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::UnexpectedEof | HttpError::Io(_) => None,
            HttpError::Malformed(_) => Some(400),
            HttpError::TooLarge(_) => Some(413),
        }
    }
}

/// Reads one line terminated by `\n`, rejecting lines over
/// [`MAX_LINE_BYTES`]; strips the trailing `\r\n` / `\n`.
fn read_line<R: BufRead>(r: &mut R) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut take = (&mut *r).take(MAX_LINE_BYTES as u64 + 1);
    take.read_until(b'\n', &mut line).map_err(HttpError::Io)?;
    if line.is_empty() {
        return Ok(None); // clean EOF
    }
    if line.last() != Some(&b'\n') {
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::TooLarge("header line".into()));
        }
        return Err(HttpError::UnexpectedEof);
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header".into()))
}

/// Reads one request from `r`.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly before
/// sending anything (the normal end of a keep-alive session). Bodies are
/// only read when `Content-Length` is present and at most `max_body`
/// bytes.
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (Method::parse(m), p.to_string(), v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line: {request_line:?}"
            )))
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(HttpError::Malformed(format!("unsupported version {other}"))),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?.ok_or(HttpError::UnexpectedEof)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
        http11,
    };
    if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length: {len:?}")))?;
        if len > max_body {
            return Err(HttpError::TooLarge(format!(
                "body of {len} bytes (limit {max_body})"
            )));
        }
        let mut body = vec![0u8; len];
        std::io::Read::read_exact(r, &mut body).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => HttpError::UnexpectedEof,
            _ => HttpError::Io(e),
        })?;
        req.body = body;
    } else if req.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed(
            "chunked bodies are not supported".into(),
        ));
    }
    Ok(Some(req))
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are added at
    /// write time).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status and `Content-Type`.
    pub fn new(status: u16, content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), content_type.into())],
            body,
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }

    /// An `application/json` response from pre-serialized bytes.
    pub fn json(status: u16, body: Vec<u8>) -> Response {
        Response::new(status, "application/json", body)
    }

    /// A JSON error body `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::with_capacity(message.len() + 13);
        body.push_str("{\"error\":\"");
        for c in message.chars() {
            match c {
                '"' => body.push_str("\\\""),
                '\\' => body.push_str("\\\\"),
                '\n' => body.push_str("\\n"),
                c if (c as u32) < 0x20 => body.push_str(&format!("\\u{:04x}", c as u32)),
                c => body.push(c),
            }
        }
        body.push_str("\"}");
        Response::json(status, body.into_bytes())
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The canonical 503: a JSON error body plus the tier-wide
    /// `Retry-After` ([`RETRY_AFTER_SECS`]). Every shed path must go
    /// through here so clients see one consistent back-off signal.
    pub fn unavailable(message: &str) -> Response {
        Response::error(503, message).with_header("Retry-After", RETRY_AFTER_SECS)
    }

    /// The canonical reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response, appending `Content-Length` and a
    /// `Connection` header matching `keep_alive`.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut raw.as_bytes(), 1024)
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.http11);
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse("POST /v1/seeds HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"k\":3}")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"{\"k\":3}");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn rejects_malformed_request_line_and_version() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1 extra\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_with_413() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::TooLarge(_)));
        assert_eq!(err.status(), Some(413));
    }

    #[test]
    fn truncated_body_is_unexpected_eof() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab").unwrap_err();
        assert!(matches!(err, HttpError::UnexpectedEof));
        assert_eq!(err.status(), None);
    }

    #[test]
    fn route_strips_query() {
        let req = parse("GET /metrics?raw=1 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.route(), "/metrics");
    }

    #[test]
    fn response_writes_status_line_headers_and_length() {
        let mut buf = Vec::new();
        Response::text(200, "ok")
            .with_header("Retry-After", "1")
            .write_to(&mut buf, false)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nok"), "{text}");
    }

    #[test]
    fn error_bodies_are_escaped_json() {
        let resp = Response::error(400, "bad \"seed\"\nvalue");
        assert_eq!(resp.body, br#"{"error":"bad \"seed\"\nvalue"}"#);
        let resp = Response::error(400, "ctl\u{1}char");
        assert_eq!(resp.body, br#"{"error":"ctl\u0001char"}"#);
    }

    #[test]
    fn unavailable_always_carries_the_shared_retry_after() {
        let resp = Response::unavailable("queue full, retry later");
        assert_eq!(resp.status, 503);
        let header = resp
            .headers
            .iter()
            .find(|(n, _)| n == "Retry-After")
            .map(|(_, v)| v.as_str());
        assert_eq!(header, Some(RETRY_AFTER_SECS));
        assert_eq!(resp.body, br#"{"error":"queue full, retry later"}"#);
    }

    #[test]
    fn lowercases_header_names() {
        let req = parse("GET / HTTP/1.1\r\nX-FOO: Bar\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.header("x-foo"), Some("Bar"));
    }
}
