//! Rolling-window SLO tracking for the serve path.
//!
//! The tracker watches two error budgets at once: a latency SLO (windowed
//! p99 against an operator-set target) and an availability SLO (the
//! fraction of recent requests that errored or were shed against an
//! allowed error budget). Both are computed over the *last N requests*,
//! not process lifetime, so a recovered server stops alerting once the
//! bad window ages out.
//!
//! Everything is published three ways from one source of truth:
//! `GET /slo` renders a deterministic JSON snapshot, the metrics
//! registry exports `serve.slo.*` gauges for Prometheus scrapes, and
//! every [`WATCH_FEED_EVERY`]-th request feeds the global
//! [`privim_obs::watch`] rule engine so burn-rate alert rules fire
//! mid-flight. When no tracker is installed the per-request cost is one
//! `OnceLock` load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use privim_obs::{Histogram, DEFAULT_BUCKETS};

/// Requests between watchdog feeds (power of two for a cheap mask).
pub const WATCH_FEED_EVERY: u64 = 32;

/// Operator-facing SLO targets.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Windowed p99 latency target, in milliseconds.
    pub target_p99_ms: f64,
    /// Window size in requests (latency quantiles and rates).
    pub window: usize,
    /// Allowed fraction of windowed requests that may error or shed
    /// before the error budget counts as fully burned.
    pub error_budget: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target_p99_ms: 250.0,
            window: 512,
            error_budget: 0.01,
        }
    }
}

/// Outcome codes in the rolling window.
const OUTCOME_OK: u8 = 0;
const OUTCOME_ERROR: u8 = 1;
const OUTCOME_SHED: u8 = 2;

struct OutcomeRing {
    codes: Vec<u8>,
    next: usize,
    filled: usize,
}

impl OutcomeRing {
    fn push(&mut self, code: u8) {
        if self.codes.len() < self.codes.capacity() {
            self.codes.push(code);
        } else {
            self.codes[self.next] = code;
        }
        self.next = (self.next + 1) % self.codes.capacity();
        self.filled = (self.filled + 1).min(self.codes.capacity());
    }

    fn rate_of(&self, code: u8) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        let hits = self.codes.iter().filter(|&&c| c == code).count();
        hits as f64 / self.filled as f64
    }
}

/// Point-in-time view of the SLO state (all windowed values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSnapshot {
    /// Configured p99 target (ms).
    pub target_p99_ms: f64,
    /// Configured window (requests).
    pub window: usize,
    /// Configured error budget (fraction).
    pub error_budget: f64,
    /// Requests currently in the window (served + shed).
    pub requests_windowed: usize,
    /// Windowed p99 latency in ms (NaN until a request was served).
    pub p99_ms: f64,
    /// Windowed p999 latency in ms (NaN until a request was served).
    pub p999_ms: f64,
    /// Fraction of windowed requests answered with 5xx.
    pub error_rate: f64,
    /// Fraction of windowed arrivals shed (queue full / expired).
    pub shed_rate: f64,
    /// `(error_rate + shed_rate) / error_budget`: 1.0 means the whole
    /// windowed budget is burned.
    pub budget_burn: f64,
    /// `p99_ms <= target_p99_ms` (true while the window is empty).
    pub latency_ok: bool,
}

/// The tracker: a windowed latency histogram plus an outcome ring.
pub struct SloTracker {
    config: SloConfig,
    latency: Histogram,
    outcomes: Mutex<OutcomeRing>,
    total: AtomicU64,
}

impl SloTracker {
    /// A tracker over `config`'s window. Panics on a zero window or an
    /// error budget outside `(0, 1)`.
    pub fn new(config: SloConfig) -> SloTracker {
        assert!(config.window > 0, "SLO window must be positive");
        assert!(
            config.error_budget > 0.0 && config.error_budget < 1.0,
            "SLO error budget must be in (0, 1)"
        );
        SloTracker {
            config,
            latency: Histogram::with_buckets_windowed(&DEFAULT_BUCKETS, config.window),
            outcomes: Mutex::new(OutcomeRing {
                codes: Vec::with_capacity(config.window),
                next: 0,
                filled: 0,
            }),
            total: AtomicU64::new(0),
        }
    }

    /// The configured targets.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Records one served request (any response written to the client).
    pub fn record_request(&self, latency_secs: f64, status: u16) {
        self.latency.record(latency_secs);
        let code = if status >= 500 {
            OUTCOME_ERROR
        } else {
            OUTCOME_OK
        };
        self.push_outcome(code);
    }

    /// Records one shed arrival (queue full, expired in queue, or
    /// draining): it consumed availability budget without being served,
    /// so it enters the window with no latency sample.
    pub fn record_shed(&self) {
        self.push_outcome(OUTCOME_SHED);
    }

    fn push_outcome(&self, code: u8) {
        {
            let mut ring = self
                .outcomes
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            ring.push(code);
        }
        let n = self.total.fetch_add(1, Ordering::Relaxed) + 1;
        if n % WATCH_FEED_EVERY == 0 {
            self.publish(n);
        }
    }

    /// Total requests (served + shed) ever recorded.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The current windowed snapshot.
    pub fn snapshot(&self) -> SloSnapshot {
        let (error_rate, shed_rate, filled) = {
            let ring = self
                .outcomes
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            (
                ring.rate_of(OUTCOME_ERROR),
                ring.rate_of(OUTCOME_SHED),
                ring.filled,
            )
        };
        let p99_ms = self.latency.window_quantile(0.99) * 1e3;
        let p999_ms = self.latency.window_quantile(0.999) * 1e3;
        SloSnapshot {
            target_p99_ms: self.config.target_p99_ms,
            window: self.config.window,
            error_budget: self.config.error_budget,
            requests_windowed: filled,
            p99_ms,
            p999_ms,
            error_rate,
            shed_rate,
            budget_burn: (error_rate + shed_rate) / self.config.error_budget,
            latency_ok: !(p99_ms > self.config.target_p99_ms),
        }
    }

    /// Publishes the snapshot as `serve.slo.*` gauges (Prometheus) and
    /// feeds the watchdog rule engine, using `tick` (the running request
    /// count) as the deterministic time axis.
    pub fn publish(&self, tick: u64) {
        let snap = self.snapshot();
        privim_obs::gauge("serve.slo.target_p99_ms").set(snap.target_p99_ms);
        if snap.p99_ms.is_finite() {
            privim_obs::gauge("serve.slo.p99_ms").set(snap.p99_ms);
            privim_obs::gauge("serve.slo.p999_ms").set(snap.p999_ms);
            privim_obs::watch::observe("serve.slo.p99_ms", tick, snap.p99_ms);
        }
        privim_obs::gauge("serve.slo.error_rate").set(snap.error_rate);
        privim_obs::gauge("serve.slo.shed_rate").set(snap.shed_rate);
        privim_obs::gauge("serve.slo.budget_burn").set(snap.budget_burn);
        privim_obs::watch::observe("serve.slo.budget_burn", tick, snap.budget_burn);
    }

    /// Deterministic JSON for `GET /slo` (hand-rolled: fixed key order,
    /// no serde at runtime). NaN quantiles render as `null`.
    pub fn render_json(&self) -> String {
        let s = self.snapshot();
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        format!(
            concat!(
                "{{\"target_p99_ms\":{},\"window\":{},\"error_budget\":{},",
                "\"requests_windowed\":{},\"p99_ms\":{},\"p999_ms\":{},",
                "\"error_rate\":{},\"shed_rate\":{},\"budget_burn\":{},",
                "\"latency_ok\":{}}}"
            ),
            num(s.target_p99_ms),
            s.window,
            num(s.error_budget),
            s.requests_windowed,
            num(s.p99_ms),
            num(s.p999_ms),
            num(s.error_rate),
            num(s.shed_rate),
            num(s.budget_burn),
            s.latency_ok,
        )
    }
}

static SLO: OnceLock<Arc<SloTracker>> = OnceLock::new();

/// Installs the process-global tracker (first install wins). Returns
/// `false` when one was already installed.
pub fn install(tracker: Arc<SloTracker>) -> bool {
    SLO.set(tracker).is_ok()
}

/// The installed tracker, if any. One atomic load when disabled.
pub fn global() -> Option<&'static Arc<SloTracker>> {
    SLO.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(window: usize, budget: f64) -> SloTracker {
        SloTracker::new(SloConfig {
            target_p99_ms: 100.0,
            window,
            error_budget: budget,
        })
    }

    #[test]
    fn quantiles_and_rates_are_windowed() {
        let t = tracker(8, 0.25);
        // Fill the window with slow errors, then replace it entirely with
        // fast successes: the snapshot must forget the bad epoch.
        for _ in 0..8 {
            t.record_request(1.0, 500);
        }
        let bad = t.snapshot();
        assert_eq!(bad.requests_windowed, 8);
        assert_eq!(bad.error_rate, 1.0);
        assert!(bad.p99_ms >= 999.0, "{bad:?}");
        assert!(!bad.latency_ok);
        assert_eq!(bad.budget_burn, 4.0, "1.0 error rate / 0.25 budget");
        for _ in 0..8 {
            t.record_request(0.010, 200);
        }
        let good = t.snapshot();
        assert_eq!(good.error_rate, 0.0);
        assert_eq!(good.budget_burn, 0.0);
        assert!((good.p99_ms - 10.0).abs() < 1e-9, "{good:?}");
        assert!(good.latency_ok);
    }

    #[test]
    fn sheds_burn_the_availability_budget_without_latency_samples() {
        let t = tracker(4, 0.5);
        t.record_request(0.001, 200);
        t.record_shed();
        t.record_shed();
        t.record_request(0.001, 200);
        let s = t.snapshot();
        assert_eq!(s.requests_windowed, 4);
        assert_eq!(s.shed_rate, 0.5);
        assert_eq!(s.error_rate, 0.0);
        assert_eq!(s.budget_burn, 1.0);
        assert_eq!(t.total(), 4);
    }

    #[test]
    fn empty_tracker_renders_null_quantiles() {
        let t = tracker(4, 0.01);
        let s = t.snapshot();
        assert!(s.p99_ms.is_nan());
        assert!(s.latency_ok, "no data is not a latency violation");
        let json = t.render_json();
        assert!(json.contains("\"p99_ms\":null"), "{json}");
        assert!(json.contains("\"latency_ok\":true"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    }

    #[test]
    fn render_json_is_deterministic() {
        let t = tracker(8, 0.125);
        for i in 0..6 {
            t.record_request(0.002 * (i + 1) as f64, 200);
        }
        assert_eq!(t.render_json(), t.render_json());
        assert!(t.render_json().contains("\"window\":8"));
    }
}
