//! A deterministic TCP fault-injection proxy for exercising the serving
//! tier's retry, breaker, and hedge paths on the wire.
//!
//! PR 4's [`privim_obs::FaultPlan`] injects faults *inside* the process
//! at named fault points; this proxy extends the same discipline to the
//! network: every accepted connection draws its fault verdict from
//! splitmix64 of `(seed, connection index)` — the same derivation
//! grammar `FaultPlan::from_seed` uses for fire points — so a chaos run
//! at a fixed seed replays the identical fault sequence every time.
//!
//! ```text
//!   client ──▶ chaos proxy ──▶ upstream replica
//!                  │
//!                  └─ per-connection verdict: pass through, drop the
//!                     request after N bytes, delay the response, cut
//!                     the response short, flip a status-line byte, or
//!                     reset the connection outright
//! ```
//!
//! Faults are chosen so that *every* injected failure is visible to the
//! HTTP client as a transport or framing error — never as a silently
//! wrong body. The byte flip targets the response status line (the
//! first 8 bytes, `HTTP/1.1`), which cannot survive the client's
//! version check; truncation and request drops cut inside the head,
//! which cannot parse. That is what lets the chaos CI gate demand
//! byte-identical responses under ≥10 % fault rates: a faulted attempt
//! always fails loudly and is retried, and only clean attempts produce
//! bytes the client ever sees.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use privim_obs::fault::splitmix64;

/// Read/write timeout on proxied sockets so pump threads always exit.
const PUMP_TIMEOUT: Duration = Duration::from_secs(30);

/// One connection's fault verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Forward faithfully in both directions.
    None,
    /// Forward only the first `n` request bytes upstream, then cut the
    /// connection (`n` < any request head, so the request never parses).
    DropRequestAfter(u64),
    /// Sleep this many milliseconds before forwarding the first response
    /// bytes (tail-latency injection; the bytes themselves are intact).
    DelayResponseMs(u64),
    /// Forward only the first `n` response bytes, then cut (torn head).
    TruncateResponse(u64),
    /// XOR the response byte at this offset with `0xFF`. Offsets are
    /// confined to `0..8` — inside the `HTTP/1.1` version token — so the
    /// corruption always fails the client's parse instead of reaching
    /// an application body.
    FlipStatusByte(u64),
    /// Accept, wait for the first request byte, then reset: the socket
    /// is dropped with unread data pending, which makes the kernel send
    /// RST rather than FIN.
    Rst,
}

impl WireFault {
    /// Metric/label name for this fault kind.
    pub fn label(self) -> &'static str {
        match self {
            WireFault::None => "none",
            WireFault::DropRequestAfter(_) => "drop_request",
            WireFault::DelayResponseMs(_) => "delay_response",
            WireFault::TruncateResponse(_) => "truncate_response",
            WireFault::FlipStatusByte(_) => "flip_status_byte",
            WireFault::Rst => "rst",
        }
    }
}

/// The deterministic verdict for connection `conn_index` under `seed`:
/// a uniform draw in `[0, 1)` from splitmix64 decides *whether* to
/// fault (against `fault_rate`), a second draw picks the kind, a third
/// its parameter. Identical `(seed, conn_index, fault_rate)` always
/// yields the identical fault — the property the chaos CI gate replays.
pub fn fault_for_conn(seed: u64, conn_index: u64, fault_rate: f64) -> WireFault {
    let h = splitmix64(seed ^ splitmix64(conn_index.wrapping_add(1)));
    // Top 53 bits → uniform f64 in [0, 1).
    let roll = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    if roll >= fault_rate {
        return WireFault::None;
    }
    let kind = splitmix64(h ^ 0xC4A0_5);
    let param = splitmix64(kind);
    match kind % 5 {
        // ≤ 32 bytes: strictly inside any request head (the request
        // line alone is longer), so the upstream never sees a full
        // request and the client always sees a hard failure.
        0 => WireFault::DropRequestAfter(1 + param % 32),
        1 => WireFault::DelayResponseMs(5 + param % 45),
        // ≤ 32 bytes: strictly inside any response head.
        2 => WireFault::TruncateResponse(1 + param % 32),
        3 => WireFault::FlipStatusByte(param % 8),
        _ => WireFault::Rst,
    }
}

/// Proxy configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Listen address (port 0 picks a free port).
    pub listen: String,
    /// Upstream replica address.
    pub upstream: String,
    /// Fault-plan seed.
    pub seed: u64,
    /// Fraction of connections faulted, in `[0, 1]`.
    pub fault_rate: f64,
}

/// A running proxy; connection pumps are detached threads bounded by
/// socket timeouts, the acceptor joins on [`ChaosProxy::shutdown`].
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: std::thread::JoinHandle<()>,
}

impl ChaosProxy {
    /// Binds `config.listen` and starts proxying to `config.upstream`.
    pub fn start(config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let upstream = crate::server::resolve_addr(&config.upstream)?;
        let (seed, fault_rate) = (config.seed, config.fault_rate);
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("chaos-acceptor".into())
                .spawn(move || accept_loop(listener, upstream, seed, fault_rate, &stop))?
        };
        privim_obs::info!(
            "chaos",
            "proxy_listening",
            addr = addr.to_string(),
            upstream = upstream.to_string(),
            seed = seed,
            fault_rate = fault_rate,
        );
        Ok(ChaosProxy {
            addr,
            stop,
            acceptor,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the acceptor; in-flight pumps drain on
    /// their own socket timeouts.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.acceptor.join();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    seed: u64,
    fault_rate: f64,
    stop: &AtomicBool,
) {
    let conn_index = AtomicU64::new(0);
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _peer)) => {
                let index = conn_index.fetch_add(1, Ordering::Relaxed);
                let fault = fault_for_conn(seed, index, fault_rate);
                privim_obs::counter("chaos.connections").add(1);
                if fault != WireFault::None {
                    privim_obs::counter("chaos.faults").add(1);
                    privim_obs::counter(&format!("chaos.fault.{}", fault.label())).add(1);
                    if privim_obs::span_export_armed() {
                        // Stamp the injected fault into the span feed so
                        // tier traces show *why* an attempt failed. The
                        // proxy cannot see which request rides the
                        // connection (it faults bytes, not HTTP), so the
                        // span roots its own deterministic trace keyed
                        // by (seed, connection index).
                        let ctx = privim_obs::TraceContext::from_request_id(&format!(
                            "chaos-{seed}-{index}"
                        ));
                        privim_obs::export_span(privim_obs::SpanRecord {
                            process: String::new(),
                            name: "chaos.fault".into(),
                            trace_id: ctx.trace_id,
                            span_id: ctx.span_id,
                            parent_span_id: None,
                            start_us: privim_obs::now_micros(),
                            dur_us: 0,
                            annotations: vec![
                                ("fault".to_string(), fault.label().to_string()),
                                ("conn".to_string(), index.to_string()),
                            ],
                        });
                    }
                }
                privim_obs::debug!("chaos", "connection", index = index, fault = fault.label(),);
                let _ = std::thread::Builder::new()
                    .name(format!("chaos-conn-{index}"))
                    .spawn(move || handle_conn(client, upstream, fault));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Per-direction pump options derived from the connection's fault.
#[derive(Debug, Clone, Copy, Default)]
struct PumpFault {
    /// Stop after forwarding this many bytes (then cut the connection).
    limit: Option<u64>,
    /// Sleep before forwarding the first chunk.
    delay: Option<Duration>,
    /// XOR the byte at this stream offset with `0xFF`.
    flip: Option<u64>,
}

fn handle_conn(client: TcpStream, upstream_addr: SocketAddr, fault: WireFault) {
    if fault == WireFault::Rst {
        // Wait for request bytes, then drop the socket with them unread:
        // the pending data turns the close into an RST.
        let _ = client.set_read_timeout(Some(Duration::from_millis(500)));
        let mut byte = [0u8; 1];
        let _ = client.peek(&mut byte);
        return;
    }
    let Ok(upstream) = TcpStream::connect_timeout(&upstream_addr, Duration::from_secs(5)) else {
        return;
    };
    for stream in [&client, &upstream] {
        let _ = stream.set_read_timeout(Some(PUMP_TIMEOUT));
        let _ = stream.set_write_timeout(Some(PUMP_TIMEOUT));
        // Forward each chunk immediately; Nagle would stack its delay on
        // top of every proxied hop.
        let _ = stream.set_nodelay(true);
    }
    let (up_fault, down_fault) = match fault {
        WireFault::DropRequestAfter(n) => (
            PumpFault {
                limit: Some(n),
                ..PumpFault::default()
            },
            PumpFault::default(),
        ),
        WireFault::DelayResponseMs(ms) => (
            PumpFault::default(),
            PumpFault {
                delay: Some(Duration::from_millis(ms)),
                ..PumpFault::default()
            },
        ),
        WireFault::TruncateResponse(n) => (
            PumpFault::default(),
            PumpFault {
                limit: Some(n),
                ..PumpFault::default()
            },
        ),
        WireFault::FlipStatusByte(offset) => (
            PumpFault::default(),
            PumpFault {
                flip: Some(offset),
                ..PumpFault::default()
            },
        ),
        WireFault::None | WireFault::Rst => (PumpFault::default(), PumpFault::default()),
    };
    let down = {
        let (Ok(upstream), Ok(client)) = (upstream.try_clone(), client.try_clone()) else {
            return;
        };
        std::thread::Builder::new()
            .name("chaos-pump-down".into())
            .spawn(move || pump(upstream, client, down_fault))
    };
    pump(client, upstream, up_fault);
    if let Ok(handle) = down {
        let _ = handle.join();
    }
}

/// Copies `from` → `to` applying `fault`; on EOF, error, or an exhausted
/// byte budget, cuts both sockets so the opposite pump unblocks too.
fn pump(mut from: TcpStream, mut to: TcpStream, fault: PumpFault) {
    let mut forwarded: u64 = 0;
    let mut first = true;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if first {
            if let Some(delay) = fault.delay {
                std::thread::sleep(delay);
            }
            first = false;
        }
        if let Some(offset) = fault.flip {
            if offset >= forwarded && offset < forwarded + n as u64 {
                buf[(offset - forwarded) as usize] ^= 0xFF;
            }
        }
        let take = match fault.limit {
            Some(limit) => ((limit - forwarded).min(n as u64)) as usize,
            None => n,
        };
        if take > 0 && to.write_all(&buf[..take]).is_err() {
            break;
        }
        forwarded += take as u64;
        if fault.limit.is_some_and(|limit| forwarded >= limit) {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::http::{Request, Response};
    use crate::server::{Handler, Server, ServerConfig};

    #[test]
    fn fault_verdicts_are_deterministic_and_rate_bounded() {
        for conn in 0..50 {
            assert_eq!(
                fault_for_conn(42, conn, 0.3),
                fault_for_conn(42, conn, 0.3),
                "same (seed, conn, rate) must agree"
            );
            assert_eq!(fault_for_conn(42, conn, 0.0), WireFault::None);
            assert_ne!(fault_for_conn(42, conn, 1.0), WireFault::None);
        }
        let faulted = (0..400)
            .filter(|&c| fault_for_conn(7, c, 0.25) != WireFault::None)
            .count();
        assert!(
            (60..=140).contains(&faulted),
            "≈25 % of 400 connections should fault, got {faulted}"
        );
        // All five kinds appear at full rate.
        let kinds: std::collections::BTreeSet<&'static str> = (0..200)
            .map(|c| fault_for_conn(99, c, 1.0).label())
            .collect();
        assert_eq!(kinds.len(), 5, "{kinds:?}");
    }

    #[test]
    fn fault_parameters_stay_inside_head_bounds() {
        for conn in 0..500 {
            match fault_for_conn(3, conn, 1.0) {
                WireFault::DropRequestAfter(n) | WireFault::TruncateResponse(n) => {
                    assert!((1..=32).contains(&n), "cut at {n} could leak a full head")
                }
                WireFault::FlipStatusByte(off) => {
                    assert!(off < 8, "flip at {off} could escape the version token")
                }
                WireFault::DelayResponseMs(ms) => assert!((5..=50).contains(&ms)),
                WireFault::None | WireFault::Rst => {}
            }
        }
    }

    fn echo_server() -> Server {
        let handler: Arc<dyn Handler> = Arc::new(|req: &Request| match req.route() {
            "/echo" => Response::json(200, req.body.clone()),
            _ => Response::text(200, "pong"),
        });
        Server::start(
            ServerConfig {
                workers: 2,
                queue_depth: 16,
                ..ServerConfig::default()
            },
            handler,
        )
        .expect("bind upstream")
    }

    #[test]
    fn passthrough_is_byte_identical_to_a_direct_connection() {
        let upstream = echo_server();
        let proxy = ChaosProxy::start(ChaosConfig {
            listen: "127.0.0.1:0".into(),
            upstream: upstream.local_addr().to_string(),
            seed: 1,
            fault_rate: 0.0,
        })
        .unwrap();
        let mut direct = HttpClient::connect(upstream.local_addr()).unwrap();
        let mut proxied = HttpClient::connect(proxy.local_addr()).unwrap();
        for i in 0..5 {
            let body = format!("{{\"i\":{i}}}");
            let d = direct.post("/echo", body.as_bytes()).unwrap();
            let p = proxied.post("/echo", body.as_bytes()).unwrap();
            assert_eq!(d.status, p.status);
            assert_eq!(d.body, p.body, "proxied bytes must match direct bytes");
        }
        // Close the kept-alive sockets so the upstream drains promptly.
        drop(direct);
        drop(proxied);
        proxy.shutdown();
        upstream.shutdown();
    }

    /// One raw request/response exchange: exactly one proxy connection,
    /// so the connection index lines up 1:1 with the request (an
    /// `HttpClient` would blur that with its stale-socket resend).
    fn raw_exchange(addr: SocketAddr) -> std::io::Result<Vec<u8>> {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(2)))?;
        s.set_write_timeout(Some(Duration::from_secs(2)))?;
        s.write_all(
            b"POST /echo HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n\
              Content-Length: 7\r\nConnection: close\r\n\r\n{\"i\":1}",
        )?;
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match s.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if buf.is_empty() => return Err(e),
                Err(_) => break,
            }
        }
        Ok(buf)
    }

    #[test]
    fn every_injected_fault_fails_loudly_except_delay() {
        let upstream = echo_server();
        let proxy = ChaosProxy::start(ChaosConfig {
            listen: "127.0.0.1:0".into(),
            upstream: upstream.local_addr().to_string(),
            seed: 1234,
            fault_rate: 1.0,
        })
        .unwrap();
        let complete = |b: &[u8]| b.starts_with(b"HTTP/1.1 200") && b.ends_with(b"{\"i\":1}");
        let mut hard_faults = 0;
        for conn in 0..12u64 {
            let expected = fault_for_conn(1234, conn, 1.0);
            let outcome = raw_exchange(proxy.local_addr());
            match expected {
                WireFault::None => unreachable!("rate 1.0 faults every connection"),
                WireFault::DelayResponseMs(_) => {
                    let bytes = outcome.unwrap_or_else(|e| {
                        panic!("conn {conn}: delay must still answer, got {e}")
                    });
                    assert!(complete(&bytes), "delayed bytes must be intact");
                }
                WireFault::TruncateResponse(n) => {
                    hard_faults += 1;
                    if let Ok(bytes) = outcome {
                        assert!(
                            bytes.len() as u64 <= n,
                            "conn {conn}: truncation must cut inside the head"
                        );
                    }
                }
                WireFault::FlipStatusByte(_) => {
                    hard_faults += 1;
                    if let Ok(bytes) = outcome {
                        assert!(
                            !bytes.starts_with(b"HTTP/1.1 "),
                            "conn {conn}: the flip must land in the version token"
                        );
                    }
                }
                WireFault::DropRequestAfter(_) | WireFault::Rst => {
                    hard_faults += 1;
                    if let Ok(bytes) = outcome {
                        assert!(
                            bytes.is_empty(),
                            "conn {conn}: a dropped request must never be answered"
                        );
                    }
                }
            }
        }
        assert!(hard_faults > 0, "seed 1234 should inject hard faults");
        // The upstream stays healthy throughout: a clean client works.
        let mut direct = HttpClient::connect(upstream.local_addr()).unwrap();
        assert_eq!(direct.post("/echo", b"{}").unwrap().status, 200);
        drop(direct);
        proxy.shutdown();
        upstream.shutdown();
    }
}
