//! Request/response bodies for the versioned JSON API.
//!
//! All responses are serialized with `serde_json` using default field
//! ordering, so a given struct value always produces the same bytes —
//! the determinism the `/v1/seeds` contract (same checkpoint, graph, and
//! request seed ⇒ byte-identical body) relies on.

use serde::{Deserialize, Serialize};

fn default_trials() -> usize {
    1_000
}

fn default_steps() -> Option<usize> {
    Some(1)
}

/// `POST /v1/seeds` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SeedsRequest {
    /// Seed-set size to return.
    pub k: usize,
    /// Request seed, echoed back; selection itself is deterministic (the
    /// released checkpoint fixes the scores), the seed exists so callers
    /// can correlate requests with responses and replay them.
    #[serde(default)]
    pub seed: u64,
}

/// `POST /v1/seeds` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeedsResponse {
    /// The top-`k` node ids by model score (ties break by id).
    pub seeds: Vec<u32>,
    /// The selected nodes' scores, same order as `seeds`.
    pub scores: Vec<f64>,
    /// Effective `k` (clamped to the graph size).
    pub k: usize,
    /// The request seed, echoed.
    pub seed: u64,
    /// Model architecture the checkpoint declared.
    pub model: String,
}

/// `POST /v1/spread` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SpreadRequest {
    /// Seed set to evaluate.
    pub seeds: Vec<u32>,
    /// Monte-Carlo trials (clamped to the server's `--max-trials`).
    #[serde(default = "default_trials")]
    pub trials: usize,
    /// RNG seed; the estimate is deterministic given `(seeds, trials,
    /// steps, seed)` regardless of server thread count.
    #[serde(default)]
    pub seed: u64,
    /// Diffusion horizon: omitted ⇒ the paper's one step; explicit
    /// `null` ⇒ run to quiescence.
    #[serde(default = "default_steps")]
    pub steps: Option<usize>,
}

/// `POST /v1/spread` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpreadResponse {
    /// Estimated expected spread.
    pub spread: f64,
    /// Trials actually run (after clamping).
    pub trials: usize,
    /// The request seed, echoed.
    pub seed: u64,
    /// Number of nodes in the served graph (spread's upper bound).
    pub n_nodes: usize,
}

/// `GET /version` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VersionResponse {
    /// Server crate name.
    pub name: String,
    /// Server crate version.
    pub version: String,
    /// Model architecture being served.
    pub model: String,
    /// Stable hex digest of the served checkpoint
    /// (`Checkpoint::digest_hex`): lets callers key caches and audit
    /// artifacts on exactly which weights are live.
    pub checkpoint_digest: String,
    /// Nodes in the served graph.
    pub graph_nodes: usize,
    /// Edges in the served graph.
    pub graph_edges: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_request_defaults_seed_to_zero() {
        let req: SeedsRequest = serde_json::from_str(r#"{"k": 5}"#).unwrap();
        assert_eq!(req.k, 5);
        assert_eq!(req.seed, 0);
    }

    #[test]
    fn spread_request_defaults() {
        let req: SpreadRequest = serde_json::from_str(r#"{"seeds": [1, 2]}"#).unwrap();
        assert_eq!(req.trials, 1_000);
        assert_eq!(req.seed, 0);
        assert_eq!(
            req.steps,
            Some(1),
            "omitted steps means the paper's one step"
        );
        let req: SpreadRequest = serde_json::from_str(r#"{"seeds": [1], "steps": null}"#).unwrap();
        assert_eq!(req.steps, None, "explicit null means run to quiescence");
    }

    #[test]
    fn unknown_fields_are_rejected() {
        assert!(serde_json::from_str::<SeedsRequest>(r#"{"k": 5, "bogus": 1}"#).is_err());
        assert!(serde_json::from_str::<SpreadRequest>(r#"{"seeds": [], "x": 0}"#).is_err());
    }

    #[test]
    fn responses_serialize_deterministically() {
        let resp = SeedsResponse {
            seeds: vec![3, 1],
            scores: vec![0.75, 0.5],
            k: 2,
            seed: 9,
            model: "GRAT".into(),
        };
        let a = serde_json::to_vec(&resp).unwrap();
        let b = serde_json::to_vec(&resp).unwrap();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(text.starts_with(r#"{"seeds":[3,1]"#), "{text}");
    }
}
