//! The threaded HTTP server: acceptor, bounded connection queue, worker
//! pool, per-request deadlines, and graceful drain.
//!
//! Architecture (one box per thread):
//!
//! ```text
//!   acceptor ──► Bounded<Conn> ──► worker 0 ─┐
//!      │              │       ╲─► worker 1 ─┼─► Handler::handle
//!      │              │        ╲─ worker N ─┘
//!      └─ queue full: 503 + Retry-After, close
//! ```
//!
//! Shutdown sequence ([`ServerHandle::shutdown`]): set the stop flag →
//! the acceptor stops accepting and closes the queue → workers drain the
//! connections already accepted (answering their in-flight requests with
//! `Connection: close`, closing *idle* keep-alive connections at once) →
//! threads are joined → telemetry is flushed. Nothing that was accepted
//! is ever dropped mid-request.

use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::http::{read_request, Method, Request, Response};
use crate::queue::Bounded;

/// Slice length for the between-requests idle poll: the longest an idle
/// keep-alive connection can delay a drain.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Produces a response for each parsed request. Implementations must be
/// shareable across worker threads.
pub trait Handler: Send + Sync + 'static {
    /// Handles one request.
    fn handle(&self, req: &Request) -> Response;

    /// A low-cardinality label for per-route metrics (histogram names
    /// embed it, so keep the set finite).
    fn route_label(&self, req: &Request) -> &'static str {
        let _ = req;
        "other"
    }

    /// Readiness probe backing `GET /readyz` (the server answers that
    /// route itself): `false` keeps load balancers away while state is
    /// still loading. Liveness (`/healthz`) is the handler's own business.
    fn ready(&self) -> bool {
        true
    }

    /// Called once per connection with the time it spent on the accept
    /// queue before a worker picked it up, so a handler can attribute
    /// queueing in its own metrics (the router's `router.hop.*` series).
    /// Default: ignored.
    fn on_queue_wait(&self, wait: Duration) {
        let _ = wait;
    }
}

/// Wraps a handler whose state loads after the socket is already bound:
/// until [`ReadyGate::install`] provides the real handler, every route
/// answers `503 + Retry-After` and `GET /readyz` reports not-ready —
/// orchestrators can route traffic the moment the flip happens without
/// ever seeing a connection refused.
///
/// The installed handler can later be replaced atomically with
/// [`ReadyGate::swap`] (hot reload): each request clones the current
/// `Arc` once at dispatch, so requests in flight when a swap lands keep
/// the handler they started with and drain against it — a swap never
/// drops or reroutes an in-flight request.
pub struct ReadyGate {
    inner: std::sync::RwLock<Option<Arc<dyn Handler>>>,
    /// Completed swaps (not counting the initial install).
    swaps: std::sync::atomic::AtomicU64,
}

impl ReadyGate {
    /// An empty gate; serve it immediately, install the handler later.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<ReadyGate> {
        Arc::new(ReadyGate {
            inner: std::sync::RwLock::new(None),
            swaps: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Installs the loaded handler, flipping `/readyz` to 200. Later
    /// installs are ignored (first one wins); use [`ReadyGate::swap`] to
    /// replace a live handler.
    pub fn install(&self, handler: Arc<dyn Handler>) {
        let mut slot = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(handler);
            privim_obs::info!("serve", "ready", gated = true);
        }
    }

    /// Replaces the live handler (installing if the gate was still
    /// empty) and returns the previous one, which finishes serving any
    /// requests that already dispatched to it before being dropped.
    pub fn swap(&self, handler: Arc<dyn Handler>) -> Option<Arc<dyn Handler>> {
        let old = {
            let mut slot = self.inner.write().unwrap_or_else(|e| e.into_inner());
            slot.replace(handler)
        };
        if old.is_some() {
            let n = self.swaps.fetch_add(1, Ordering::SeqCst) + 1;
            privim_obs::counter("serve.hot_swaps").add(1);
            privim_obs::info!("serve", "hot_swap", swaps = n);
        } else {
            privim_obs::info!("serve", "ready", gated = true);
        }
        old
    }

    /// Completed [`ReadyGate::swap`]s over a live handler.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::SeqCst)
    }

    fn current(&self) -> Option<Arc<dyn Handler>> {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Handler for ReadyGate {
    fn handle(&self, req: &Request) -> Response {
        match self.current() {
            Some(h) => h.handle(req),
            None => Response::unavailable("still loading"),
        }
    }

    fn route_label(&self, req: &Request) -> &'static str {
        match self.current() {
            Some(h) => h.route_label(req),
            None => "other",
        }
    }

    fn ready(&self) -> bool {
        self.current().is_some_and(|h| h.ready())
    }

    fn on_queue_wait(&self, wait: Duration) {
        if let Some(h) = self.current() {
            h.on_queue_wait(wait);
        }
    }
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded connection-queue depth; a full queue sheds load with 503.
    pub queue_depth: usize,
    /// Per-request deadline: socket read/write timeout, and the maximum
    /// time a connection may wait in the queue before its first request
    /// is answered with 503 instead of being served stale.
    pub deadline: Duration,
    /// Maximum accepted request-body size in bytes.
    pub max_body: usize,
    /// Requests slower than this are logged at `Warn` with their route
    /// and request id (forensics for tail latency).
    pub slow_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(10),
            max_body: 1 << 20,
            slow_threshold: Duration::from_secs(1),
        }
    }
}

/// A connection waiting for a worker, stamped with its accept time so
/// queue-aged requests can be expired against the deadline.
struct Conn {
    stream: TcpStream,
    accepted_at: Instant,
}

/// A running server; dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts ungracefully (threads are detached).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<Bounded<Conn>>,
    acceptor: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting. Worker and acceptor threads run until
    /// [`ServerHandle::shutdown`]; the returned server is ready as soon
    /// as this returns.
    pub fn start(config: ServerConfig, handler: Arc<dyn Handler>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Bounded::<Conn>::new(config.queue_depth));

        let acceptor = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || accept_loop(listener, &stop, &queue))?
        };

        // Publish the gauge (and per-worker counters, below) before any
        // traffic so the very first `/metrics` scrape already shows them.
        privim_obs::gauge("serve.queue_depth").set(0.0);
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            let deadline = config.deadline;
            let max_body = config.max_body;
            let slow_threshold = config.slow_threshold;
            privim_obs::counter(&format!("serve.worker_{i}_busy_micros")).add(0);
            privim_obs::counter(&format!("serve.worker_{i}_idle_micros")).add(0);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(
                            i,
                            &stop,
                            &queue,
                            handler.as_ref(),
                            deadline,
                            max_body,
                            slow_threshold,
                        )
                    })?,
            );
        }

        privim_obs::info!(
            "serve",
            "listening",
            addr = addr.to_string(),
            workers = workers.len() as u64,
            queue_depth = config.queue_depth as u64,
        );
        Ok(Server {
            addr,
            stop,
            queue,
            acceptor,
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to stop accepting; returns immediately. Combine
    /// with [`Server::join`] to wait for the drain, or call
    /// [`Server::shutdown`] to do both.
    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, drain accepted connections,
    /// join every thread, flush telemetry sinks.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }

    /// Waits for the server to finish (after [`Server::request_shutdown`]
    /// or an external stop signal wired to the same flag).
    pub fn join(self) {
        let _ = self.acceptor.join();
        // The acceptor closes the queue on its way out; workers drain the
        // remainder and exit on the closed-and-empty queue.
        for worker in self.workers {
            let _ = worker.join();
        }
        privim_obs::info!("serve", "stopped", drained = true);
        privim_obs::flush_sinks();
    }

    /// Items currently waiting for a worker (test/introspection hook).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Binds `config.addr` and resolves it (split out for error messages).
pub fn resolve_addr(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool, queue: &Bounded<Conn>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Responses are single small writes; Nagle only delays them.
                let _ = stream.set_nodelay(true);
                let conn = Conn {
                    stream,
                    accepted_at: Instant::now(),
                };
                if let Err(err) = queue.push(conn) {
                    let overloaded = err.is_full();
                    let conn = err.into_inner();
                    privim_obs::counter("serve.rejected").add(1);
                    privim_obs::debug!("serve", "rejected", reason = "queue_full");
                    if let Some(slo) = crate::slo::global() {
                        slo.record_shed();
                    }
                    reject(conn.stream, overloaded);
                } else {
                    privim_obs::gauge("serve.queue_depth").set(queue.len() as f64);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                privim_obs::counter("serve.accept_errors").add(1);
                privim_obs::warn!("serve", "accept_error", error = e.to_string());
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    queue.close();
}

/// Sheds one connection with `503 + Retry-After` (best effort).
fn reject(mut stream: TcpStream, overloaded: bool) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let message = if overloaded {
        "queue full, retry later"
    } else {
        "server shutting down"
    };
    let resp = Response::unavailable(message);
    let _ = resp.write_to(&mut stream, false);
    let _ = stream.flush();
}

fn worker_loop(
    worker: usize,
    stop: &AtomicBool,
    queue: &Bounded<Conn>,
    handler: &dyn Handler,
    deadline: Duration,
    max_body: usize,
    slow_threshold: Duration,
) {
    let busy = privim_obs::counter(&format!("serve.worker_{worker}_busy_micros"));
    let idle = privim_obs::counter(&format!("serve.worker_{worker}_idle_micros"));
    let mut last = Instant::now();
    while let Some(conn) = {
        let conn = queue.pop();
        idle.add(last.elapsed().as_micros() as u64);
        last = Instant::now();
        conn
    } {
        privim_obs::gauge("serve.queue_depth").set(queue.len() as f64);
        serve_connection(conn, stop, handler, deadline, max_body, slow_threshold);
        busy.add(last.elapsed().as_micros() as u64);
        last = Instant::now();
    }
}

/// Derives the request's trace context and the id echoed back in
/// `X-Request-Id`. A client-supplied id (sane ASCII, bounded length) is
/// honored verbatim so the caller can correlate; anything else gets a
/// generated id from a process-local counter. When the request carries a
/// valid `X-Privim-Trace` header (the router propagating its attempt
/// span), the context is re-derived from the remote parent instead, so
/// this process's request span lands under the sender's attempt span
/// with the exact id both sides compute. Neither path reads the wall
/// clock or consumes RNG, keeping seeded responses bit-identical.
fn request_trace(request: &Request) -> (String, privim_obs::TraceContext) {
    let propagated = request
        .header(privim_obs::TRACE_HEADER)
        .and_then(privim_obs::parse_trace_header)
        .map(|remote| remote.child_n(privim_obs::trace::CHILD_REMOTE_REQUEST));
    match request.header("x-request-id") {
        Some(id)
            if !id.is_empty()
                && id.len() <= 128
                && id.bytes().all(|b| b.is_ascii_graphic() || b == b' ') =>
        {
            let ctx = propagated.unwrap_or_else(|| privim_obs::TraceContext::from_request_id(id));
            (id.to_string(), ctx)
        }
        _ => {
            static REQUEST_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
            let n = REQUEST_SEQ.fetch_add(1, Ordering::Relaxed);
            // Domain tag "srv-req" keeps generated ids clear of every
            // other splitmix64-derived stream in the workspace.
            let ctx = privim_obs::TraceContext::from_seed(0x7372_765F_7265_7100 ^ n);
            (ctx.trace_id_hex(), propagated.unwrap_or(ctx))
        }
    }
}

fn serve_connection(
    conn: Conn,
    stop: &AtomicBool,
    handler: &dyn Handler,
    deadline: Duration,
    max_body: usize,
    slow_threshold: Duration,
) {
    let Conn {
        stream,
        accepted_at,
    } = conn;
    if stream.set_read_timeout(Some(deadline)).is_err()
        || stream.set_write_timeout(Some(deadline)).is_err()
    {
        return;
    }
    // A connection that waited out its whole deadline in the queue is
    // answered like a shed one: the client has likely given up already.
    if accepted_at.elapsed() >= deadline {
        privim_obs::counter("serve.expired").add(1);
        if let Some(slo) = crate::slo::global() {
            slo.record_shed();
        }
        reject(stream, true);
        return;
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    // Queue age of this connection (accept → worker pickup): the first
    // request pays it, and the replica reports it as its queue-wait hop.
    let queue_wait = accepted_at.elapsed();
    handler.on_queue_wait(queue_wait);
    let mut first_request = true;
    loop {
        // Idle wait between requests: poll for the next byte in short
        // slices so a drain can close an idle keep-alive connection at
        // once instead of holding shutdown for the whole deadline. A
        // request whose bytes have started arriving is never cut off.
        if reader.buffer().is_empty() {
            if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
                return;
            }
            let idle_start = Instant::now();
            let mut byte = [0u8; 1];
            loop {
                match stream.peek(&mut byte) {
                    // Data or EOF: let read_request sort it out.
                    Ok(_) => break,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if stop.load(Ordering::SeqCst) || idle_start.elapsed() >= deadline {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
            if stream.set_read_timeout(Some(deadline)).is_err() {
                return;
            }
        }
        let mut request = match read_request(&mut reader, max_body) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close between requests
            Err(err) => {
                if let Some(status) = err.status() {
                    privim_obs::counter("serve.bad_requests").add(1);
                    let _ = Response::error(status, &err.to_string()).write_to(&mut stream, false);
                }
                return;
            }
        };
        let is_readyz = request.route() == "/readyz";
        let label = if is_readyz {
            "readyz"
        } else {
            handler.route_label(&request)
        };
        // Every request gets a trace context — from the client's
        // X-Request-Id when one is sent, generated otherwise — entered
        // for the whole handling so handler events (and the parallel
        // spread workers, which re-adopt it) are all stamped with it.
        let (request_id, trace_ctx) = request_trace(&request);
        // Make the resolved id visible to the handler under the header
        // name it expects: a proxying handler (the router) forwards it
        // downstream, so a generated id correlates across the tier too.
        if request.header("x-request-id") != Some(request_id.as_str()) {
            request.headers.retain(|(name, _)| name != "x-request-id");
            request
                .headers
                .push(("x-request-id".into(), request_id.clone()));
        }
        let _trace = trace_ctx.enter();
        let started = Instant::now();
        let export_spans = privim_obs::span_export_armed();
        let handle_start_us = privim_obs::now_micros();
        // A panicking handler must cost one 500, not one pool thread.
        // `/readyz` is answered by the server itself: readiness must stay
        // truthful even while the handler's own state is still loading,
        // and must go false the instant a drain begins.
        let response = if is_readyz {
            readyz_response(&request, handler, stop)
        } else {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler.handle(&request)))
                .unwrap_or_else(|_| Response::error(500, "handler panicked"))
        };
        let response = response.with_header("X-Request-Id", &request_id);
        let elapsed = started.elapsed().as_secs_f64();
        privim_obs::counter("serve.requests").add(1);
        privim_obs::counter(&format!("serve.requests.{label}")).add(1);
        privim_obs::histogram(&format!("serve.latency_secs.{label}")).record(elapsed);
        if response.status >= 500 {
            privim_obs::counter("serve.errors").add(1);
        }
        if let Some(slo) = crate::slo::global() {
            slo.record_request(elapsed, response.status);
        }
        privim_obs::debug!(
            "serve",
            "request",
            route = label,
            status = response.status as u64,
            secs = elapsed,
            request_id = request_id.clone(),
        );
        if elapsed >= slow_threshold.as_secs_f64() {
            privim_obs::counter("serve.slow_requests").add(1);
            privim_obs::warn!(
                "serve",
                "slow_request",
                route = label,
                status = response.status as u64,
                secs = elapsed,
                threshold_secs = slow_threshold.as_secs_f64(),
                request_id = request_id.clone(),
            );
        }
        if export_spans {
            let handle_us = started.elapsed().as_micros() as u64;
            let queue_us = if first_request {
                queue_wait.as_micros() as u64
            } else {
                0
            };
            // The request span covers queue wait + handling, so a remote
            // parent's attempt duration minus this span is pure
            // transport. Its children split the queue-age and
            // worker-compute shares at the tier's agreed child indices.
            privim_obs::export_span(privim_obs::SpanRecord {
                process: String::new(),
                name: "serve.request".into(),
                trace_id: trace_ctx.trace_id,
                span_id: trace_ctx.span_id,
                parent_span_id: trace_ctx.parent_span_id,
                start_us: handle_start_us.saturating_sub(queue_us),
                dur_us: queue_us + handle_us,
                annotations: vec![
                    ("route".into(), label.to_string()),
                    ("status".into(), response.status.to_string()),
                ],
            });
            let queue_ctx = trace_ctx.child_n(privim_obs::trace::CHILD_QUEUE_WAIT);
            privim_obs::export_span(privim_obs::SpanRecord {
                process: String::new(),
                name: "serve.queue_wait".into(),
                trace_id: queue_ctx.trace_id,
                span_id: queue_ctx.span_id,
                parent_span_id: queue_ctx.parent_span_id,
                start_us: handle_start_us.saturating_sub(queue_us),
                dur_us: queue_us,
                annotations: Vec::new(),
            });
            let handle_ctx = trace_ctx.child_n(privim_obs::trace::CHILD_HANDLE);
            privim_obs::export_span(privim_obs::SpanRecord {
                process: String::new(),
                name: "serve.handle".into(),
                trace_id: handle_ctx.trace_id,
                span_id: handle_ctx.span_id,
                parent_span_id: handle_ctx.parent_span_id,
                start_us: handle_start_us,
                dur_us: handle_us,
                annotations: Vec::new(),
            });
        }
        first_request = false;
        // Honor keep-alive only while the server is not draining.
        let keep_alive = request.wants_keep_alive() && !stop.load(Ordering::SeqCst);
        if response.write_to(&mut stream, keep_alive).is_err() {
            privim_obs::counter("serve.write_errors").add(1);
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// `GET /readyz`: 200 only while the handler reports ready AND no drain
/// has begun; 503 with `Retry-After` otherwise, so load balancers pull
/// the instance before its in-flight requests finish draining.
fn readyz_response(req: &Request, handler: &dyn Handler, stop: &AtomicBool) -> Response {
    if req.method != Method::Get {
        return Response::error(405, &format!("method {} not allowed here", req.method));
    }
    if stop.load(Ordering::SeqCst) {
        Response::unavailable("draining")
    } else if handler.ready() {
        Response::text(200, "ready\n")
    } else {
        Response::unavailable("loading")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    fn echo_handler() -> Arc<dyn Handler> {
        Arc::new(|req: &Request| match req.route() {
            "/echo" => Response::json(200, req.body.clone()),
            "/slow" => {
                std::thread::sleep(Duration::from_millis(150));
                Response::text(200, "slept")
            }
            _ => Response::error(404, "no such route"),
        })
    }

    fn start(workers: usize, queue_depth: usize) -> Server {
        let config = ServerConfig {
            workers,
            queue_depth,
            deadline: Duration::from_secs(5),
            ..ServerConfig::default()
        };
        Server::start(config, echo_handler()).expect("bind")
    }

    #[test]
    fn serves_requests_and_keeps_connections_alive() {
        let server = start(2, 16);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        for i in 0..3 {
            let body = format!("{{\"i\":{i}}}");
            let resp = client.post("/echo", body.as_bytes()).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, body.as_bytes());
        }
        assert_eq!(client.reconnects(), 0, "keep-alive should reuse the socket");
        let resp = client.get("/nope").unwrap();
        assert_eq!(resp.status, 404);
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_completes_in_flight_requests() {
        let server = start(2, 16);
        let addr = server.local_addr();
        let slow = std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            client.get("/slow").unwrap()
        });
        // Let the slow request land in a worker, then shut down under it.
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown();
        let resp = slow.join().unwrap();
        assert_eq!(resp.status, 200, "in-flight request must complete");
        assert_eq!(resp.body, b"slept");
        // New connections are refused after shutdown.
        assert!(
            HttpClient::connect(addr).is_err() || {
                let mut c = HttpClient::connect(addr).unwrap();
                c.get("/echo").is_err()
            }
        );
    }

    #[test]
    fn full_queue_sheds_load_with_503_and_retry_after() {
        // One worker, queue depth 1: a slow request occupies the worker,
        // the next connection fills the queue, the third is shed.
        let server = start(1, 1);
        let addr = server.local_addr();
        let slow = std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            client.get("/slow").unwrap()
        });
        std::thread::sleep(Duration::from_millis(40));
        let queued = std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            client.get("/echo").unwrap()
        });
        std::thread::sleep(Duration::from_millis(40));
        let mut shed = HttpClient::connect(addr).unwrap();
        let resp = shed.get("/echo").unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(slow.join().unwrap().status, 200);
        assert_eq!(
            queued.join().unwrap().status,
            200,
            "queued request still served"
        );
        server.shutdown();
    }

    #[test]
    fn readyz_is_served_by_the_server_not_the_handler() {
        // The echo handler knows nothing about /readyz; the server still
        // answers it, and drain flips it to 503 while an in-flight
        // keep-alive connection keeps getting answers.
        let server = start(2, 16);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let resp = client.get("/readyz").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ready\n");
        assert_eq!(client.post("/readyz", b"x").unwrap().status, 405);
        server.request_shutdown();
        let resp = client.get("/readyz").unwrap();
        assert_eq!(resp.status, 503, "draining must report not-ready");
        assert_eq!(resp.header("retry-after"), Some("1"));
        server.join();
    }

    #[test]
    fn ready_gate_holds_back_traffic_until_installed() {
        let server = Server::start(
            ServerConfig {
                workers: 1,
                queue_depth: 8,
                ..ServerConfig::default()
            },
            {
                let gate = ReadyGate::new();
                // Install from another thread shortly after startup, like
                // a checkpoint load finishing.
                let handle = Arc::clone(&gate);
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(120));
                    handle.install(echo_handler());
                });
                gate
            },
        )
        .unwrap();
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.get("/readyz").unwrap().status, 503);
        let shed = client.post("/echo", b"x").unwrap();
        assert_eq!(shed.status, 503, "routes shed while loading");
        assert_eq!(shed.header("retry-after"), Some("1"));
        // Wait for the install, then everything serves.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if client.get("/readyz").unwrap().status == 200 {
                break;
            }
            assert!(Instant::now() < deadline, "gate never became ready");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(client.post("/echo", b"x").unwrap().status, 200);
        server.shutdown();
    }

    #[test]
    fn swap_replaces_the_handler_and_later_install_still_loses() {
        let gate = ReadyGate::new();
        gate.install(Arc::new(|_req: &Request| Response::text(200, "one")));
        let req = crate::http::read_request(&mut "GET /x HTTP/1.1\r\n\r\n".as_bytes(), 64)
            .unwrap()
            .unwrap();
        assert_eq!(gate.handle(&req).body, b"one");
        // install() after the first is a no-op, swap() replaces.
        gate.install(Arc::new(|_req: &Request| Response::text(200, "ignored")));
        assert_eq!(gate.handle(&req).body, b"one");
        let old = gate.swap(Arc::new(|_req: &Request| Response::text(200, "two")));
        assert!(old.is_some(), "swap returns the replaced handler");
        assert_eq!(gate.handle(&req).body, b"two");
        assert_eq!(gate.swap_count(), 1);
    }

    #[test]
    fn hot_swap_under_load_drops_no_requests() {
        // Hammer the gate from several client threads while handlers are
        // swapped underneath: every request must get a 200 whose body is
        // one of the two generations — never an error, never a drop.
        let gate = ReadyGate::new();
        gate.install(Arc::new(|_req: &Request| {
            std::thread::sleep(Duration::from_millis(2));
            Response::text(200, "gen-a")
        }));
        let server = Server::start(
            ServerConfig {
                workers: 4,
                queue_depth: 64,
                ..ServerConfig::default()
            },
            gate.clone(),
        )
        .unwrap();
        let addr = server.local_addr();
        let clients: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    let mut bodies = Vec::new();
                    for _ in 0..40 {
                        let resp = client.get("/work").expect("no request may fail");
                        assert_eq!(resp.status, 200);
                        bodies.push(resp.body);
                    }
                    bodies
                })
            })
            .collect();
        for swap in 0..6 {
            std::thread::sleep(Duration::from_millis(15));
            let body = if swap % 2 == 0 { "gen-b" } else { "gen-a" };
            gate.swap(Arc::new(move |_req: &Request| {
                std::thread::sleep(Duration::from_millis(2));
                Response::text(200, body)
            }));
        }
        for client in clients {
            for body in client.join().unwrap() {
                assert!(
                    body == b"gen-a" || body == b"gen-b",
                    "unexpected body {:?}",
                    String::from_utf8_lossy(&body)
                );
            }
        }
        assert_eq!(gate.swap_count(), 6);
        server.shutdown();
    }

    #[test]
    fn request_ids_are_echoed_or_generated() {
        let server = start(1, 8);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        // Client-supplied id comes back verbatim.
        let resp = client
            .post_with_headers("/echo", &[("X-Request-Id", "my-req-1")], b"{}")
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-request-id"), Some("my-req-1"));
        // Without one, the server generates a 32-hex-digit trace id.
        let resp = client.post("/echo", b"{}").unwrap();
        let generated = resp.header("x-request-id").expect("generated id");
        assert_eq!(generated.len(), 32, "{generated}");
        assert!(generated.chars().all(|c| c.is_ascii_hexdigit()));
        // A hostile id (header-injection attempt) is replaced, not echoed.
        let resp = client
            .post_with_headers("/echo", &[("X-Request-Id", "a\tb")], b"{}")
            .unwrap();
        assert_ne!(resp.header("x-request-id"), Some("a\tb"));
        server.shutdown();
    }

    #[test]
    fn slow_requests_are_counted_against_the_threshold() {
        let config = ServerConfig {
            workers: 1,
            queue_depth: 8,
            slow_threshold: Duration::from_millis(50),
            ..ServerConfig::default()
        };
        let server = Server::start(config, echo_handler()).expect("bind");
        let before = privim_obs::counter("serve.slow_requests").get();
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.get("/slow").unwrap().status, 200);
        assert_eq!(client.post("/echo", b"{}").unwrap().status, 200);
        let after = privim_obs::counter("serve.slow_requests").get();
        assert_eq!(after - before, 1, "only the 150 ms /slow crosses 50 ms");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_not_a_dead_worker() {
        let server = start(1, 4);
        let addr = server.local_addr();
        {
            use std::io::{Read, Write};
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(b"BOGUS\r\n\r\n").unwrap();
            let mut buf = String::new();
            let _ = raw.read_to_string(&mut buf);
            assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
        }
        // The worker survives and serves the next request.
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.post("/echo", b"x").unwrap().status, 200);
        server.shutdown();
    }
}
