//! SIGTERM/SIGINT → shutdown flag, with no libc crate.
//!
//! The handler only stores into a static `AtomicBool` (async-signal-safe);
//! the serve command polls the flag and runs the graceful drain from its
//! main thread. On non-Unix targets installation is a no-op and the flag
//! simply never trips — Ctrl-C then terminates the process the default
//! way.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs handlers for SIGTERM and SIGINT and returns the flag they
/// set. Safe to call more than once.
#[cfg(unix)]
pub fn install_shutdown_handler() -> &'static AtomicBool {
    // `signal(2)` from the C runtime std already links against. Going
    // through the raw symbol keeps the workspace free of a libc crate
    // dependency; the usize-for-function-pointer ABI matches on every
    // Unix platform Rust supports.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
    &SHUTDOWN
}

/// Non-Unix fallback: returns a flag nothing ever sets.
#[cfg(not(unix))]
pub fn install_shutdown_handler() -> &'static AtomicBool {
    let _ = on_signal; // keep the handler referenced on all targets
    &SHUTDOWN
}

/// True once a shutdown signal has been received (or [`trip_shutdown`]
/// was called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trips the flag programmatically — used by tests and by callers that
/// want one code path for signal- and self-initiated shutdown.
pub fn trip_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_trips() {
        // Process-global state: this test is the only one touching it.
        let flag = install_shutdown_handler();
        assert!(!flag.load(Ordering::SeqCst) || shutdown_requested());
        trip_shutdown();
        assert!(shutdown_requested());
    }
}
