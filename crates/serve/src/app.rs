//! The PrivIM inference application: checkpoint + graph in, JSON out.
//!
//! Everything served here is post-processing of the released checkpoint:
//! scores come from the loaded parameters, spread estimates from the
//! public graph file the operator chose to serve, and no raw training
//! statistics are exposed — so answering queries consumes no additional
//! privacy budget beyond what training spent.

use privim_graph::{io, Graph};
use privim_im::metrics::top_k_seeds;
use privim_im::models::{DiffusionConfig, DiffusionModel};
use privim_im::spread::{influence_spread_parallel, SpreadError};
use privim_nn::graph_tensors::GraphTensors;
use privim_nn::serialize::Checkpoint;

use crate::api::{SeedsRequest, SeedsResponse, SpreadRequest, SpreadResponse, VersionResponse};
use crate::http::{Method, Request, Response};
use crate::server::Handler;

/// What to serve and the per-request safety limits.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Graph file (edge list or `.bin`).
    pub graph: String,
    /// `nn::serialize::Checkpoint` JSON file.
    pub checkpoint: String,
    /// Upper bound on `/v1/spread` trials; larger requests are clamped
    /// (the response reports the clamped count).
    pub max_trials: usize,
    /// Threads per `/v1/spread` evaluation. The estimate is invariant to
    /// this, so it is purely a latency/throughput knob.
    pub spread_threads: usize,
    /// Serve `GET /debug/trace` and `GET /debug/profile`. Off by
    /// default: the dumps expose request ids and timing internals, so
    /// they are for operators on trusted networks, not public traffic.
    pub debug_endpoints: bool,
}

impl AppConfig {
    /// A config with default limits (100k trials, 2 spread threads).
    pub fn new(graph: impl Into<String>, checkpoint: impl Into<String>) -> AppConfig {
        AppConfig {
            graph: graph.into(),
            checkpoint: checkpoint.into(),
            max_trials: 100_000,
            spread_threads: 2,
            debug_endpoints: false,
        }
    }
}

/// Loaded state shared (immutably) by every worker thread.
pub struct App {
    graph: Graph,
    /// Per-node model scores, indexed by node id.
    scores: Vec<f64>,
    /// All nodes ranked by score (descending, ties by id) — computed once
    /// at load time so `/v1/seeds` is a slice per request.
    ranking: Vec<u32>,
    model: String,
    /// Stable hex digest of the served checkpoint (see
    /// `Checkpoint::digest`): audit artifacts and response caches key
    /// on it, and `/version` exposes it.
    checkpoint_digest: String,
    max_trials: usize,
    spread_threads: usize,
    debug_endpoints: bool,
}

/// Loads a graph file the same way the CLI does: `.bin` is the privim
/// binary format, anything else a whitespace edge list.
pub fn load_graph(path: &str) -> Result<Graph, String> {
    if path.ends_with(".bin") {
        return io::load_binary(path).map_err(|e| format!("cannot load graph {path}: {e}"));
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read graph {path}: {e}"))?;
    io::read_edge_list_auto(&text, 1.0).map_err(|e| format!("cannot parse graph {path}: {e}"))
}

impl App {
    /// Loads the graph and checkpoint, restores the model, and scores
    /// every node once. Serving then never touches the model again, so
    /// identical `(checkpoint, graph)` pairs serve identical responses.
    pub fn load(config: &AppConfig) -> Result<App, String> {
        let graph = load_graph(&config.graph)?;
        let checkpoint = Checkpoint::load(&config.checkpoint)
            .map_err(|e| format!("cannot load checkpoint {}: {e}", config.checkpoint))?;
        let app = App::from_parts(graph, &checkpoint, config)?;
        privim_obs::info!(
            "serve",
            "loaded",
            graph = config.graph.clone(),
            checkpoint = config.checkpoint.clone(),
            nodes = app.num_nodes() as u64,
            model = checkpoint.kind.name(),
        );
        Ok(app)
    }

    /// Builds the app from an already-loaded graph and model checkpoint.
    /// This is the hot-swap path: `privim serve --follow` reads binary
    /// checkpoint-store generations (`TrainCheckpoint.model`) and hands
    /// them here directly, so a reload never touches the JSON
    /// checkpoint format — and the swap fails cleanly (old handler keeps
    /// serving) if the new generation cannot be restored.
    pub fn from_parts(
        graph: Graph,
        checkpoint: &Checkpoint,
        config: &AppConfig,
    ) -> Result<App, String> {
        let model = checkpoint
            .restore()
            .map_err(|e| format!("cannot restore checkpoint: {e}"))?;
        if config.debug_endpoints {
            // With debug endpoints on, keep the span ring armed so
            // `/debug/spans` serves this replica's recent spans to the
            // router's tier-trace assembler. Idempotent across reloads.
            privim_obs::arm_span_ring("serve");
        }
        let tensors = GraphTensors::with_structural_features(&graph, checkpoint.in_dim);
        let scores = model.seed_probabilities(&tensors);
        let ranking = top_k_seeds(&scores, scores.len());
        Ok(App {
            graph,
            scores,
            ranking,
            model: checkpoint.kind.name().to_string(),
            checkpoint_digest: checkpoint.digest_hex(),
            max_trials: config.max_trials.max(1),
            spread_threads: config.spread_threads.max(1),
            debug_endpoints: config.debug_endpoints,
        })
    }

    /// Stable hex digest of the served checkpoint (what `/version`
    /// reports and the router's agreement check compares).
    pub fn checkpoint_digest(&self) -> &str {
        &self.checkpoint_digest
    }

    /// Number of nodes in the served graph.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn seeds(&self, req: &SeedsRequest) -> SeedsResponse {
        let k = req.k.min(self.ranking.len());
        let seeds = self.ranking[..k].to_vec();
        let scores = seeds.iter().map(|&v| self.scores[v as usize]).collect();
        SeedsResponse {
            seeds,
            scores,
            k,
            seed: req.seed,
            model: self.model.clone(),
        }
    }

    fn spread(&self, req: &SpreadRequest) -> Result<SpreadResponse, SpreadError> {
        let trials = req.trials.min(self.max_trials);
        let config = DiffusionConfig {
            model: DiffusionModel::IndependentCascade,
            max_steps: req.steps,
        };
        let spread = influence_spread_parallel(
            &self.graph,
            &req.seeds,
            &config,
            trials,
            self.spread_threads,
            req.seed,
        )?;
        Ok(SpreadResponse {
            spread,
            trials,
            seed: req.seed,
            n_nodes: self.graph.num_nodes(),
        })
    }

    fn version(&self) -> VersionResponse {
        VersionResponse {
            name: env!("CARGO_PKG_NAME").to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            model: self.model.clone(),
            checkpoint_digest: self.checkpoint_digest.clone(),
            graph_nodes: self.graph.num_nodes(),
            graph_edges: self.graph.num_edges(),
        }
    }
}

/// Renders the flight recorder's current contents as plain-text span
/// trees: one block per trace id (first-seen order, untraced entries
/// under their own heading), entries indented by span depth. This is
/// the live view of the same rings a crash dump would serialize.
fn render_trace_dump() -> String {
    let entries = privim_obs::FlightRecorder::dump();
    let mut out = format!(
        "flight recorder: {} entries, {} dropped, armed={}\n",
        entries.len(),
        privim_obs::FlightRecorder::dropped(),
        privim_obs::FlightRecorder::armed(),
    );
    let mut order: Vec<u128> = Vec::new();
    for e in &entries {
        if !order.contains(&e.trace_id) {
            order.push(e.trace_id);
        }
    }
    for trace_id in order {
        let group: Vec<&privim_obs::DumpEntry> =
            entries.iter().filter(|e| e.trace_id == trace_id).collect();
        if trace_id == 0 {
            out.push_str(&format!("\nuntraced ({} events)\n", group.len()));
        } else {
            out.push_str(&format!(
                "\ntrace {trace_id:032x} ({} events)\n",
                group.len()
            ));
        }
        // Span depth = hops up the parent chain through spans this group
        // has seen (capped: truncated rings can orphan a child).
        let parents: std::collections::HashMap<u64, u64> = group
            .iter()
            .filter(|e| e.span_id != 0)
            .map(|e| (e.span_id, e.parent_span_id))
            .collect();
        for e in &group {
            let mut depth = 0usize;
            let mut up = e.parent_span_id;
            while up != 0 && depth < 16 {
                depth += 1;
                up = parents.get(&up).copied().unwrap_or(0);
            }
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str(&format!(
                "#{} {} {} {}",
                e.seq,
                e.level.as_str(),
                e.target,
                e.message
            ));
            if !e.detail.is_empty() {
                out.push_str(&format!(" {}", e.detail));
            }
            out.push_str(&format!(" (span {:016x}, {})\n", e.span_id, e.thread));
        }
    }
    out
}

/// Serializes a response value, or a 500 if serde fails (it cannot for
/// these types, but a server never panics on principle).
fn json_response<T: serde::Serialize>(value: &T) -> Response {
    match serde_json::to_vec(value) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::error(500, &format!("serialization failure: {e}")),
    }
}

fn parse_body<'a, T: serde::Deserialize<'a>>(req: &'a Request) -> Result<T, Response> {
    serde_json::from_slice(&req.body)
        .map_err(|e| Response::error(400, &format!("invalid request body: {e}")))
}

impl Handler for App {
    fn handle(&self, req: &Request) -> Response {
        match (&req.method, req.route()) {
            (Method::Get, "/healthz") => Response::text(200, "ok\n"),
            (Method::Get, "/version") => json_response(&self.version()),
            (Method::Get, "/metrics") => {
                let text = privim_obs::render_prometheus_with_profile(
                    &privim_obs::snapshot(),
                    &privim_obs::profile_report(),
                );
                Response::new(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    text.into_bytes(),
                )
            }
            (Method::Get, "/slo") => match crate::slo::global() {
                // Hand-rolled JSON keeps the body deterministic and
                // independent of the serde stack.
                Some(tracker) => Response::json(200, tracker.render_json().into_bytes()),
                None => Response::error(404, "slo tracking not enabled"),
            },
            // Debug endpoints answer 404 (not 403) when disabled so a
            // public deployment does not advertise their existence.
            (Method::Get, "/debug/trace") if self.debug_endpoints => {
                Response::text(200, render_trace_dump())
            }
            (Method::Get, "/debug/profile") if self.debug_endpoints => {
                Response::text(200, privim_obs::profile_report().render_flamegraph())
            }
            (Method::Get, "/debug/spans") if self.debug_endpoints => {
                Response::text(200, privim_obs::spans_jsonl())
            }
            (Method::Post, "/v1/seeds") => match parse_body::<SeedsRequest>(req) {
                Ok(body) => json_response(&self.seeds(&body)),
                Err(resp) => resp,
            },
            (Method::Post, "/v1/spread") => match parse_body::<SpreadRequest>(req) {
                Ok(body) => match self.spread(&body) {
                    Ok(out) => json_response(&out),
                    Err(e) => Response::error(400, &e.to_string()),
                },
                Err(resp) => resp,
            },
            (_, "/healthz" | "/version" | "/metrics" | "/slo" | "/v1/seeds" | "/v1/spread") => {
                Response::error(405, &format!("method {} not allowed here", req.method))
            }
            (_, "/debug/trace" | "/debug/profile" | "/debug/spans") if self.debug_endpoints => {
                Response::error(405, &format!("method {} not allowed here", req.method))
            }
            (_, route) => Response::error(404, &format!("no such route: {route}")),
        }
    }

    fn route_label(&self, req: &Request) -> &'static str {
        match req.route() {
            "/healthz" => "healthz",
            "/version" => "version",
            "/metrics" => "metrics",
            "/slo" => "slo",
            "/v1/seeds" => "seeds",
            "/v1/spread" => "spread",
            // A disabled endpoint stays "other" so 404 probes in the
            // metrics do not reveal the route exists.
            "/debug/trace" | "/debug/profile" | "/debug/spans" if self.debug_endpoints => "debug",
            _ => "other",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_obs::{FlightRecorder, TraceContext};

    #[test]
    fn trace_dump_renders_span_trees_grouped_by_trace() {
        FlightRecorder::reset();
        FlightRecorder::arm();
        let ctx = TraceContext::from_seed(4242);
        {
            let _t = ctx.enter();
            privim_obs::info!("app_dump", "parent_work");
            let child = ctx.child();
            let _c = child.enter();
            privim_obs::info!("app_dump", "child_work", step = 1u64);
        }
        FlightRecorder::disarm();
        let text = render_trace_dump();
        assert!(text.starts_with("flight recorder:"), "{text}");
        let header = format!("trace {}", ctx.trace_id_hex());
        assert!(text.contains(&header), "{text}");
        let parent_line = text
            .lines()
            .find(|l| l.contains("parent_work"))
            .expect("parent rendered");
        let child_line = text
            .lines()
            .find(|l| l.contains("child_work"))
            .expect("child rendered");
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(
            indent(child_line) > indent(parent_line),
            "child is nested under its parent:\n{text}"
        );
        assert!(child_line.contains("step=1"), "{child_line}");
    }
}
