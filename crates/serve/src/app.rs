//! The PrivIM inference application: checkpoint + graph in, JSON out.
//!
//! Everything served here is post-processing of the released checkpoint:
//! scores come from the loaded parameters, spread estimates from the
//! public graph file the operator chose to serve, and no raw training
//! statistics are exposed — so answering queries consumes no additional
//! privacy budget beyond what training spent.

use privim_graph::{io, Graph};
use privim_im::metrics::top_k_seeds;
use privim_im::models::{DiffusionConfig, DiffusionModel};
use privim_im::spread::{influence_spread_parallel, SpreadError};
use privim_nn::graph_tensors::GraphTensors;
use privim_nn::serialize::Checkpoint;

use crate::api::{SeedsRequest, SeedsResponse, SpreadRequest, SpreadResponse, VersionResponse};
use crate::http::{Method, Request, Response};
use crate::server::Handler;

/// What to serve and the per-request safety limits.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Graph file (edge list or `.bin`).
    pub graph: String,
    /// `nn::serialize::Checkpoint` JSON file.
    pub checkpoint: String,
    /// Upper bound on `/v1/spread` trials; larger requests are clamped
    /// (the response reports the clamped count).
    pub max_trials: usize,
    /// Threads per `/v1/spread` evaluation. The estimate is invariant to
    /// this, so it is purely a latency/throughput knob.
    pub spread_threads: usize,
}

impl AppConfig {
    /// A config with default limits (100k trials, 2 spread threads).
    pub fn new(graph: impl Into<String>, checkpoint: impl Into<String>) -> AppConfig {
        AppConfig {
            graph: graph.into(),
            checkpoint: checkpoint.into(),
            max_trials: 100_000,
            spread_threads: 2,
        }
    }
}

/// Loaded state shared (immutably) by every worker thread.
pub struct App {
    graph: Graph,
    /// Per-node model scores, indexed by node id.
    scores: Vec<f64>,
    /// All nodes ranked by score (descending, ties by id) — computed once
    /// at load time so `/v1/seeds` is a slice per request.
    ranking: Vec<u32>,
    model: String,
    max_trials: usize,
    spread_threads: usize,
}

/// Loads a graph file the same way the CLI does: `.bin` is the privim
/// binary format, anything else a whitespace edge list.
pub fn load_graph(path: &str) -> Result<Graph, String> {
    if path.ends_with(".bin") {
        return io::load_binary(path).map_err(|e| format!("cannot load graph {path}: {e}"));
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read graph {path}: {e}"))?;
    io::read_edge_list_auto(&text, 1.0).map_err(|e| format!("cannot parse graph {path}: {e}"))
}

impl App {
    /// Loads the graph and checkpoint, restores the model, and scores
    /// every node once. Serving then never touches the model again, so
    /// identical `(checkpoint, graph)` pairs serve identical responses.
    pub fn load(config: &AppConfig) -> Result<App, String> {
        let graph = load_graph(&config.graph)?;
        let checkpoint = Checkpoint::load(&config.checkpoint)
            .map_err(|e| format!("cannot load checkpoint {}: {e}", config.checkpoint))?;
        let model = checkpoint
            .restore()
            .map_err(|e| format!("cannot restore checkpoint {}: {e}", config.checkpoint))?;
        let tensors = GraphTensors::with_structural_features(&graph, checkpoint.in_dim);
        let scores = model.seed_probabilities(&tensors);
        let ranking = top_k_seeds(&scores, scores.len());
        privim_obs::info!(
            "serve",
            "loaded",
            graph = config.graph.clone(),
            checkpoint = config.checkpoint.clone(),
            nodes = graph.num_nodes() as u64,
            model = checkpoint.kind.name(),
        );
        Ok(App {
            graph,
            scores,
            ranking,
            model: checkpoint.kind.name().to_string(),
            max_trials: config.max_trials.max(1),
            spread_threads: config.spread_threads.max(1),
        })
    }

    /// Number of nodes in the served graph.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn seeds(&self, req: &SeedsRequest) -> SeedsResponse {
        let k = req.k.min(self.ranking.len());
        let seeds = self.ranking[..k].to_vec();
        let scores = seeds.iter().map(|&v| self.scores[v as usize]).collect();
        SeedsResponse {
            seeds,
            scores,
            k,
            seed: req.seed,
            model: self.model.clone(),
        }
    }

    fn spread(&self, req: &SpreadRequest) -> Result<SpreadResponse, SpreadError> {
        let trials = req.trials.min(self.max_trials);
        let config = DiffusionConfig {
            model: DiffusionModel::IndependentCascade,
            max_steps: req.steps,
        };
        let spread = influence_spread_parallel(
            &self.graph,
            &req.seeds,
            &config,
            trials,
            self.spread_threads,
            req.seed,
        )?;
        Ok(SpreadResponse {
            spread,
            trials,
            seed: req.seed,
            n_nodes: self.graph.num_nodes(),
        })
    }

    fn version(&self) -> VersionResponse {
        VersionResponse {
            name: env!("CARGO_PKG_NAME").to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            model: self.model.clone(),
            graph_nodes: self.graph.num_nodes(),
            graph_edges: self.graph.num_edges(),
        }
    }
}

/// Serializes a response value, or a 500 if serde fails (it cannot for
/// these types, but a server never panics on principle).
fn json_response<T: serde::Serialize>(value: &T) -> Response {
    match serde_json::to_vec(value) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::error(500, &format!("serialization failure: {e}")),
    }
}

fn parse_body<'a, T: serde::Deserialize<'a>>(req: &'a Request) -> Result<T, Response> {
    serde_json::from_slice(&req.body)
        .map_err(|e| Response::error(400, &format!("invalid request body: {e}")))
}

impl Handler for App {
    fn handle(&self, req: &Request) -> Response {
        match (&req.method, req.route()) {
            (Method::Get, "/healthz") => Response::text(200, "ok\n"),
            (Method::Get, "/version") => json_response(&self.version()),
            (Method::Get, "/metrics") => {
                let text = privim_obs::render_prometheus_with_profile(
                    &privim_obs::snapshot(),
                    &privim_obs::profile_report(),
                );
                Response::new(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    text.into_bytes(),
                )
            }
            (Method::Post, "/v1/seeds") => match parse_body::<SeedsRequest>(req) {
                Ok(body) => json_response(&self.seeds(&body)),
                Err(resp) => resp,
            },
            (Method::Post, "/v1/spread") => match parse_body::<SpreadRequest>(req) {
                Ok(body) => match self.spread(&body) {
                    Ok(out) => json_response(&out),
                    Err(e) => Response::error(400, &e.to_string()),
                },
                Err(resp) => resp,
            },
            (_, "/healthz" | "/version" | "/metrics" | "/v1/seeds" | "/v1/spread") => {
                Response::error(405, &format!("method {} not allowed here", req.method))
            }
            (_, route) => Response::error(404, &format!("no such route: {route}")),
        }
    }

    fn route_label(&self, req: &Request) -> &'static str {
        match req.route() {
            "/healthz" => "healthz",
            "/version" => "version",
            "/metrics" => "metrics",
            "/v1/seeds" => "seeds",
            "/v1/spread" => "spread",
            _ => "other",
        }
    }
}
