//! A bounded multi-producer multi-consumer queue with explicit
//! backpressure.
//!
//! `push` never blocks — a full queue returns the item back to the caller
//! so the acceptor can answer `503 Service Unavailable` instead of letting
//! latency grow without bound. `pop` blocks until an item arrives or the
//! queue is closed *and* drained, which is exactly the semantics a
//! graceful shutdown needs: close the queue, and workers finish whatever
//! was already accepted before exiting.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`Bounded::push`] was refused; the rejected item is handed back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue was closed.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }

    /// True for the capacity case (the caller should shed load).
    pub fn is_full(&self) -> bool {
        matches!(self, PushError::Full(_))
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue itself; share it behind an `Arc`.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (≥ 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking; a full or closed queue refuses and
    /// returns the item.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, blocking while the queue is open and empty. Returns
    /// `None` once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: further pushes fail, pops drain what remains.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let q = Bounded::new(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_returns_item() {
        let q = Bounded::new(1);
        q.push(1).unwrap();
        let err = q.push(2).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn closed_queue_refuses_pushes_but_drains_pops() {
        let q = Bounded::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(matches!(q.push(3), Err(PushError::Closed(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays None after drain");
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let q = Bounded::new(0);
        q.push(1).unwrap();
        assert!(q.push(2).is_err());
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_close() {
        let q = Arc::new(Bounded::new(2));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || {
            let first = q2.pop();
            let second = q2.pop();
            (first, second)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.push(7).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let (first, second) = popper.join().unwrap();
        assert_eq!(first, Some(7));
        assert_eq!(second, None);
    }

    #[test]
    fn many_producers_one_consumer_sees_everything() {
        let q = Arc::new(Bounded::new(64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..16 {
                    while q.push(t * 100 + i).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut seen = Vec::new();
        while seen.len() < 64 {
            if let Some(v) = q.pop() {
                seen.push(v);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 64);
    }
}
