//! Replicated-tier front-end: health-checked routing with per-replica
//! circuit breakers, bounded retry, and tail-latency hedging.
//!
//! The router is itself a [`Handler`], so it runs behind the same
//! acceptor/queue/worker machinery as the application — one binary, two
//! roles. It forwards every application route to one of N replica
//! backends and answers only its own operational surface
//! (`/healthz`, `/metrics`, `/router/backends`) locally:
//!
//! ```text
//!             ┌────────┐  breaker ✓  ┌──────────┐
//!  clients ──▶│ router ├────────────▶│ replica 0 │  /readyz + /version
//!             │        ├──retry────▶│ replica 1 │  polled by the health
//!             └────────┘  backoff    └──────────┘  thread
//! ```
//!
//! Correctness of retry and hedging rests on the serving determinism
//! contract: replicas agreeing on a checkpoint digest produce
//! byte-identical bodies for identical requests (scores are fixed at
//! load time, `/v1/spread` uses thread-invariant splitmix64 trial
//! blocks), so re-sending a request to another replica — or racing two
//! replicas and keeping the first answer — can never change what the
//! client observes. The health thread enforces the digest-agreement
//! half: a replica whose `/version` digest disagrees with the majority
//! is pulled from rotation until it converges.
//!
//! Every transition (breaker trips and recoveries, retries, hedges
//! launched/won, backends lost/regained) emits an obs event and bumps a
//! `router.*` counter, exported as `privim_router_*` in Prometheus.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use privim_obs::fault::splitmix64;
use privim_obs::trace::{CHILD_ATTEMPT_BASE, CHILD_HEDGE_BASE};
use privim_obs::TraceContext;

use crate::client::HttpClient;
use crate::http::{Method, Request, Response};
use crate::server::Handler;

/// Maximum pooled keep-alive connections per backend.
const POOL_PER_BACKEND: usize = 4;

/// Circuit-breaker phase. `Open` fails fast; `HalfOpen` lets exactly one
/// probe through to decide between closing and re-opening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are counted.
    Closed,
    /// Tripped: requests are refused until the jittered reopen time.
    Open,
    /// Probe in flight: its outcome decides `Closed` vs `Open`.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case label for status bodies and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// A per-replica circuit breaker over a caller-supplied millisecond
/// clock (no wall-clock reads, so tests drive it deterministically).
///
/// Closed → Open after `threshold` consecutive failures; Open → HalfOpen
/// when `allow` is first called past the reopen time (that call *is* the
/// probe); HalfOpen → Closed on probe success, → Open on probe failure.
/// Each trip's cooldown gets deterministic seeded jitter — splitmix64 of
/// `(seed, trip count)` — so a fleet of replicas tripped by the same
/// outage does not probe a recovering backend in lockstep.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_ms: u64,
    seed: u64,
    state: BreakerState,
    consecutive_failures: u32,
    trips: u64,
    reopen_at_ms: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures,
    /// cooling down `cooldown_ms` (+ jitter from `seed`) per trip.
    pub fn new(threshold: u32, cooldown_ms: u64, seed: u64) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown_ms: cooldown_ms.max(1),
            seed,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            reopen_at_ms: 0,
        }
    }

    /// Whether a request may be sent at `now_ms`. In `Open`, the first
    /// call at or past the reopen time transitions to `HalfOpen` and is
    /// allowed as the probe; later calls wait for the probe's verdict.
    pub fn allow(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_ms >= self.reopen_at_ms {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => false,
        }
    }

    /// Records a successful response: closes the breaker.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed attempt at `now_ms`; trips to `Open` from
    /// `HalfOpen` (failed probe) or on the `threshold`-th consecutive
    /// failure in `Closed`.
    pub fn record_failure(&mut self, now_ms: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.trips += 1;
            // Jitter in [0, cooldown/4]: deterministic per (seed, trip).
            let jitter = splitmix64(self.seed ^ self.trips) % (self.cooldown_ms / 4 + 1);
            self.reopen_at_ms = now_ms + self.cooldown_ms + jitter;
            self.state = BreakerState::Open;
        }
    }

    /// Current phase.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Replica addresses (`host:port`), tried in round-robin order.
    pub backends: Vec<String>,
    /// Extra attempts after the first (on connect errors, timeouts, and
    /// 503s — the idempotent-by-construction failure modes).
    pub retries: u32,
    /// Base for the deterministic exponential backoff between attempts
    /// (`backoff * 2^(attempt-1)`).
    pub backoff: Duration,
    /// Per-attempt request timeout.
    pub timeout: Duration,
    /// Hedge `/v1/spread` requests still unanswered after this delay by
    /// racing a second replica (first answer wins). `None` disables.
    pub hedge_after: Option<Duration>,
    /// Consecutive failures that trip a replica's breaker.
    pub breaker_failures: u32,
    /// Base breaker cooldown before the half-open probe.
    pub breaker_cooldown: Duration,
    /// Health-check poll interval (`/readyz` + `/version` digest).
    pub health_interval: Duration,
    /// Consecutive failed health probes before a replica is pulled from
    /// rotation. Probes ride the same network as traffic, so a single
    /// flaky probe connection must not unseat a healthy replica.
    pub probe_down_after: u32,
    /// Seed for breaker reopen jitter (per-backend streams are derived
    /// from it with splitmix64).
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            backends: Vec::new(),
            retries: 2,
            backoff: Duration::from_millis(50),
            timeout: Duration::from_secs(10),
            hedge_after: None,
            breaker_failures: 3,
            breaker_cooldown: Duration::from_secs(1),
            health_interval: Duration::from_millis(500),
            probe_down_after: 2,
            seed: 0,
        }
    }
}

/// One replica: its address, breaker, health-thread verdicts, and a
/// small pool of kept-alive connections.
struct Backend {
    addr: String,
    breaker: Mutex<CircuitBreaker>,
    /// `/readyz` said 200 on the last poll (starts optimistic so traffic
    /// flows before the first poll completes; breakers catch dead ones).
    healthy: AtomicBool,
    /// Digest agreement with the majority (true while unknown).
    digest_ok: AtomicBool,
    /// Consecutive failed health probes (any success resets).
    probe_failures: AtomicU32,
    digest: Mutex<Option<String>>,
    pool: Mutex<Vec<HttpClient>>,
}

impl Backend {
    fn new(addr: String, config: &RouterConfig, index: usize) -> Backend {
        Backend {
            addr,
            breaker: Mutex::new(CircuitBreaker::new(
                config.breaker_failures,
                config.breaker_cooldown.as_millis() as u64,
                splitmix64(config.seed ^ (index as u64 + 1)),
            )),
            healthy: AtomicBool::new(true),
            digest_ok: AtomicBool::new(true),
            probe_failures: AtomicU32::new(0),
            digest: Mutex::new(None),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Health-thread verdicts only (the breaker needs a clock and is
    /// consulted separately at pick time).
    fn routable(&self) -> bool {
        self.healthy.load(Ordering::SeqCst) && self.digest_ok.load(Ordering::SeqCst)
    }

    fn client(&self, timeout: Duration) -> std::io::Result<HttpClient> {
        if let Some(client) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok(client);
        }
        HttpClient::with_timeout(self.addr.as_str(), timeout)
    }

    fn park(&self, client: HttpClient) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < POOL_PER_BACKEND {
            pool.push(client);
        }
    }
}

/// The front-end handler. Construct with [`Router::new`], hand it to
/// [`crate::server::Server::start`], and (optionally) spawn the health
/// thread with [`Router::spawn_health_thread`].
pub struct Router {
    backends: Vec<Arc<Backend>>,
    config: RouterConfig,
    /// Millisecond-clock base for breaker timing.
    epoch: Instant,
    /// Round-robin cursor.
    next: AtomicUsize,
    /// Health-poll sequence number (seeds deterministic probe-span ids).
    polls: AtomicU64,
    stop: Arc<AtomicBool>,
}

impl Router {
    /// Builds a router over `config.backends` (must be non-empty).
    pub fn new(config: RouterConfig) -> Result<Arc<Router>, String> {
        if config.backends.is_empty() {
            return Err("router needs at least one backend".into());
        }
        let backends = config
            .backends
            .iter()
            .enumerate()
            .map(|(i, addr)| Arc::new(Backend::new(addr.clone(), &config, i)))
            .collect();
        privim_obs::gauge("router.backends").set(config.backends.len() as f64);
        // The router always keeps the in-memory span ring armed: its
        // `/debug/spans` and `/debug/tier-trace` are operational
        // surfaces, available without any export flag.
        privim_obs::arm_span_ring("router");
        Ok(Arc::new(Router {
            backends,
            config,
            epoch: Instant::now(),
            next: AtomicUsize::new(0),
            polls: AtomicU64::new(0),
            stop: Arc::new(AtomicBool::new(false)),
        }))
    }

    /// The shared stop flag; setting it ends the health thread.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Spawns the health thread: every `health_interval` it polls each
    /// backend's `/readyz`, pulls the checkpoint digest from `/version`,
    /// and pulls replicas that disagree with the majority digest out of
    /// rotation. Runs until [`Router::stop_flag`] is set.
    pub fn spawn_health_thread(self: &Arc<Router>) -> std::thread::JoinHandle<()> {
        let router = Arc::clone(self);
        std::thread::Builder::new()
            .name("router-health".into())
            .spawn(move || {
                while !router.stop.load(Ordering::SeqCst) {
                    router.poll_backends_once();
                    let mut slept = Duration::ZERO;
                    // Sleep in slices so shutdown is prompt.
                    while slept < router.config.health_interval
                        && !router.stop.load(Ordering::SeqCst)
                    {
                        let slice = Duration::from_millis(50);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            })
            .expect("spawn router-health")
    }

    /// One health-check sweep (public so tests and the CLI can force a
    /// poll without waiting out the interval).
    pub fn poll_backends_once(&self) {
        let timeout = Duration::from_millis(500).min(self.config.timeout);
        let poll_n = self.polls.fetch_add(1, Ordering::Relaxed);
        let mut digests: Vec<Option<String>> = Vec::with_capacity(self.backends.len());
        for backend in &self.backends {
            let probe_started = Instant::now();
            let probe_start_us = privim_obs::now_micros();
            let mut probe_ok = false;
            let mut digest = None;
            if let Ok(mut client) = HttpClient::with_timeout(backend.addr.as_str(), timeout) {
                probe_ok = client
                    .get("/readyz")
                    .map(|r| r.status == 200)
                    .unwrap_or(false);
                if probe_ok {
                    if let Ok(resp) = client.get("/version") {
                        if resp.status == 200 {
                            digest = extract_checkpoint_digest(&resp.body);
                        }
                    }
                }
            }
            if privim_obs::span_export_armed() {
                // Probes have no request to parent under; each poll of
                // each backend gets its own deterministic root trace.
                let ctx = TraceContext::from_request_id(&format!(
                    "probe-{}-{}-{}",
                    self.config.seed, poll_n, backend.addr
                ));
                privim_obs::export_span(privim_obs::SpanRecord {
                    process: String::new(),
                    name: "router.health_probe".into(),
                    trace_id: ctx.trace_id,
                    span_id: ctx.span_id,
                    parent_span_id: None,
                    start_us: probe_start_us,
                    dur_us: probe_started.elapsed().as_micros() as u64,
                    annotations: vec![
                        ("backend".into(), backend.addr.clone()),
                        ("ok".into(), probe_ok.to_string()),
                    ],
                });
            }
            // One flaky probe (the probe shares the traffic network, so
            // it fails under the same chaos) must not pull a replica:
            // only `probe_down_after` consecutive failures do.
            let healthy = if probe_ok {
                backend.probe_failures.store(0, Ordering::SeqCst);
                true
            } else {
                let misses = backend.probe_failures.fetch_add(1, Ordering::SeqCst) + 1;
                misses < self.config.probe_down_after.max(1)
                    && backend.healthy.load(Ordering::SeqCst)
            };
            let was = backend.healthy.swap(healthy, Ordering::SeqCst);
            if was != healthy {
                privim_obs::counter(if healthy {
                    "router.backend_up"
                } else {
                    "router.backend_down"
                })
                .add(1);
                privim_obs::info!(
                    "router",
                    "backend_health",
                    backend = backend.addr.clone(),
                    healthy = healthy,
                );
            }
            if probe_ok {
                *backend.digest.lock().unwrap_or_else(|e| e.into_inner()) = digest.clone();
            }
            digests.push(if probe_ok { digest } else { None });
        }

        // Digest agreement: majority among healthy backends that report
        // one (ties break toward the lowest backend index). Unknown
        // digests never disqualify — a replica without /version (or one
        // we could not parse) is judged by /readyz alone.
        let majority = majority_digest(&digests);
        let mut healthy_count = 0u64;
        for (backend, digest) in self.backends.iter().zip(&digests) {
            let agrees = match (&majority, digest) {
                (Some(m), Some(d)) => m == d,
                _ => true,
            };
            let did = backend.digest_ok.swap(agrees, Ordering::SeqCst);
            if did != agrees {
                privim_obs::counter("router.digest_disagreements").add(1);
                privim_obs::warn!(
                    "router",
                    "digest_agreement",
                    backend = backend.addr.clone(),
                    agrees = agrees,
                    digest = digest.clone().unwrap_or_default(),
                    majority = majority.clone().unwrap_or_default(),
                );
            }
            if backend.routable() {
                healthy_count += 1;
            }
        }
        privim_obs::gauge("router.backends_healthy").set(healthy_count as f64);
    }

    /// Picks the next routable backend starting at `cursor`, skipping
    /// unhealthy/disagreeing replicas and open breakers, and excluding
    /// `avoid` (the hedge's primary). The winning pick consumes the
    /// breaker's half-open probe slot when one is due. When health
    /// verdicts disqualify every replica at once, they are ignored
    /// (fail-open) and only the breakers gate the pick.
    fn pick(&self, cursor: usize, avoid: Option<usize>) -> Option<(usize, Arc<Backend>)> {
        let n = self.backends.len();
        let now = self.now_ms();
        // Fail-open (panic routing): when *every* replica is marked
        // unroutable, the health verdicts themselves are the likeliest
        // casualty (probes ride the same network as traffic), so ignore
        // them and let the per-replica breakers arbitrate instead.
        let panic_mode = self.backends.iter().all(|b| !b.routable());
        if panic_mode {
            privim_obs::counter("router.panic_picks").add(1);
        }
        for step in 0..n {
            let idx = (cursor + step) % n;
            if Some(idx) == avoid {
                continue;
            }
            let backend = &self.backends[idx];
            if !panic_mode && !backend.routable() {
                continue;
            }
            let allowed = {
                let mut breaker = backend.breaker.lock().unwrap_or_else(|e| e.into_inner());
                let before = breaker.state();
                let allowed = breaker.allow(now);
                if allowed && before == BreakerState::Open {
                    privim_obs::counter("router.breaker_probes").add(1);
                    privim_obs::info!(
                        "router",
                        "breaker_half_open",
                        backend = backend.addr.clone(),
                    );
                }
                allowed
            };
            if allowed {
                return Some((idx, Arc::clone(backend)));
            }
        }
        None
    }

    fn record_outcome(&self, backend: &Backend, ok: bool) {
        let mut breaker = backend.breaker.lock().unwrap_or_else(|e| e.into_inner());
        let before = breaker.state();
        if ok {
            breaker.record_success();
            if before != BreakerState::Closed {
                privim_obs::counter("router.breaker_closes").add(1);
                privim_obs::info!("router", "breaker_closed", backend = backend.addr.clone());
                export_breaker_span(&backend.addr, "closed", breaker.trips());
            }
        } else {
            breaker.record_failure(self.now_ms());
            if breaker.state() == BreakerState::Open && before != BreakerState::Open {
                privim_obs::counter("router.breaker_trips").add(1);
                privim_obs::warn!(
                    "router",
                    "breaker_tripped",
                    backend = backend.addr.clone(),
                    trips = breaker.trips(),
                );
                export_breaker_span(&backend.addr, "open", breaker.trips());
            }
        }
    }

    /// Forwards one request with bounded retry; hedges eligible routes.
    ///
    /// Every attempt gets a span whose id is a pure function of the
    /// request's trace root and the attempt number, so the tier-wide
    /// trace tree reassembles identically across processes and reruns.
    fn forward(&self, req: &Request) -> Response {
        privim_obs::counter("router.requests").add(1);
        // The server installed the request's trace context before
        // dispatching to us; fall back to deriving it from the id so
        // attempt spans stay parented even outside a server.
        let root =
            privim_obs::current_trace().unwrap_or_else(|| match req.header("x-request-id") {
                Some(id) => TraceContext::from_request_id(id),
                None => TraceContext::from_seed(0),
            });
        let cursor = self.next.fetch_add(1, Ordering::Relaxed);
        let attempts = self.config.retries as usize + 1;
        let mut last_error = String::new();
        let mut backoff_ms = 0u64;
        for attempt in 0..attempts {
            if attempt > 0 {
                // Deterministic exponential backoff: base * 2^(attempt-1).
                let delay = self.config.backoff * (1u32 << (attempt - 1).min(16));
                backoff_ms = delay.as_millis() as u64;
                privim_obs::histogram("router.hop.backoff").record(delay.as_secs_f64());
                std::thread::sleep(delay);
                privim_obs::counter("router.retries").add(1);
                privim_obs::info!(
                    "router",
                    "retry",
                    attempt = attempt as u64,
                    route = req.route().to_string(),
                    error = last_error.clone(),
                );
            }
            let Some((idx, backend)) = self.pick(cursor + attempt, None) else {
                privim_obs::counter("router.no_backend").add(1);
                last_error = "no routable backend".into();
                continue;
            };
            match self.attempt(idx, backend, req, root, attempt as u64 + 1, backoff_ms) {
                Ok(resp) => return resp,
                Err(err) => last_error = err,
            }
        }
        privim_obs::counter("router.exhausted").add(1);
        privim_obs::warn!(
            "router",
            "retries_exhausted",
            route = req.route().to_string(),
            error = last_error.clone(),
        );
        Response::unavailable(&format!("all backends failed: {last_error}"))
    }

    /// One attempt: plain single-backend send, or a hedged race for
    /// eligible routes. Breaker bookkeeping happens per backend inside.
    ///
    /// `attempt_no` is 1-based; the attempt span's id is
    /// `root.child_n(CHILD_ATTEMPT_BASE + attempt_no)` and a hedge leg's
    /// is `root.child_n(CHILD_HEDGE_BASE + attempt_no)` — pure functions
    /// of the request id, asserted exactly by tests.
    fn attempt(
        &self,
        idx: usize,
        backend: Arc<Backend>,
        req: &Request,
        root: TraceContext,
        attempt_no: u64,
        backoff_ms: u64,
    ) -> Result<Response, String> {
        let attempt_ctx = root.child_n(CHILD_ATTEMPT_BASE + attempt_no);
        let hedge_after = match self.config.hedge_after {
            // Hedging is restricted to /v1/spread: its responses are
            // byte-identical across replicas on the same digest, so the
            // duplicate can never disagree with the original.
            Some(d) if req.route() == "/v1/spread" => Some(d),
            _ => None,
        };
        let Some(hedge_after) = hedge_after else {
            let started = Instant::now();
            let start_us = privim_obs::now_micros();
            let outcome = send_once(&backend, req, self.config.timeout, Some(&attempt_ctx));
            let elapsed = started.elapsed();
            privim_obs::histogram("router.hop.upstream").record(elapsed.as_secs_f64());
            self.record_outcome(&backend, outcome.is_ok());
            export_attempt_span(
                &attempt_ctx,
                start_us,
                elapsed,
                attempt_no,
                &backend.addr,
                backoff_ms,
                false,
                outcome.is_ok(),
                false,
            );
            return outcome;
        };

        /// One racing leg of a hedged attempt: which backend, which span,
        /// and when it launched (for its span duration).
        struct Leg {
            idx: usize,
            backend: Arc<Backend>,
            ctx: TraceContext,
            started: Instant,
            start_us: u64,
            hedge: bool,
        }
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<Response, String>)>();
        let spawn_leg = |leg: &Leg, tx: std::sync::mpsc::Sender<_>| {
            let req = req.clone();
            let timeout = self.config.timeout;
            let leg_backend = Arc::clone(&leg.backend);
            let leg_idx = leg.idx;
            let ctx = leg.ctx;
            std::thread::spawn(move || {
                let outcome = send_once(&leg_backend, &req, timeout, Some(&ctx));
                let _ = tx.send((leg_idx, outcome));
            });
        };
        let primary = Leg {
            idx,
            backend,
            ctx: attempt_ctx,
            started: Instant::now(),
            start_us: privim_obs::now_micros(),
            hedge: false,
        };
        spawn_leg(&primary, tx.clone());
        let mut legs: Vec<Leg> = vec![primary];
        let first = match rx.recv_timeout(hedge_after) {
            Ok(result) => Some(result),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Primary is slow: race a second replica if one exists.
                if let Some((h_idx, hedge)) = self.pick(idx + 1, Some(idx)) {
                    privim_obs::counter("router.hedges").add(1);
                    privim_obs::info!(
                        "router",
                        "hedge_launched",
                        primary = legs[0].backend.addr.clone(),
                        hedge = hedge.addr.clone(),
                    );
                    let leg = Leg {
                        idx: h_idx,
                        backend: hedge,
                        ctx: root.child_n(CHILD_HEDGE_BASE + attempt_no),
                        started: Instant::now(),
                        start_us: privim_obs::now_micros(),
                        hedge: true,
                    };
                    spawn_leg(&leg, tx.clone());
                    legs.push(leg);
                }
                None
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => None,
        };
        drop(tx);
        let mut received: Vec<(usize, Result<Response, String>)> = first.into_iter().collect();
        // First Ok wins; a leg's error only surfaces when every leg fails.
        loop {
            if let Some(pos) = received.iter().position(|(_, r)| r.is_ok()) {
                let (leg_idx, result) = received.swap_remove(pos);
                // Only the winner's verdict feeds a breaker here; the
                // losing leg keeps running detached and settles its own
                // breaker on the next attempt that touches it.
                if let Some(winner) = legs.iter().find(|l| l.idx == leg_idx) {
                    self.record_outcome(&winner.backend, true);
                    privim_obs::histogram("router.hop.upstream")
                        .record(winner.started.elapsed().as_secs_f64());
                }
                if legs.len() > 1 && leg_idx == legs[1].idx {
                    privim_obs::counter("router.hedge_wins").add(1);
                    privim_obs::info!(
                        "router",
                        "hedge_won",
                        backend = legs[1].backend.addr.clone(),
                    );
                }
                // Resolution closes every leg's span: the winner as-is,
                // the losing leg marked cancelled (its answer, should it
                // ever land, is discarded by construction).
                for leg in &legs {
                    let won = leg.idx == leg_idx;
                    export_attempt_span(
                        &leg.ctx,
                        leg.start_us,
                        leg.started.elapsed(),
                        attempt_no,
                        &leg.backend.addr,
                        if leg.hedge { 0 } else { backoff_ms },
                        leg.hedge,
                        won,
                        !won,
                    );
                }
                return result;
            }
            if received.len() == legs.len() {
                // Every leg failed: settle breakers and report the first.
                for leg in &legs {
                    self.record_outcome(&leg.backend, false);
                    privim_obs::histogram("router.hop.upstream")
                        .record(leg.started.elapsed().as_secs_f64());
                    export_attempt_span(
                        &leg.ctx,
                        leg.start_us,
                        leg.started.elapsed(),
                        attempt_no,
                        &leg.backend.addr,
                        if leg.hedge { 0 } else { backoff_ms },
                        leg.hedge,
                        false,
                        false,
                    );
                }
                let (_, first_err) = received.swap_remove(0);
                return first_err;
            }
            match rx.recv_timeout(self.config.timeout) {
                Ok(result) => received.push(result),
                Err(_) => {
                    for leg in &legs {
                        self.record_outcome(&leg.backend, false);
                        export_attempt_span(
                            &leg.ctx,
                            leg.start_us,
                            leg.started.elapsed(),
                            attempt_no,
                            &leg.backend.addr,
                            if leg.hedge { 0 } else { backoff_ms },
                            leg.hedge,
                            false,
                            false,
                        );
                    }
                    return Err("hedged request timed out on every leg".into());
                }
            }
        }
    }

    /// Assembles the tier-wide trace view for `GET /debug/tier-trace`:
    /// the router's own span ring merged with every backend's
    /// `/debug/spans`, rendered as per-request trees with the per-hop
    /// latency decomposition. `?request_id=` (or `?trace=` with a raw
    /// 32-hex trace id) narrows the view to one request.
    fn tier_trace(&self, req: &Request) -> Response {
        let mut records = privim_obs::exported_spans();
        let timeout = Duration::from_millis(500).min(self.config.timeout);
        for backend in &self.backends {
            // A fresh connection, not the pool: debug fan-out must not
            // steal keep-alive sockets from the serving path.
            if let Ok(mut client) = HttpClient::with_timeout(backend.addr.as_str(), timeout) {
                if let Ok(resp) = client.get("/debug/spans") {
                    if resp.status == 200 {
                        if let Ok(text) = String::from_utf8(resp.body) {
                            records.extend(privim_obs::parse_spans_jsonl(&text));
                        }
                    }
                }
            }
        }
        let filter = query_param(&req.path, "request_id")
            .map(|id| TraceContext::from_request_id(&id).trace_id)
            .or_else(|| {
                query_param(&req.path, "trace").and_then(|t| u128::from_str_radix(&t, 16).ok())
            });
        Response::text(200, privim_obs::render_tier_traces(&records, filter))
    }

    /// Hand-rolled deterministic JSON for `GET /router/backends`.
    fn backends_status(&self) -> String {
        let mut out = String::from("{\"backends\":[");
        for (i, backend) in self.backends.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let breaker = backend.breaker.lock().unwrap_or_else(|e| e.into_inner());
            let digest = backend
                .digest
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone()
                .unwrap_or_default();
            out.push_str(&format!(
                "{{\"addr\":\"{}\",\"healthy\":{},\"digest_agrees\":{},\"breaker\":\"{}\",\"trips\":{},\"digest\":\"{}\"}}",
                backend.addr,
                backend.healthy.load(Ordering::SeqCst),
                backend.digest_ok.load(Ordering::SeqCst),
                breaker.state().as_str(),
                breaker.trips(),
                digest,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Exports one `router.attempt` span (no-op unless span export is armed).
/// A hedge leg carries `hedge=true` instead of a backoff annotation; the
/// losing leg of a resolved race is marked `cancelled=true` and excluded
/// from latency decomposition.
#[allow(clippy::too_many_arguments)]
fn export_attempt_span(
    ctx: &TraceContext,
    start_us: u64,
    elapsed: Duration,
    attempt_no: u64,
    backend: &str,
    backoff_ms: u64,
    hedge: bool,
    ok: bool,
    cancelled: bool,
) {
    if !privim_obs::span_export_armed() {
        return;
    }
    let outcome = if cancelled {
        "cancelled"
    } else if ok {
        "ok"
    } else {
        "error"
    };
    let mut annotations = vec![
        ("attempt".to_string(), attempt_no.to_string()),
        ("backend".to_string(), backend.to_string()),
        ("outcome".to_string(), outcome.to_string()),
    ];
    if hedge {
        annotations.push(("hedge".to_string(), "true".to_string()));
    } else {
        annotations.push(("backoff_ms".to_string(), backoff_ms.to_string()));
    }
    if cancelled {
        annotations.push(("cancelled".to_string(), "true".to_string()));
    }
    privim_obs::export_span(privim_obs::SpanRecord {
        process: String::new(),
        name: "router.attempt".into(),
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_span_id: ctx.parent_span_id,
        start_us,
        dur_us: elapsed.as_micros() as u64,
        annotations,
    });
}

/// Exports a zero-duration `router.breaker` marker span for a breaker
/// state transition. Transitions happen outside any one request, so the
/// span roots its own trace, derived from (backend, trip count,
/// transition) — identical across reruns of the same failure sequence.
fn export_breaker_span(addr: &str, transition: &str, trips: u64) {
    if !privim_obs::span_export_armed() {
        return;
    }
    let ctx = TraceContext::from_request_id(&format!("breaker-{addr}-{trips}-{transition}"));
    privim_obs::export_span(privim_obs::SpanRecord {
        process: String::new(),
        name: "router.breaker".into(),
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_span_id: None,
        start_us: privim_obs::now_micros(),
        dur_us: 0,
        annotations: vec![
            ("backend".to_string(), addr.to_string()),
            ("transition".to_string(), transition.to_string()),
            ("trips".to_string(), trips.to_string()),
        ],
    });
}

/// Sends `req` to one backend and converts the reply. 503s and transport
/// errors are attempt failures (the retriable class); every other status
/// — including 4xx and 500 — is a final answer to relay as-is.
fn send_once(
    backend: &Backend,
    req: &Request,
    timeout: Duration,
    trace: Option<&TraceContext>,
) -> Result<Response, String> {
    let mut client = backend
        .client(timeout)
        .map_err(|e| format!("{}: connect: {e}", backend.addr))?;
    // Forward the request id so logs correlate across the two tiers, and
    // the attempt's trace context so the replica's request span parents
    // under this attempt (see `privim_obs::trace`).
    let trace_header = trace.map(|t| t.to_trace_header());
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(id) = req.header("x-request-id") {
        headers.push(("X-Request-Id", id));
    }
    if let Some(value) = trace_header.as_deref() {
        headers.push(("X-Privim-Trace", value));
    }
    let body = if req.method == Method::Post {
        Some(req.body.as_slice())
    } else {
        None
    };
    let outcome = client.request_with_headers(&req.method.to_string(), &req.path, &headers, body);
    match outcome {
        Ok(resp) if resp.status == 503 => Err(format!("{}: backend said 503", backend.addr)),
        Ok(resp) => {
            let mut out = Response {
                status: resp.status,
                headers: Vec::new(),
                body: resp.body.clone(),
            };
            for (name, value) in &resp.headers {
                // Hop-by-hop and framing headers are re-derived by our
                // own writer, and the server layer stamps its own
                // X-Request-Id echo; everything else passes through.
                if name != "connection" && name != "content-length" && name != "x-request-id" {
                    out.headers.push((canonical_header(name), value.clone()));
                }
            }
            backend.park(client);
            Ok(out)
        }
        Err(e) => Err(format!("{}: {e}", backend.addr)),
    }
}

/// Extracts a (non-empty) query parameter value from a request path.
/// No percent-decoding: the values this router accepts (request ids,
/// hex trace ids) are plain tokens by construction.
fn query_param(path: &str, key: &str) -> Option<String> {
    let (_, query) = path.split_once('?')?;
    for pair in query.split('&') {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == key && !v.is_empty() {
            return Some(v.to_string());
        }
    }
    None
}

/// Restores canonical casing for the header names our stack emits (the
/// client lower-cases on parse; responses should leave the router the
/// same way they left the replica).
fn canonical_header(lower: &str) -> String {
    let mut out = String::with_capacity(lower.len());
    let mut upper_next = true;
    for c in lower.chars() {
        if upper_next && c.is_ascii_alphabetic() {
            out.push(c.to_ascii_uppercase());
            upper_next = false;
        } else {
            out.push(c);
        }
        if c == '-' {
            upper_next = true;
        }
    }
    out
}

/// Pulls `"checkpoint_digest":"…"` out of a `/version` body without a
/// JSON parser (the value is a fixed-alphabet hex digest, so substring
/// extraction is unambiguous).
pub fn extract_checkpoint_digest(body: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(body).ok()?;
    let key = "\"checkpoint_digest\":\"";
    let start = text.find(key)? + key.len();
    let rest = &text[start..];
    let end = rest.find('"')?;
    let digest = &rest[..end];
    if digest.is_empty() || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Some(digest.to_string())
}

/// Majority digest among reporting backends; ties break toward the
/// digest seen at the lowest backend index.
fn majority_digest(digests: &[Option<String>]) -> Option<String> {
    let mut best: Option<(&String, usize)> = None;
    for digest in digests.iter().flatten() {
        let count = digests
            .iter()
            .flatten()
            .filter(|other| *other == digest)
            .count();
        match best {
            Some((_, best_count)) if best_count >= count => {}
            _ => best = Some((digest, count)),
        }
    }
    best.map(|(d, _)| d.clone())
}

impl Handler for Router {
    fn handle(&self, req: &Request) -> Response {
        match (&req.method, req.route()) {
            // The router's own operational surface; everything else is
            // the replicas' business and is forwarded verbatim.
            (Method::Get, "/healthz") => Response::text(200, "ok\n"),
            (Method::Get, "/metrics") => {
                let text = privim_obs::render_prometheus_with_profile(
                    &privim_obs::snapshot(),
                    &privim_obs::profile_report(),
                );
                Response::new(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    text.into_bytes(),
                )
            }
            (Method::Get, "/router/backends") => {
                Response::json(200, self.backends_status().into_bytes())
            }
            (Method::Get, "/debug/spans") => Response::text(200, privim_obs::spans_jsonl()),
            (Method::Get, "/debug/tier-trace") => self.tier_trace(req),
            _ => self.forward(req),
        }
    }

    fn route_label(&self, req: &Request) -> &'static str {
        match req.route() {
            "/healthz" => "healthz",
            "/version" => "version",
            "/metrics" => "metrics",
            "/slo" => "slo",
            "/v1/seeds" => "seeds",
            "/v1/spread" => "spread",
            "/router/backends" => "router",
            "/debug/spans" | "/debug/tier-trace" => "debug",
            _ => "other",
        }
    }

    /// Queue wait measured by the front server feeds the router's hop
    /// decomposition histograms.
    fn on_queue_wait(&self, wait: Duration) {
        privim_obs::histogram("router.hop.queue_wait").record(wait.as_secs_f64());
    }

    /// Ready while at least one backend is routable — the tier can
    /// answer something.
    fn ready(&self) -> bool {
        self.backends.iter().any(|b| b.routable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    #[test]
    fn breaker_trips_after_threshold_and_probes_after_cooldown() {
        let mut breaker = CircuitBreaker::new(3, 1_000, 7);
        assert!(breaker.allow(0));
        breaker.record_failure(0);
        breaker.record_failure(1);
        assert_eq!(breaker.state(), BreakerState::Closed, "two of three");
        assert!(breaker.allow(2));
        breaker.record_failure(2);
        assert_eq!(breaker.state(), BreakerState::Open, "third failure trips");
        assert!(!breaker.allow(3), "open fails fast");
        assert!(!breaker.allow(1_000), "still inside cooldown + jitter");
        // The jittered reopen time is deterministic: find it by probing.
        let reopen = (1_000..=1_260).find(|&t| {
            let mut b = CircuitBreaker::new(3, 1_000, 7);
            b.record_failure(0);
            b.record_failure(1);
            b.record_failure(2);
            b.allow(t)
        });
        let reopen = reopen.expect("jitter is bounded by cooldown/4 (plus trip base at t=2)");
        assert!(breaker.allow(reopen + 2), "probe admitted at reopen time");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.allow(reopen + 2), "only one probe in flight");
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.allow(reopen + 3));
    }

    #[test]
    fn half_open_probe_failure_reopens_with_new_jitter() {
        let mut a = CircuitBreaker::new(1, 100, 42);
        let mut b = CircuitBreaker::new(1, 100, 42);
        a.record_failure(0);
        b.record_failure(0);
        assert_eq!(a.state(), BreakerState::Open);
        // Same seed ⇒ identical jitter sequences (deterministic).
        for t in 0..2_000 {
            assert_eq!(a.allow(t), b.allow(t), "diverged at t={t}");
            if a.state() == BreakerState::HalfOpen {
                a.record_failure(t);
                b.record_failure(t);
                assert_eq!(a.state(), BreakerState::Open, "probe failure reopens");
            }
        }
        assert!(a.trips() > 1, "probe failures re-tripped the breaker");
    }

    #[test]
    fn digest_extraction_and_majority() {
        let body = br#"{"name":"privim-serve","checkpoint_digest":"00c0ffee","graph_nodes":9}"#;
        assert_eq!(
            extract_checkpoint_digest(body),
            Some("00c0ffee".to_string())
        );
        assert_eq!(extract_checkpoint_digest(b"{}"), None);
        assert_eq!(
            extract_checkpoint_digest(br#"{"checkpoint_digest":"not hex!"}"#),
            None
        );
        let digests = vec![
            Some("aa".to_string()),
            Some("bb".to_string()),
            Some("bb".to_string()),
            None,
        ];
        assert_eq!(majority_digest(&digests), Some("bb".to_string()));
        assert_eq!(
            majority_digest(&[Some("aa".to_string()), Some("bb".to_string())]),
            Some("aa".to_string()),
            "ties break toward the lowest index"
        );
        assert_eq!(majority_digest(&[None, None]), None);
    }

    #[test]
    fn canonical_header_restores_casing() {
        assert_eq!(canonical_header("content-type"), "Content-Type");
        assert_eq!(canonical_header("x-request-id"), "X-Request-Id");
        assert_eq!(canonical_header("retry-after"), "Retry-After");
    }

    fn start_backend(tag: &'static str) -> Server {
        let handler = move |req: &Request| match req.route() {
            "/v1/spread" => {
                // Deterministic body independent of which replica
                // answers — the property hedging relies on.
                Response::json(200, b"{\"spread\":1.0,\"tag\":\"common\"}".to_vec())
            }
            "/tag" => Response::text(200, tag),
            _ => Response::json(200, req.body.clone()),
        };
        Server::start(
            ServerConfig {
                workers: 2,
                queue_depth: 16,
                ..ServerConfig::default()
            },
            Arc::new(handler),
        )
        .expect("bind backend")
    }

    fn router_over(backends: Vec<String>, config: RouterConfig) -> (Arc<Router>, Server) {
        let router = Router::new(RouterConfig { backends, ..config }).unwrap();
        let server = Server::start(
            ServerConfig {
                workers: 2,
                queue_depth: 16,
                ..ServerConfig::default()
            },
            Arc::clone(&router) as Arc<dyn Handler>,
        )
        .expect("bind router");
        (router, server)
    }

    #[test]
    fn all_backends_marked_down_fails_open_through_the_breakers() {
        // Replicas whose /readyz always says not-ready (handler reports
        // unready) but which serve traffic fine: after enough probe
        // misses both are marked unhealthy — yet the router must keep
        // routing (fail-open) rather than 503 a healthy tier.
        struct Unready;
        impl Handler for Unready {
            fn handle(&self, _req: &Request) -> Response {
                Response::text(200, "pong")
            }
            fn ready(&self) -> bool {
                false
            }
        }
        let a = Server::start(
            ServerConfig {
                workers: 1,
                queue_depth: 8,
                ..ServerConfig::default()
            },
            Arc::new(Unready),
        )
        .unwrap();
        let b = Server::start(
            ServerConfig {
                workers: 1,
                queue_depth: 8,
                ..ServerConfig::default()
            },
            Arc::new(Unready),
        )
        .unwrap();
        let (router, front) = router_over(
            vec![a.local_addr().to_string(), b.local_addr().to_string()],
            RouterConfig {
                retries: 1,
                ..RouterConfig::default()
            },
        );
        router.poll_backends_once();
        router.poll_backends_once();
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        let status = client.get("/router/backends").unwrap();
        let text = String::from_utf8(status.body).unwrap();
        assert!(
            !text.contains("\"healthy\":true"),
            "both replicas should be marked down: {text}"
        );
        let before = privim_obs::counter("router.panic_picks").get();
        let resp = client.get("/tag").unwrap();
        assert_eq!(resp.status, 200, "fail-open must keep serving");
        assert_eq!(resp.body, b"pong");
        assert!(
            privim_obs::counter("router.panic_picks").get() > before,
            "the fail-open path should be counted"
        );
        front.shutdown();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn routes_round_robin_and_fails_over_when_a_backend_dies() {
        let a = start_backend("a");
        let b = start_backend("b");
        let addr_a = a.local_addr().to_string();
        let addr_b = b.local_addr().to_string();
        let (_router, front) = router_over(
            vec![addr_a, addr_b],
            RouterConfig {
                retries: 3,
                backoff: Duration::from_millis(5),
                breaker_failures: 2,
                breaker_cooldown: Duration::from_millis(200),
                timeout: Duration::from_secs(2),
                ..RouterConfig::default()
            },
        );
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        // Both replicas answer while healthy.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..6 {
            let resp = client.get("/tag").unwrap();
            assert_eq!(resp.status, 200);
            seen.insert(resp.body.clone());
        }
        assert_eq!(seen.len(), 2, "round-robin reached both replicas");
        // Kill one replica: every request must still succeed via retry.
        a.shutdown();
        for i in 0..10 {
            let resp = client
                .post("/echo", format!("{{\"i\":{i}}}").as_bytes())
                .unwrap_or_else(|e| panic!("request {i} failed across failover: {e}"));
            assert_eq!(resp.status, 200, "request {i}");
        }
        front.shutdown();
        b.shutdown();
    }

    #[test]
    fn router_status_reports_breaker_and_health_state() {
        let b = start_backend("b");
        let addr_b = b.local_addr().to_string();
        // One live backend and one black hole (reserved but unserved).
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap().to_string();
        drop(dead);
        let (router, front) = router_over(
            vec![dead_addr.clone(), addr_b],
            RouterConfig {
                retries: 2,
                backoff: Duration::from_millis(1),
                breaker_failures: 1,
                breaker_cooldown: Duration::from_secs(30),
                timeout: Duration::from_millis(500),
                ..RouterConfig::default()
            },
        );
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        // First request hits the dead backend, trips its breaker, and is
        // retried against the live one.
        assert_eq!(client.get("/tag").unwrap().status, 200);
        let status = client.get("/router/backends").unwrap();
        assert_eq!(status.status, 200);
        let text = String::from_utf8(status.body).unwrap();
        assert!(
            text.contains(&format!("\"addr\":\"{dead_addr}\"")),
            "{text}"
        );
        assert!(text.contains("\"breaker\":\"open\""), "{text}");
        assert!(text.contains("\"breaker\":\"closed\""), "{text}");
        // With the breaker open, requests skip the dead backend: no
        // retry delay, still correct.
        for _ in 0..5 {
            assert_eq!(client.get("/tag").unwrap().status, 200);
        }
        // Health polls mark the dead backend unhealthy once the misses
        // reach `probe_down_after` (one flaky probe is forgiven).
        router.poll_backends_once();
        let text = String::from_utf8(client.get("/router/backends").unwrap().body).unwrap();
        assert!(
            !text.contains("\"healthy\":false"),
            "a single missed probe must not pull the replica: {text}"
        );
        router.poll_backends_once();
        let status = client.get("/router/backends").unwrap();
        let text = String::from_utf8(status.body).unwrap();
        assert!(text.contains("\"healthy\":false"), "{text}");
        assert!(router.ready(), "one live backend keeps the tier ready");
        front.shutdown();
        b.shutdown();
    }

    #[test]
    fn hedging_uses_the_fast_replica_for_spread() {
        // Replica "slow" stalls /v1/spread; replica "fast" answers
        // immediately with the identical body.
        let slow = Server::start(
            ServerConfig {
                workers: 2,
                queue_depth: 16,
                ..ServerConfig::default()
            },
            Arc::new(|req: &Request| {
                if req.route() == "/v1/spread" {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Response::json(200, b"{\"spread\":1.0,\"tag\":\"common\"}".to_vec())
            }),
        )
        .unwrap();
        let fast = start_backend("fast");
        let hedges_before = privim_obs::counter("router.hedges").get();
        let (_router, front) = router_over(
            vec![slow.local_addr().to_string(), fast.local_addr().to_string()],
            RouterConfig {
                retries: 1,
                hedge_after: Some(Duration::from_millis(50)),
                timeout: Duration::from_secs(3),
                ..RouterConfig::default()
            },
        );
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        let started = Instant::now();
        // The round-robin cursor starts at the slow replica, so the
        // first spread request must be hedged to come back quickly.
        let resp = client.post("/v1/spread", b"{\"seeds\":[1]}").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"spread\":1.0,\"tag\":\"common\"}");
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "hedge should beat the 400 ms replica, took {:?}",
            started.elapsed()
        );
        assert!(
            privim_obs::counter("router.hedges").get() > hedges_before,
            "a hedge was launched"
        );
        front.shutdown();
        slow.shutdown();
        fast.shutdown();
    }

    #[test]
    fn query_param_extraction() {
        assert_eq!(
            query_param("/debug/tier-trace?request_id=abc", "request_id"),
            Some("abc".to_string())
        );
        assert_eq!(
            query_param("/p?a=1&trace=00ff", "trace"),
            Some("00ff".to_string())
        );
        assert_eq!(query_param("/p?trace=", "trace"), None);
        assert_eq!(query_param("/p", "trace"), None);
    }

    #[test]
    fn hedged_spread_exports_exactly_two_attempt_spans() {
        // Slow primary, fast hedge: the race resolves with the hedge leg
        // winning, and the span ring must show exactly one primary
        // attempt span (cancelled) and one hedge span (winner), both
        // parented under the request's root span with ids that are pure
        // functions of the request id.
        let slow = Server::start(
            ServerConfig {
                workers: 2,
                queue_depth: 16,
                ..ServerConfig::default()
            },
            Arc::new(|req: &Request| {
                if req.route() == "/v1/spread" {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Response::json(200, b"{\"spread\":1.0,\"tag\":\"common\"}".to_vec())
            }),
        )
        .unwrap();
        let fast = start_backend("fast");
        let (_router, front) = router_over(
            vec![slow.local_addr().to_string(), fast.local_addr().to_string()],
            RouterConfig {
                retries: 1,
                hedge_after: Some(Duration::from_millis(50)),
                timeout: Duration::from_secs(3),
                ..RouterConfig::default()
            },
        );
        let id = "hedge-span-test-0001";
        let root = TraceContext::from_request_id(id);
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        let resp = client
            .request_with_headers(
                "POST",
                "/v1/spread",
                &[("X-Request-Id", id)],
                Some(b"{\"seeds\":[1]}"),
            )
            .unwrap();
        assert_eq!(resp.status, 200);
        // The ring is shared across tests in this binary; the unique
        // request id isolates this request's trace.
        let spans: Vec<_> = privim_obs::exported_spans()
            .into_iter()
            .filter(|s| s.trace_id == root.trace_id && s.name == "router.attempt")
            .collect();
        assert_eq!(spans.len(), 2, "primary + hedge leg: {spans:?}");
        for span in &spans {
            assert_eq!(
                span.parent_span_id,
                Some(root.span_id),
                "attempt spans parent under the request root"
            );
        }
        let primary_id = root.child_n(CHILD_ATTEMPT_BASE + 1).span_id;
        let hedge_id = root.child_n(CHILD_HEDGE_BASE + 1).span_id;
        let primary = spans.iter().find(|s| s.span_id == primary_id);
        let hedge = spans.iter().find(|s| s.span_id == hedge_id);
        let primary = primary.expect("primary attempt span has the derived id");
        let hedge = hedge.expect("hedge leg span has the derived id");
        assert_eq!(
            primary.annotation("cancelled"),
            Some("true"),
            "the slow primary loses and is marked cancelled: {primary:?}"
        );
        assert_eq!(hedge.annotation("cancelled"), None, "{hedge:?}");
        assert_eq!(hedge.annotation("outcome"), Some("ok"));
        assert_eq!(hedge.annotation("hedge"), Some("true"));
        front.shutdown();
        slow.shutdown();
        fast.shutdown();
    }

    #[test]
    fn retry_ladder_exports_monotone_backoff_annotations() {
        // Two dead backends ahead of a live one: the request climbs the
        // retry ladder (attempts 1, 2, 3) and each attempt span carries
        // the backoff it waited — 0, base, 2*base.
        let live = start_backend("live");
        let mut dead_addrs = Vec::new();
        for _ in 0..2 {
            let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            dead_addrs.push(sock.local_addr().unwrap().to_string());
            drop(sock);
        }
        let (_router, front) = router_over(
            vec![
                dead_addrs[0].clone(),
                dead_addrs[1].clone(),
                live.local_addr().to_string(),
            ],
            RouterConfig {
                retries: 3,
                backoff: Duration::from_millis(10),
                breaker_failures: 10,
                timeout: Duration::from_millis(500),
                ..RouterConfig::default()
            },
        );
        let id = "retry-ladder-test-0001";
        let root = TraceContext::from_request_id(id);
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        let resp = client
            .request_with_headers("GET", "/tag", &[("X-Request-Id", id)], None)
            .unwrap();
        assert_eq!(resp.status, 200);
        let mut spans: Vec<_> = privim_obs::exported_spans()
            .into_iter()
            .filter(|s| s.trace_id == root.trace_id && s.name == "router.attempt")
            .collect();
        spans.sort_by_key(|s| s.annotation("attempt").and_then(|a| a.parse::<u64>().ok()));
        assert_eq!(spans.len(), 3, "attempts 1..3: {spans:?}");
        let mut backoffs = Vec::new();
        for (k, span) in spans.iter().enumerate() {
            let attempt_no = k as u64 + 1;
            assert_eq!(
                span.annotation("attempt"),
                Some(attempt_no.to_string().as_str())
            );
            assert_eq!(
                span.span_id,
                root.child_n(CHILD_ATTEMPT_BASE + attempt_no).span_id,
                "attempt {attempt_no} span id is a pure function of the request id"
            );
            backoffs.push(
                span.annotation("backoff_ms")
                    .and_then(|b| b.parse::<u64>().ok())
                    .expect("non-hedge attempts carry backoff_ms"),
            );
        }
        assert_eq!(backoffs, vec![0, 10, 20], "exponential ladder");
        assert_eq!(spans[2].annotation("outcome"), Some("ok"));
        front.shutdown();
        live.shutdown();
    }

    #[test]
    fn tier_trace_endpoint_assembles_router_spans() {
        let live = start_backend("live");
        let (_router, front) = router_over(
            vec![live.local_addr().to_string()],
            RouterConfig {
                retries: 1,
                ..RouterConfig::default()
            },
        );
        let id = "tier-trace-endpoint-test-1";
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        let resp = client
            .request_with_headers("GET", "/tag", &[("X-Request-Id", id)], None)
            .unwrap();
        assert_eq!(resp.status, 200);
        let trace_hex = format!("{:032x}", TraceContext::from_request_id(id).trace_id);
        let view = client
            .get(&format!("/debug/tier-trace?request_id={id}"))
            .unwrap();
        assert_eq!(view.status, 200);
        let text = String::from_utf8(view.body).unwrap();
        assert!(text.contains(&format!("trace {trace_hex}")), "{text}");
        assert!(text.contains("router.attempt"), "{text}");
        assert!(
            text.contains("connected") && !text.contains("disconnected"),
            "{text}"
        );
        // The raw span feed serves the same records as JSONL.
        let feed = client.get("/debug/spans").unwrap();
        let records = privim_obs::parse_spans_jsonl(&String::from_utf8(feed.body).unwrap());
        assert!(
            records
                .iter()
                .any(|r| r.trace_id == TraceContext::from_request_id(id).trace_id),
            "span feed includes the request's trace"
        );
        front.shutdown();
        live.shutdown();
    }

    #[test]
    fn digest_disagreement_pulls_a_replica_from_rotation() {
        // Two fake replicas reporting different digests: the majority
        // (lowest index on a tie) stays, the other is pulled.
        let mk = |digest: &'static str| {
            Server::start(
                ServerConfig {
                    workers: 1,
                    queue_depth: 8,
                    ..ServerConfig::default()
                },
                Arc::new(move |req: &Request| match req.route() {
                    "/version" => Response::json(
                        200,
                        format!("{{\"checkpoint_digest\":\"{digest}\"}}").into_bytes(),
                    ),
                    _ => Response::text(200, digest),
                }),
            )
            .unwrap()
        };
        let a = mk("aaaa");
        let b = mk("bbbb");
        let (router, front) = router_over(
            vec![a.local_addr().to_string(), b.local_addr().to_string()],
            RouterConfig {
                retries: 1,
                ..RouterConfig::default()
            },
        );
        router.poll_backends_once();
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        for _ in 0..6 {
            let resp = client.get("/tag").unwrap();
            assert_eq!(resp.body, b"aaaa", "only the majority replica serves");
        }
        let status = client.get("/router/backends").unwrap();
        let text = String::from_utf8(status.body).unwrap();
        assert!(text.contains("\"digest_agrees\":false"), "{text}");
        front.shutdown();
        a.shutdown();
        b.shutdown();
    }
}
