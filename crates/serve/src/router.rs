//! Replicated-tier front-end: health-checked routing with per-replica
//! circuit breakers, bounded retry, and tail-latency hedging.
//!
//! The router is itself a [`Handler`], so it runs behind the same
//! acceptor/queue/worker machinery as the application — one binary, two
//! roles. It forwards every application route to one of N replica
//! backends and answers only its own operational surface
//! (`/healthz`, `/metrics`, `/router/backends`) locally:
//!
//! ```text
//!             ┌────────┐  breaker ✓  ┌──────────┐
//!  clients ──▶│ router ├────────────▶│ replica 0 │  /readyz + /version
//!             │        ├──retry────▶│ replica 1 │  polled by the health
//!             └────────┘  backoff    └──────────┘  thread
//! ```
//!
//! Correctness of retry and hedging rests on the serving determinism
//! contract: replicas agreeing on a checkpoint digest produce
//! byte-identical bodies for identical requests (scores are fixed at
//! load time, `/v1/spread` uses thread-invariant splitmix64 trial
//! blocks), so re-sending a request to another replica — or racing two
//! replicas and keeping the first answer — can never change what the
//! client observes. The health thread enforces the digest-agreement
//! half: a replica whose `/version` digest disagrees with the majority
//! is pulled from rotation until it converges.
//!
//! Every transition (breaker trips and recoveries, retries, hedges
//! launched/won, backends lost/regained) emits an obs event and bumps a
//! `router.*` counter, exported as `privim_router_*` in Prometheus.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use privim_obs::fault::splitmix64;

use crate::client::HttpClient;
use crate::http::{Method, Request, Response};
use crate::server::Handler;

/// Maximum pooled keep-alive connections per backend.
const POOL_PER_BACKEND: usize = 4;

/// Circuit-breaker phase. `Open` fails fast; `HalfOpen` lets exactly one
/// probe through to decide between closing and re-opening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are counted.
    Closed,
    /// Tripped: requests are refused until the jittered reopen time.
    Open,
    /// Probe in flight: its outcome decides `Closed` vs `Open`.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case label for status bodies and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// A per-replica circuit breaker over a caller-supplied millisecond
/// clock (no wall-clock reads, so tests drive it deterministically).
///
/// Closed → Open after `threshold` consecutive failures; Open → HalfOpen
/// when `allow` is first called past the reopen time (that call *is* the
/// probe); HalfOpen → Closed on probe success, → Open on probe failure.
/// Each trip's cooldown gets deterministic seeded jitter — splitmix64 of
/// `(seed, trip count)` — so a fleet of replicas tripped by the same
/// outage does not probe a recovering backend in lockstep.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_ms: u64,
    seed: u64,
    state: BreakerState,
    consecutive_failures: u32,
    trips: u64,
    reopen_at_ms: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures,
    /// cooling down `cooldown_ms` (+ jitter from `seed`) per trip.
    pub fn new(threshold: u32, cooldown_ms: u64, seed: u64) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown_ms: cooldown_ms.max(1),
            seed,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            reopen_at_ms: 0,
        }
    }

    /// Whether a request may be sent at `now_ms`. In `Open`, the first
    /// call at or past the reopen time transitions to `HalfOpen` and is
    /// allowed as the probe; later calls wait for the probe's verdict.
    pub fn allow(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_ms >= self.reopen_at_ms {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => false,
        }
    }

    /// Records a successful response: closes the breaker.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed attempt at `now_ms`; trips to `Open` from
    /// `HalfOpen` (failed probe) or on the `threshold`-th consecutive
    /// failure in `Closed`.
    pub fn record_failure(&mut self, now_ms: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.trips += 1;
            // Jitter in [0, cooldown/4]: deterministic per (seed, trip).
            let jitter = splitmix64(self.seed ^ self.trips) % (self.cooldown_ms / 4 + 1);
            self.reopen_at_ms = now_ms + self.cooldown_ms + jitter;
            self.state = BreakerState::Open;
        }
    }

    /// Current phase.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Replica addresses (`host:port`), tried in round-robin order.
    pub backends: Vec<String>,
    /// Extra attempts after the first (on connect errors, timeouts, and
    /// 503s — the idempotent-by-construction failure modes).
    pub retries: u32,
    /// Base for the deterministic exponential backoff between attempts
    /// (`backoff * 2^(attempt-1)`).
    pub backoff: Duration,
    /// Per-attempt request timeout.
    pub timeout: Duration,
    /// Hedge `/v1/spread` requests still unanswered after this delay by
    /// racing a second replica (first answer wins). `None` disables.
    pub hedge_after: Option<Duration>,
    /// Consecutive failures that trip a replica's breaker.
    pub breaker_failures: u32,
    /// Base breaker cooldown before the half-open probe.
    pub breaker_cooldown: Duration,
    /// Health-check poll interval (`/readyz` + `/version` digest).
    pub health_interval: Duration,
    /// Consecutive failed health probes before a replica is pulled from
    /// rotation. Probes ride the same network as traffic, so a single
    /// flaky probe connection must not unseat a healthy replica.
    pub probe_down_after: u32,
    /// Seed for breaker reopen jitter (per-backend streams are derived
    /// from it with splitmix64).
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            backends: Vec::new(),
            retries: 2,
            backoff: Duration::from_millis(50),
            timeout: Duration::from_secs(10),
            hedge_after: None,
            breaker_failures: 3,
            breaker_cooldown: Duration::from_secs(1),
            health_interval: Duration::from_millis(500),
            probe_down_after: 2,
            seed: 0,
        }
    }
}

/// One replica: its address, breaker, health-thread verdicts, and a
/// small pool of kept-alive connections.
struct Backend {
    addr: String,
    breaker: Mutex<CircuitBreaker>,
    /// `/readyz` said 200 on the last poll (starts optimistic so traffic
    /// flows before the first poll completes; breakers catch dead ones).
    healthy: AtomicBool,
    /// Digest agreement with the majority (true while unknown).
    digest_ok: AtomicBool,
    /// Consecutive failed health probes (any success resets).
    probe_failures: AtomicU32,
    digest: Mutex<Option<String>>,
    pool: Mutex<Vec<HttpClient>>,
}

impl Backend {
    fn new(addr: String, config: &RouterConfig, index: usize) -> Backend {
        Backend {
            addr,
            breaker: Mutex::new(CircuitBreaker::new(
                config.breaker_failures,
                config.breaker_cooldown.as_millis() as u64,
                splitmix64(config.seed ^ (index as u64 + 1)),
            )),
            healthy: AtomicBool::new(true),
            digest_ok: AtomicBool::new(true),
            probe_failures: AtomicU32::new(0),
            digest: Mutex::new(None),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Health-thread verdicts only (the breaker needs a clock and is
    /// consulted separately at pick time).
    fn routable(&self) -> bool {
        self.healthy.load(Ordering::SeqCst) && self.digest_ok.load(Ordering::SeqCst)
    }

    fn client(&self, timeout: Duration) -> std::io::Result<HttpClient> {
        if let Some(client) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok(client);
        }
        HttpClient::with_timeout(self.addr.as_str(), timeout)
    }

    fn park(&self, client: HttpClient) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < POOL_PER_BACKEND {
            pool.push(client);
        }
    }
}

/// The front-end handler. Construct with [`Router::new`], hand it to
/// [`crate::server::Server::start`], and (optionally) spawn the health
/// thread with [`Router::spawn_health_thread`].
pub struct Router {
    backends: Vec<Arc<Backend>>,
    config: RouterConfig,
    /// Millisecond-clock base for breaker timing.
    epoch: Instant,
    /// Round-robin cursor.
    next: AtomicUsize,
    stop: Arc<AtomicBool>,
}

impl Router {
    /// Builds a router over `config.backends` (must be non-empty).
    pub fn new(config: RouterConfig) -> Result<Arc<Router>, String> {
        if config.backends.is_empty() {
            return Err("router needs at least one backend".into());
        }
        let backends = config
            .backends
            .iter()
            .enumerate()
            .map(|(i, addr)| Arc::new(Backend::new(addr.clone(), &config, i)))
            .collect();
        privim_obs::gauge("router.backends").set(config.backends.len() as f64);
        Ok(Arc::new(Router {
            backends,
            config,
            epoch: Instant::now(),
            next: AtomicUsize::new(0),
            stop: Arc::new(AtomicBool::new(false)),
        }))
    }

    /// The shared stop flag; setting it ends the health thread.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Spawns the health thread: every `health_interval` it polls each
    /// backend's `/readyz`, pulls the checkpoint digest from `/version`,
    /// and pulls replicas that disagree with the majority digest out of
    /// rotation. Runs until [`Router::stop_flag`] is set.
    pub fn spawn_health_thread(self: &Arc<Router>) -> std::thread::JoinHandle<()> {
        let router = Arc::clone(self);
        std::thread::Builder::new()
            .name("router-health".into())
            .spawn(move || {
                while !router.stop.load(Ordering::SeqCst) {
                    router.poll_backends_once();
                    let mut slept = Duration::ZERO;
                    // Sleep in slices so shutdown is prompt.
                    while slept < router.config.health_interval
                        && !router.stop.load(Ordering::SeqCst)
                    {
                        let slice = Duration::from_millis(50);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            })
            .expect("spawn router-health")
    }

    /// One health-check sweep (public so tests and the CLI can force a
    /// poll without waiting out the interval).
    pub fn poll_backends_once(&self) {
        let timeout = Duration::from_millis(500).min(self.config.timeout);
        let mut digests: Vec<Option<String>> = Vec::with_capacity(self.backends.len());
        for backend in &self.backends {
            let mut probe_ok = false;
            let mut digest = None;
            if let Ok(mut client) = HttpClient::with_timeout(backend.addr.as_str(), timeout) {
                probe_ok = client
                    .get("/readyz")
                    .map(|r| r.status == 200)
                    .unwrap_or(false);
                if probe_ok {
                    if let Ok(resp) = client.get("/version") {
                        if resp.status == 200 {
                            digest = extract_checkpoint_digest(&resp.body);
                        }
                    }
                }
            }
            // One flaky probe (the probe shares the traffic network, so
            // it fails under the same chaos) must not pull a replica:
            // only `probe_down_after` consecutive failures do.
            let healthy = if probe_ok {
                backend.probe_failures.store(0, Ordering::SeqCst);
                true
            } else {
                let misses = backend.probe_failures.fetch_add(1, Ordering::SeqCst) + 1;
                misses < self.config.probe_down_after.max(1)
                    && backend.healthy.load(Ordering::SeqCst)
            };
            let was = backend.healthy.swap(healthy, Ordering::SeqCst);
            if was != healthy {
                privim_obs::counter(if healthy {
                    "router.backend_up"
                } else {
                    "router.backend_down"
                })
                .add(1);
                privim_obs::info!(
                    "router",
                    "backend_health",
                    backend = backend.addr.clone(),
                    healthy = healthy,
                );
            }
            if probe_ok {
                *backend.digest.lock().unwrap_or_else(|e| e.into_inner()) = digest.clone();
            }
            digests.push(if probe_ok { digest } else { None });
        }

        // Digest agreement: majority among healthy backends that report
        // one (ties break toward the lowest backend index). Unknown
        // digests never disqualify — a replica without /version (or one
        // we could not parse) is judged by /readyz alone.
        let majority = majority_digest(&digests);
        let mut healthy_count = 0u64;
        for (backend, digest) in self.backends.iter().zip(&digests) {
            let agrees = match (&majority, digest) {
                (Some(m), Some(d)) => m == d,
                _ => true,
            };
            let did = backend.digest_ok.swap(agrees, Ordering::SeqCst);
            if did != agrees {
                privim_obs::counter("router.digest_disagreements").add(1);
                privim_obs::warn!(
                    "router",
                    "digest_agreement",
                    backend = backend.addr.clone(),
                    agrees = agrees,
                    digest = digest.clone().unwrap_or_default(),
                    majority = majority.clone().unwrap_or_default(),
                );
            }
            if backend.routable() {
                healthy_count += 1;
            }
        }
        privim_obs::gauge("router.backends_healthy").set(healthy_count as f64);
    }

    /// Picks the next routable backend starting at `cursor`, skipping
    /// unhealthy/disagreeing replicas and open breakers, and excluding
    /// `avoid` (the hedge's primary). The winning pick consumes the
    /// breaker's half-open probe slot when one is due. When health
    /// verdicts disqualify every replica at once, they are ignored
    /// (fail-open) and only the breakers gate the pick.
    fn pick(&self, cursor: usize, avoid: Option<usize>) -> Option<(usize, Arc<Backend>)> {
        let n = self.backends.len();
        let now = self.now_ms();
        // Fail-open (panic routing): when *every* replica is marked
        // unroutable, the health verdicts themselves are the likeliest
        // casualty (probes ride the same network as traffic), so ignore
        // them and let the per-replica breakers arbitrate instead.
        let panic_mode = self.backends.iter().all(|b| !b.routable());
        if panic_mode {
            privim_obs::counter("router.panic_picks").add(1);
        }
        for step in 0..n {
            let idx = (cursor + step) % n;
            if Some(idx) == avoid {
                continue;
            }
            let backend = &self.backends[idx];
            if !panic_mode && !backend.routable() {
                continue;
            }
            let allowed = {
                let mut breaker = backend.breaker.lock().unwrap_or_else(|e| e.into_inner());
                let before = breaker.state();
                let allowed = breaker.allow(now);
                if allowed && before == BreakerState::Open {
                    privim_obs::counter("router.breaker_probes").add(1);
                    privim_obs::info!(
                        "router",
                        "breaker_half_open",
                        backend = backend.addr.clone(),
                    );
                }
                allowed
            };
            if allowed {
                return Some((idx, Arc::clone(backend)));
            }
        }
        None
    }

    fn record_outcome(&self, backend: &Backend, ok: bool) {
        let mut breaker = backend.breaker.lock().unwrap_or_else(|e| e.into_inner());
        let before = breaker.state();
        if ok {
            breaker.record_success();
            if before != BreakerState::Closed {
                privim_obs::counter("router.breaker_closes").add(1);
                privim_obs::info!("router", "breaker_closed", backend = backend.addr.clone());
            }
        } else {
            breaker.record_failure(self.now_ms());
            if breaker.state() == BreakerState::Open && before != BreakerState::Open {
                privim_obs::counter("router.breaker_trips").add(1);
                privim_obs::warn!(
                    "router",
                    "breaker_tripped",
                    backend = backend.addr.clone(),
                    trips = breaker.trips(),
                );
            }
        }
    }

    /// Forwards one request with bounded retry; hedges eligible routes.
    fn forward(&self, req: &Request) -> Response {
        privim_obs::counter("router.requests").add(1);
        let cursor = self.next.fetch_add(1, Ordering::Relaxed);
        let attempts = self.config.retries as usize + 1;
        let mut last_error = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                // Deterministic exponential backoff: base * 2^(attempt-1).
                let delay = self.config.backoff * (1u32 << (attempt - 1).min(16));
                std::thread::sleep(delay);
                privim_obs::counter("router.retries").add(1);
                privim_obs::info!(
                    "router",
                    "retry",
                    attempt = attempt as u64,
                    route = req.route().to_string(),
                    error = last_error.clone(),
                );
            }
            let Some((idx, backend)) = self.pick(cursor + attempt, None) else {
                privim_obs::counter("router.no_backend").add(1);
                last_error = "no routable backend".into();
                continue;
            };
            match self.attempt(idx, backend, req) {
                Ok(resp) => return resp,
                Err(err) => last_error = err,
            }
        }
        privim_obs::counter("router.exhausted").add(1);
        privim_obs::warn!(
            "router",
            "retries_exhausted",
            route = req.route().to_string(),
            error = last_error.clone(),
        );
        Response::unavailable(&format!("all backends failed: {last_error}"))
    }

    /// One attempt: plain single-backend send, or a hedged race for
    /// eligible routes. Breaker bookkeeping happens per backend inside.
    fn attempt(
        &self,
        idx: usize,
        backend: Arc<Backend>,
        req: &Request,
    ) -> Result<Response, String> {
        let hedge_after = match self.config.hedge_after {
            // Hedging is restricted to /v1/spread: its responses are
            // byte-identical across replicas on the same digest, so the
            // duplicate can never disagree with the original.
            Some(d) if req.route() == "/v1/spread" => Some(d),
            _ => None,
        };
        let Some(hedge_after) = hedge_after else {
            let outcome = send_once(&backend, req, self.config.timeout);
            self.record_outcome(&backend, outcome.is_ok());
            return outcome;
        };

        let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<Response, String>)>();
        let spawn_leg = |leg_idx: usize, leg: Arc<Backend>, tx: std::sync::mpsc::Sender<_>| {
            let req = req.clone();
            let timeout = self.config.timeout;
            std::thread::spawn(move || {
                let outcome = send_once(&leg, &req, timeout);
                let _ = tx.send((leg_idx, outcome));
            });
        };
        spawn_leg(idx, Arc::clone(&backend), tx.clone());
        let mut legs: Vec<(usize, Arc<Backend>)> = vec![(idx, backend)];
        let first = match rx.recv_timeout(hedge_after) {
            Ok(result) => Some(result),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Primary is slow: race a second replica if one exists.
                if let Some((h_idx, hedge)) = self.pick(idx + 1, Some(idx)) {
                    privim_obs::counter("router.hedges").add(1);
                    privim_obs::info!(
                        "router",
                        "hedge_launched",
                        primary = legs[0].1.addr.clone(),
                        hedge = hedge.addr.clone(),
                    );
                    spawn_leg(h_idx, Arc::clone(&hedge), tx.clone());
                    legs.push((h_idx, hedge));
                }
                None
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => None,
        };
        drop(tx);
        let mut received: Vec<(usize, Result<Response, String>)> = first.into_iter().collect();
        // First Ok wins; a leg's error only surfaces when every leg fails.
        loop {
            if let Some(pos) = received.iter().position(|(_, r)| r.is_ok()) {
                let (leg_idx, result) = received.swap_remove(pos);
                // Only the winner's verdict feeds a breaker here; the
                // losing leg keeps running detached and settles its own
                // breaker on the next attempt that touches it.
                if let Some((_, winner)) = legs.iter().find(|(i, _)| *i == leg_idx) {
                    self.record_outcome(winner, true);
                }
                if legs.len() > 1 && leg_idx == legs[1].0 {
                    privim_obs::counter("router.hedge_wins").add(1);
                    privim_obs::info!("router", "hedge_won", backend = legs[1].1.addr.clone());
                }
                return result;
            }
            if received.len() == legs.len() {
                // Every leg failed: settle breakers and report the first.
                for (_, leg) in &legs {
                    self.record_outcome(leg, false);
                }
                let (_, first_err) = received.swap_remove(0);
                return first_err;
            }
            match rx.recv_timeout(self.config.timeout) {
                Ok(result) => received.push(result),
                Err(_) => {
                    for (_, leg) in &legs {
                        self.record_outcome(leg, false);
                    }
                    return Err("hedged request timed out on every leg".into());
                }
            }
        }
    }

    /// Hand-rolled deterministic JSON for `GET /router/backends`.
    fn backends_status(&self) -> String {
        let mut out = String::from("{\"backends\":[");
        for (i, backend) in self.backends.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let breaker = backend.breaker.lock().unwrap_or_else(|e| e.into_inner());
            let digest = backend
                .digest
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone()
                .unwrap_or_default();
            out.push_str(&format!(
                "{{\"addr\":\"{}\",\"healthy\":{},\"digest_agrees\":{},\"breaker\":\"{}\",\"trips\":{},\"digest\":\"{}\"}}",
                backend.addr,
                backend.healthy.load(Ordering::SeqCst),
                backend.digest_ok.load(Ordering::SeqCst),
                breaker.state().as_str(),
                breaker.trips(),
                digest,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Sends `req` to one backend and converts the reply. 503s and transport
/// errors are attempt failures (the retriable class); every other status
/// — including 4xx and 500 — is a final answer to relay as-is.
fn send_once(backend: &Backend, req: &Request, timeout: Duration) -> Result<Response, String> {
    let mut client = backend
        .client(timeout)
        .map_err(|e| format!("{}: connect: {e}", backend.addr))?;
    // Forward the request id so traces correlate across the two tiers.
    let id_header: Vec<(&str, &str)> = req
        .header("x-request-id")
        .map(|id| vec![("X-Request-Id", id)])
        .unwrap_or_default();
    let body = if req.method == Method::Post {
        Some(req.body.as_slice())
    } else {
        None
    };
    let outcome = client.request_with_headers(&req.method.to_string(), &req.path, &id_header, body);
    match outcome {
        Ok(resp) if resp.status == 503 => Err(format!("{}: backend said 503", backend.addr)),
        Ok(resp) => {
            let mut out = Response {
                status: resp.status,
                headers: Vec::new(),
                body: resp.body.clone(),
            };
            for (name, value) in &resp.headers {
                // Hop-by-hop and framing headers are re-derived by our
                // own writer; everything else passes through.
                if name != "connection" && name != "content-length" {
                    out.headers.push((canonical_header(name), value.clone()));
                }
            }
            backend.park(client);
            Ok(out)
        }
        Err(e) => Err(format!("{}: {e}", backend.addr)),
    }
}

/// Restores canonical casing for the header names our stack emits (the
/// client lower-cases on parse; responses should leave the router the
/// same way they left the replica).
fn canonical_header(lower: &str) -> String {
    let mut out = String::with_capacity(lower.len());
    let mut upper_next = true;
    for c in lower.chars() {
        if upper_next && c.is_ascii_alphabetic() {
            out.push(c.to_ascii_uppercase());
            upper_next = false;
        } else {
            out.push(c);
        }
        if c == '-' {
            upper_next = true;
        }
    }
    out
}

/// Pulls `"checkpoint_digest":"…"` out of a `/version` body without a
/// JSON parser (the value is a fixed-alphabet hex digest, so substring
/// extraction is unambiguous).
pub fn extract_checkpoint_digest(body: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(body).ok()?;
    let key = "\"checkpoint_digest\":\"";
    let start = text.find(key)? + key.len();
    let rest = &text[start..];
    let end = rest.find('"')?;
    let digest = &rest[..end];
    if digest.is_empty() || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Some(digest.to_string())
}

/// Majority digest among reporting backends; ties break toward the
/// digest seen at the lowest backend index.
fn majority_digest(digests: &[Option<String>]) -> Option<String> {
    let mut best: Option<(&String, usize)> = None;
    for digest in digests.iter().flatten() {
        let count = digests
            .iter()
            .flatten()
            .filter(|other| *other == digest)
            .count();
        match best {
            Some((_, best_count)) if best_count >= count => {}
            _ => best = Some((digest, count)),
        }
    }
    best.map(|(d, _)| d.clone())
}

impl Handler for Router {
    fn handle(&self, req: &Request) -> Response {
        match (&req.method, req.route()) {
            // The router's own operational surface; everything else is
            // the replicas' business and is forwarded verbatim.
            (Method::Get, "/healthz") => Response::text(200, "ok\n"),
            (Method::Get, "/metrics") => {
                let text = privim_obs::render_prometheus_with_profile(
                    &privim_obs::snapshot(),
                    &privim_obs::profile_report(),
                );
                Response::new(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    text.into_bytes(),
                )
            }
            (Method::Get, "/router/backends") => {
                Response::json(200, self.backends_status().into_bytes())
            }
            _ => self.forward(req),
        }
    }

    fn route_label(&self, req: &Request) -> &'static str {
        match req.route() {
            "/healthz" => "healthz",
            "/version" => "version",
            "/metrics" => "metrics",
            "/slo" => "slo",
            "/v1/seeds" => "seeds",
            "/v1/spread" => "spread",
            "/router/backends" => "router",
            _ => "other",
        }
    }

    /// Ready while at least one backend is routable — the tier can
    /// answer something.
    fn ready(&self) -> bool {
        self.backends.iter().any(|b| b.routable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    #[test]
    fn breaker_trips_after_threshold_and_probes_after_cooldown() {
        let mut breaker = CircuitBreaker::new(3, 1_000, 7);
        assert!(breaker.allow(0));
        breaker.record_failure(0);
        breaker.record_failure(1);
        assert_eq!(breaker.state(), BreakerState::Closed, "two of three");
        assert!(breaker.allow(2));
        breaker.record_failure(2);
        assert_eq!(breaker.state(), BreakerState::Open, "third failure trips");
        assert!(!breaker.allow(3), "open fails fast");
        assert!(!breaker.allow(1_000), "still inside cooldown + jitter");
        // The jittered reopen time is deterministic: find it by probing.
        let reopen = (1_000..=1_260).find(|&t| {
            let mut b = CircuitBreaker::new(3, 1_000, 7);
            b.record_failure(0);
            b.record_failure(1);
            b.record_failure(2);
            b.allow(t)
        });
        let reopen = reopen.expect("jitter is bounded by cooldown/4 (plus trip base at t=2)");
        assert!(breaker.allow(reopen + 2), "probe admitted at reopen time");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.allow(reopen + 2), "only one probe in flight");
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.allow(reopen + 3));
    }

    #[test]
    fn half_open_probe_failure_reopens_with_new_jitter() {
        let mut a = CircuitBreaker::new(1, 100, 42);
        let mut b = CircuitBreaker::new(1, 100, 42);
        a.record_failure(0);
        b.record_failure(0);
        assert_eq!(a.state(), BreakerState::Open);
        // Same seed ⇒ identical jitter sequences (deterministic).
        for t in 0..2_000 {
            assert_eq!(a.allow(t), b.allow(t), "diverged at t={t}");
            if a.state() == BreakerState::HalfOpen {
                a.record_failure(t);
                b.record_failure(t);
                assert_eq!(a.state(), BreakerState::Open, "probe failure reopens");
            }
        }
        assert!(a.trips() > 1, "probe failures re-tripped the breaker");
    }

    #[test]
    fn digest_extraction_and_majority() {
        let body = br#"{"name":"privim-serve","checkpoint_digest":"00c0ffee","graph_nodes":9}"#;
        assert_eq!(
            extract_checkpoint_digest(body),
            Some("00c0ffee".to_string())
        );
        assert_eq!(extract_checkpoint_digest(b"{}"), None);
        assert_eq!(
            extract_checkpoint_digest(br#"{"checkpoint_digest":"not hex!"}"#),
            None
        );
        let digests = vec![
            Some("aa".to_string()),
            Some("bb".to_string()),
            Some("bb".to_string()),
            None,
        ];
        assert_eq!(majority_digest(&digests), Some("bb".to_string()));
        assert_eq!(
            majority_digest(&[Some("aa".to_string()), Some("bb".to_string())]),
            Some("aa".to_string()),
            "ties break toward the lowest index"
        );
        assert_eq!(majority_digest(&[None, None]), None);
    }

    #[test]
    fn canonical_header_restores_casing() {
        assert_eq!(canonical_header("content-type"), "Content-Type");
        assert_eq!(canonical_header("x-request-id"), "X-Request-Id");
        assert_eq!(canonical_header("retry-after"), "Retry-After");
    }

    fn start_backend(tag: &'static str) -> Server {
        let handler = move |req: &Request| match req.route() {
            "/v1/spread" => {
                // Deterministic body independent of which replica
                // answers — the property hedging relies on.
                Response::json(200, b"{\"spread\":1.0,\"tag\":\"common\"}".to_vec())
            }
            "/tag" => Response::text(200, tag),
            _ => Response::json(200, req.body.clone()),
        };
        Server::start(
            ServerConfig {
                workers: 2,
                queue_depth: 16,
                ..ServerConfig::default()
            },
            Arc::new(handler),
        )
        .expect("bind backend")
    }

    fn router_over(backends: Vec<String>, config: RouterConfig) -> (Arc<Router>, Server) {
        let router = Router::new(RouterConfig { backends, ..config }).unwrap();
        let server = Server::start(
            ServerConfig {
                workers: 2,
                queue_depth: 16,
                ..ServerConfig::default()
            },
            Arc::clone(&router) as Arc<dyn Handler>,
        )
        .expect("bind router");
        (router, server)
    }

    #[test]
    fn all_backends_marked_down_fails_open_through_the_breakers() {
        // Replicas whose /readyz always says not-ready (handler reports
        // unready) but which serve traffic fine: after enough probe
        // misses both are marked unhealthy — yet the router must keep
        // routing (fail-open) rather than 503 a healthy tier.
        struct Unready;
        impl Handler for Unready {
            fn handle(&self, _req: &Request) -> Response {
                Response::text(200, "pong")
            }
            fn ready(&self) -> bool {
                false
            }
        }
        let a = Server::start(
            ServerConfig {
                workers: 1,
                queue_depth: 8,
                ..ServerConfig::default()
            },
            Arc::new(Unready),
        )
        .unwrap();
        let b = Server::start(
            ServerConfig {
                workers: 1,
                queue_depth: 8,
                ..ServerConfig::default()
            },
            Arc::new(Unready),
        )
        .unwrap();
        let (router, front) = router_over(
            vec![a.local_addr().to_string(), b.local_addr().to_string()],
            RouterConfig {
                retries: 1,
                ..RouterConfig::default()
            },
        );
        router.poll_backends_once();
        router.poll_backends_once();
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        let status = client.get("/router/backends").unwrap();
        let text = String::from_utf8(status.body).unwrap();
        assert!(
            !text.contains("\"healthy\":true"),
            "both replicas should be marked down: {text}"
        );
        let before = privim_obs::counter("router.panic_picks").get();
        let resp = client.get("/tag").unwrap();
        assert_eq!(resp.status, 200, "fail-open must keep serving");
        assert_eq!(resp.body, b"pong");
        assert!(
            privim_obs::counter("router.panic_picks").get() > before,
            "the fail-open path should be counted"
        );
        front.shutdown();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn routes_round_robin_and_fails_over_when_a_backend_dies() {
        let a = start_backend("a");
        let b = start_backend("b");
        let addr_a = a.local_addr().to_string();
        let addr_b = b.local_addr().to_string();
        let (_router, front) = router_over(
            vec![addr_a, addr_b],
            RouterConfig {
                retries: 3,
                backoff: Duration::from_millis(5),
                breaker_failures: 2,
                breaker_cooldown: Duration::from_millis(200),
                timeout: Duration::from_secs(2),
                ..RouterConfig::default()
            },
        );
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        // Both replicas answer while healthy.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..6 {
            let resp = client.get("/tag").unwrap();
            assert_eq!(resp.status, 200);
            seen.insert(resp.body.clone());
        }
        assert_eq!(seen.len(), 2, "round-robin reached both replicas");
        // Kill one replica: every request must still succeed via retry.
        a.shutdown();
        for i in 0..10 {
            let resp = client
                .post("/echo", format!("{{\"i\":{i}}}").as_bytes())
                .unwrap_or_else(|e| panic!("request {i} failed across failover: {e}"));
            assert_eq!(resp.status, 200, "request {i}");
        }
        front.shutdown();
        b.shutdown();
    }

    #[test]
    fn router_status_reports_breaker_and_health_state() {
        let b = start_backend("b");
        let addr_b = b.local_addr().to_string();
        // One live backend and one black hole (reserved but unserved).
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap().to_string();
        drop(dead);
        let (router, front) = router_over(
            vec![dead_addr.clone(), addr_b],
            RouterConfig {
                retries: 2,
                backoff: Duration::from_millis(1),
                breaker_failures: 1,
                breaker_cooldown: Duration::from_secs(30),
                timeout: Duration::from_millis(500),
                ..RouterConfig::default()
            },
        );
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        // First request hits the dead backend, trips its breaker, and is
        // retried against the live one.
        assert_eq!(client.get("/tag").unwrap().status, 200);
        let status = client.get("/router/backends").unwrap();
        assert_eq!(status.status, 200);
        let text = String::from_utf8(status.body).unwrap();
        assert!(
            text.contains(&format!("\"addr\":\"{dead_addr}\"")),
            "{text}"
        );
        assert!(text.contains("\"breaker\":\"open\""), "{text}");
        assert!(text.contains("\"breaker\":\"closed\""), "{text}");
        // With the breaker open, requests skip the dead backend: no
        // retry delay, still correct.
        for _ in 0..5 {
            assert_eq!(client.get("/tag").unwrap().status, 200);
        }
        // Health polls mark the dead backend unhealthy once the misses
        // reach `probe_down_after` (one flaky probe is forgiven).
        router.poll_backends_once();
        let text = String::from_utf8(client.get("/router/backends").unwrap().body).unwrap();
        assert!(
            !text.contains("\"healthy\":false"),
            "a single missed probe must not pull the replica: {text}"
        );
        router.poll_backends_once();
        let status = client.get("/router/backends").unwrap();
        let text = String::from_utf8(status.body).unwrap();
        assert!(text.contains("\"healthy\":false"), "{text}");
        assert!(router.ready(), "one live backend keeps the tier ready");
        front.shutdown();
        b.shutdown();
    }

    #[test]
    fn hedging_uses_the_fast_replica_for_spread() {
        // Replica "slow" stalls /v1/spread; replica "fast" answers
        // immediately with the identical body.
        let slow = Server::start(
            ServerConfig {
                workers: 2,
                queue_depth: 16,
                ..ServerConfig::default()
            },
            Arc::new(|req: &Request| {
                if req.route() == "/v1/spread" {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Response::json(200, b"{\"spread\":1.0,\"tag\":\"common\"}".to_vec())
            }),
        )
        .unwrap();
        let fast = start_backend("fast");
        let hedges_before = privim_obs::counter("router.hedges").get();
        let (_router, front) = router_over(
            vec![slow.local_addr().to_string(), fast.local_addr().to_string()],
            RouterConfig {
                retries: 1,
                hedge_after: Some(Duration::from_millis(50)),
                timeout: Duration::from_secs(3),
                ..RouterConfig::default()
            },
        );
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        let started = Instant::now();
        // The round-robin cursor starts at the slow replica, so the
        // first spread request must be hedged to come back quickly.
        let resp = client.post("/v1/spread", b"{\"seeds\":[1]}").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"spread\":1.0,\"tag\":\"common\"}");
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "hedge should beat the 400 ms replica, took {:?}",
            started.elapsed()
        );
        assert!(
            privim_obs::counter("router.hedges").get() > hedges_before,
            "a hedge was launched"
        );
        front.shutdown();
        slow.shutdown();
        fast.shutdown();
    }

    #[test]
    fn digest_disagreement_pulls_a_replica_from_rotation() {
        // Two fake replicas reporting different digests: the majority
        // (lowest index on a tie) stays, the other is pulled.
        let mk = |digest: &'static str| {
            Server::start(
                ServerConfig {
                    workers: 1,
                    queue_depth: 8,
                    ..ServerConfig::default()
                },
                Arc::new(move |req: &Request| match req.route() {
                    "/version" => Response::json(
                        200,
                        format!("{{\"checkpoint_digest\":\"{digest}\"}}").into_bytes(),
                    ),
                    _ => Response::text(200, digest),
                }),
            )
            .unwrap()
        };
        let a = mk("aaaa");
        let b = mk("bbbb");
        let (router, front) = router_over(
            vec![a.local_addr().to_string(), b.local_addr().to_string()],
            RouterConfig {
                retries: 1,
                ..RouterConfig::default()
            },
        );
        router.poll_backends_once();
        let mut client = HttpClient::connect(front.local_addr()).unwrap();
        for _ in 0..6 {
            let resp = client.get("/tag").unwrap();
            assert_eq!(resp.body, b"aaaa", "only the majority replica serves");
        }
        let status = client.get("/router/backends").unwrap();
        let text = String::from_utf8(status.body).unwrap();
        assert!(text.contains("\"digest_agrees\":false"), "{text}");
        front.shutdown();
        a.shutdown();
        b.shutdown();
    }
}
