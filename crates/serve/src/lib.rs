//! privim-serve: a threaded inference server for influence-maximization
//! queries.
//!
//! The server answers seed-selection and spread-estimation queries from a
//! released [`privim_nn::serialize::Checkpoint`] over a public graph. It is
//! built entirely on `std::net` — no async runtime, no HTTP framework:
//!
//! ```text
//!              ┌────────────┐   bounded    ┌──────────────┐
//!  TCP accept ─▶  acceptor  ├──▶ queue ────▶ worker pool   ├──▶ Handler
//!              └────────────┘  (503 when   └──────────────┘   (App)
//!                               full)
//! ```
//!
//! - [`server`] — the acceptor thread, bounded connection queue and fixed
//!   worker pool, with per-request deadlines and graceful shutdown
//!   (stop accepting → drain in-flight → join → flush telemetry).
//! - [`http`] — a minimal, allocation-conscious HTTP/1.1 request parser
//!   and response writer (Content-Length framing, keep-alive).
//! - [`queue`] — the bounded MPMC queue with non-blocking `push` (so the
//!   acceptor can shed load immediately) and blocking `pop`.
//! - [`app`] — the PrivIM application handler: loads a checkpoint plus a
//!   graph, scores every node once, then serves `/v1/seeds`,
//!   `/v1/spread`, `/healthz`, `/version`, `/metrics` and `/slo`.
//! - [`api`] — the JSON request/response types and their determinism
//!   contract.
//! - [`client`] — a small blocking HTTP client used by tests and the
//!   `loadgen` benchmark.
//! - [`router`] — the replicated-tier front-end: health-checked routing
//!   over N replicas with per-replica circuit breakers, bounded retry
//!   with deterministic backoff, and tail-latency hedging for
//!   `/v1/spread`.
//! - [`chaosproxy`] — a deterministic TCP fault-injection proxy (seeded
//!   like `FaultPlan`) that exercises every retry/breaker/hedge path
//!   reproducibly.
//! - [`signal`] — SIGINT/SIGTERM → `AtomicBool` for clean CLI shutdown.
//! - [`slo`] — rolling-window SLO tracking (windowed p99 vs target,
//!   error/shed budget burn) behind `GET /slo`, `serve.slo.*` gauges and
//!   the watchdog rule engine.
//!
//! # Privacy
//!
//! Serving is post-processing: every response is a function of the
//! released checkpoint and the operator-chosen public graph, so queries
//! consume no privacy budget beyond what training already spent. The
//! server never touches training data or per-example statistics.
//!
//! # Determinism
//!
//! Identical `(checkpoint, graph, request)` triples produce byte-identical
//! response bodies: scores are computed once at load time, `/v1/seeds` is
//! a slice of a precomputed ranking, and `/v1/spread` uses the
//! thread-count-invariant [`privim_im::spread::influence_spread_parallel`]
//! with the request-supplied RNG seed.

pub mod api;
pub mod app;
pub mod chaosproxy;
pub mod client;
pub mod http;
pub mod queue;
pub mod router;
pub mod server;
pub mod signal;
pub mod slo;

pub use api::{SeedsRequest, SeedsResponse, SpreadRequest, SpreadResponse, VersionResponse};
pub use app::{load_graph, App, AppConfig};
pub use chaosproxy::{fault_for_conn, ChaosConfig, ChaosProxy, WireFault};
pub use client::{ClientResponse, HttpClient};
pub use http::{HttpError, Method, Request, Response, RETRY_AFTER_SECS};
pub use queue::{Bounded, PushError};
pub use router::{BreakerState, CircuitBreaker, Router, RouterConfig};
pub use server::{Handler, ReadyGate, Server, ServerConfig};
pub use signal::{install_shutdown_handler, shutdown_requested, trip_shutdown};
pub use slo::{SloConfig, SloSnapshot, SloTracker};
