//! End-to-end tests: a real checkpoint and graph served over real sockets.
//!
//! The centerpiece is the reproducibility contract — two independently
//! started server instances loading the same `(checkpoint, graph)` pair
//! must answer the same `/v1/seeds` request with byte-identical bodies.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use privim_datasets::paper::Dataset;
use privim_graph::io;
use privim_im::models::{DiffusionConfig, DiffusionModel};
use privim_im::spread::influence_spread_parallel;
use privim_nn::models::{build_model, ModelKind};
use privim_nn::serialize::Checkpoint;
use privim_obs::{FlightRecorder, Level, MemorySink, TraceContext};
use privim_serve::{App, AppConfig, HttpClient, ReadyGate, Server, ServerConfig, SpreadResponse};
use rand::rngs::StdRng;
use rand::SeedableRng;

static FIXTURE_ID: AtomicU32 = AtomicU32::new(0);

/// The flight recorder is process-global; tests that arm or reset it
/// serialize here so parallel test threads cannot disarm each other.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// A served fixture: a small Email-replica graph saved in binary form and
/// a freshly initialized (untrained — irrelevant for serving semantics)
/// GraphSAGE checkpoint over it. Files land in a unique temp subdirectory.
struct Fixture {
    dir: PathBuf,
    graph: String,
    checkpoint: String,
}

impl Fixture {
    fn create() -> Fixture {
        let id = FIXTURE_ID.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("privim-serve-e2e-{}-{id}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let graph = Dataset::Email.generate(0.15, 42);
        let graph_path = dir.join("email.bin");
        io::save_binary(&graph, &graph_path).unwrap();

        let in_dim = 8;
        let mut rng = StdRng::seed_from_u64(7);
        let model = build_model(ModelKind::GraphSage, in_dim, 16, 2, &mut rng);
        let checkpoint_path = dir.join("model.json");
        Checkpoint::capture(model.as_ref(), in_dim, 16, 2)
            .save(&checkpoint_path)
            .unwrap();

        Fixture {
            dir,
            graph: graph_path.to_string_lossy().into_owned(),
            checkpoint: checkpoint_path.to_string_lossy().into_owned(),
        }
    }

    fn app_config(&self) -> AppConfig {
        AppConfig::new(&self.graph, &self.checkpoint)
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn start_server(fixture: &Fixture) -> Server {
    let app = App::load(&fixture.app_config()).unwrap();
    let config = ServerConfig {
        workers: 2,
        queue_depth: 16,
        ..ServerConfig::default()
    };
    Server::start(config, Arc::new(app)).unwrap()
}

/// Like [`start_server`], but with the operator debug endpoints on.
fn start_server_debug(fixture: &Fixture) -> Server {
    let mut app_config = fixture.app_config();
    app_config.debug_endpoints = true;
    let app = App::load(&app_config).unwrap();
    let config = ServerConfig {
        workers: 2,
        queue_depth: 16,
        ..ServerConfig::default()
    };
    Server::start(config, Arc::new(app)).unwrap()
}

#[test]
fn two_instances_serve_byte_identical_seeds() {
    let fixture = Fixture::create();
    let first = start_server(&fixture);
    let second = start_server(&fixture);

    let body = r#"{"k": 10, "seed": 123}"#;
    let mut c1 = HttpClient::connect(&first.local_addr().to_string()).unwrap();
    let mut c2 = HttpClient::connect(&second.local_addr().to_string()).unwrap();
    let r1 = c1.post("/v1/seeds", body.as_bytes()).unwrap();
    let r2 = c2.post("/v1/seeds", body.as_bytes()).unwrap();

    assert_eq!(r1.status, 200);
    assert_eq!(r2.status, 200);
    assert_eq!(
        r1.body, r2.body,
        "same checkpoint+graph+request must serve identical bytes"
    );

    // And repeating the request against the same instance is also stable.
    let r1_again = c1.post("/v1/seeds", body.as_bytes()).unwrap();
    assert_eq!(r1.body, r1_again.body);

    // Arming the flight recorder and stamping per-request trace contexts
    // (distinct X-Request-Ids on each instance) is pure observability:
    // the served bytes must not change.
    {
        let _rec = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        FlightRecorder::arm();
        let r3 = c1
            .post_with_headers("/v1/seeds", &[("X-Request-Id", "bitid-a")], body.as_bytes())
            .unwrap();
        let r4 = c2
            .post_with_headers("/v1/seeds", &[("X-Request-Id", "bitid-b")], body.as_bytes())
            .unwrap();
        FlightRecorder::disarm();
        assert_eq!(r3.body, r1.body, "recorder+tracing must not change bytes");
        assert_eq!(r4.body, r1.body, "trace ids must not leak into bodies");
        assert_eq!(r3.header("x-request-id"), Some("bitid-a"));
        assert_eq!(r4.header("x-request-id"), Some("bitid-b"));
    }

    first.shutdown();
    second.shutdown();
}

#[test]
fn request_trace_correlates_header_events_recorder_and_debug_endpoint() {
    let _rec = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let fixture = Fixture::create();
    let server = start_server_debug(&fixture);
    let sink = Arc::new(MemorySink::new(Level::Debug));
    privim_obs::install_sink(sink.clone());
    FlightRecorder::reset();
    FlightRecorder::arm();

    // The same shape of id loadgen generates, so this doubles as the
    // forensics cross-check: a sampled client-side id must be findable
    // in the server's flight-recorder dump.
    let rid = "loadgen-3-17-00c0ffee00c0ffee";
    let expected = TraceContext::from_request_id(rid);
    let mut client = HttpClient::connect(&server.local_addr().to_string()).unwrap();
    let resp = client
        .post_with_headers("/v1/seeds", &[("X-Request-Id", rid)], br#"{"k": 3}"#)
        .unwrap();
    FlightRecorder::disarm();

    // 1. The id is echoed on the response.
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-request-id"), Some(rid));

    // 2. The event stream (what a JSONL sink would write) carries the
    //    derived trace id on the request event.
    let events = sink.events();
    let event = events
        .iter()
        .find(|e| e.trace.map(|t| t.trace_id) == Some(expected.trace_id))
        .unwrap_or_else(|| panic!("no event carries trace {}", expected.trace_id_hex()));
    assert!(
        event.to_json_line().contains(&expected.trace_id_hex()),
        "JSONL line must serialize the trace id"
    );

    // 3. The flight recorder captured the request under the same trace.
    assert!(
        FlightRecorder::dump()
            .iter()
            .any(|e| e.trace_id == expected.trace_id),
        "recorder dump must hold the request's trace"
    );

    // 4. /debug/trace renders the same trace id in its span tree.
    let debug = client.get("/debug/trace").unwrap();
    assert_eq!(debug.status, 200);
    let text = String::from_utf8_lossy(&debug.body).into_owned();
    assert!(
        text.contains(&expected.trace_id_hex()),
        "debug trace body:\n{text}"
    );

    // /debug/profile answers with folded stacks (possibly empty).
    assert_eq!(client.get("/debug/profile").unwrap().status, 200);

    privim_obs::take_sinks();
    server.shutdown();
}

#[test]
fn debug_endpoints_are_hidden_unless_enabled() {
    let fixture = Fixture::create();
    let server = start_server(&fixture);
    let mut client = HttpClient::connect(&server.local_addr().to_string()).unwrap();

    // Disabled endpoints 404 like any unknown route — indistinguishable
    // from a server built without them.
    assert_eq!(client.get("/debug/trace").unwrap().status, 404);
    assert_eq!(client.get("/debug/profile").unwrap().status, 404);
    server.shutdown();

    let server = start_server_debug(&fixture);
    let mut client = HttpClient::connect(&server.local_addr().to_string()).unwrap();
    assert_eq!(client.get("/debug/trace").unwrap().status, 200);
    assert_eq!(
        client.post("/debug/trace", b"").unwrap().status,
        405,
        "enabled endpoints reject wrong methods, not hide"
    );
    server.shutdown();
}

#[test]
fn spread_endpoint_matches_direct_estimate() {
    let fixture = Fixture::create();
    let server = start_server(&fixture);
    let graph = privim_serve::load_graph(&fixture.graph).unwrap();

    let mut client = HttpClient::connect(&server.local_addr().to_string()).unwrap();
    let body = r#"{"seeds": [0, 1, 2], "trials": 400, "seed": 9, "steps": 1}"#;
    let resp = client.post("/v1/spread", body.as_bytes()).unwrap();
    assert_eq!(
        resp.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&resp.body)
    );
    let parsed: SpreadResponse = serde_json::from_slice(&resp.body).unwrap();

    let config = DiffusionConfig {
        model: DiffusionModel::IndependentCascade,
        max_steps: Some(1),
    };
    let direct = influence_spread_parallel(&graph, &[0, 1, 2], &config, 400, 2, 9).unwrap();
    assert_eq!(parsed.spread, direct);
    assert_eq!(parsed.trials, 400);
    assert_eq!(parsed.n_nodes, graph.num_nodes());

    server.shutdown();
}

#[test]
fn invalid_requests_get_structured_errors() {
    let fixture = Fixture::create();
    let server = start_server(&fixture);
    let mut client = HttpClient::connect(&server.local_addr().to_string()).unwrap();

    // Unknown field → 400 from serde's deny_unknown_fields.
    let resp = client
        .post("/v1/seeds", br#"{"k": 3, "bogus": true}"#)
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.starts_with(br#"{"error":"#));

    // Out-of-range seed node → 400 from the spread range check.
    let resp = client
        .post("/v1/spread", br#"{"seeds": [999999]}"#)
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(String::from_utf8_lossy(&resp.body).contains("out of range"));

    // Unknown route → 404; wrong method on a known route → 405.
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.get("/v1/seeds").unwrap().status, 405);

    // The server is still healthy afterwards.
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"ok\n");

    server.shutdown();
}

#[test]
fn version_and_metrics_reflect_served_state() {
    let fixture = Fixture::create();
    let server = start_server(&fixture);
    let graph = privim_serve::load_graph(&fixture.graph).unwrap();
    let mut client = HttpClient::connect(&server.local_addr().to_string()).unwrap();

    let version = client.get("/version").unwrap();
    assert_eq!(version.status, 200);
    let text = String::from_utf8_lossy(&version.body).into_owned();
    assert!(text.contains("\"privim-serve\""), "version body: {text}");
    assert!(text.contains(&format!("\"graph_nodes\":{}", graph.num_nodes())));
    assert!(text.contains("\"GraphSAGE\""), "body: {text}");

    // Hit a route, then check it shows up in the Prometheus exposition.
    client.post("/v1/seeds", br#"{"k": 1}"#).unwrap();
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8_lossy(&metrics.body).into_owned();
    assert!(text.contains("serve_requests"), "metrics body:\n{text}");
    assert!(text.contains("serve_latency_secs"), "metrics body:\n{text}");

    server.shutdown();
}

#[test]
fn readyz_tracks_the_whole_lifecycle() {
    let fixture = Fixture::create();
    // Bind first with an empty gate: the socket answers, but readiness is
    // false and every app route sheds with 503 until the app is installed.
    let gate = ReadyGate::new();
    let config = ServerConfig {
        workers: 2,
        queue_depth: 16,
        ..ServerConfig::default()
    };
    let server = Server::start(config, gate.clone()).unwrap();
    let mut client = HttpClient::connect(&server.local_addr().to_string()).unwrap();

    let resp = client.get("/readyz").unwrap();
    assert_eq!(resp.status, 503, "not ready before the app is loaded");
    assert_eq!(resp.header("retry-after"), Some("1"));
    let resp = client.post("/v1/seeds", br#"{"k": 3}"#).unwrap();
    assert_eq!(resp.status, 503, "app routes shed while loading");

    // Load and install: readiness flips to 200 and routes start serving.
    let app = App::load(&fixture.app_config()).unwrap();
    gate.install(Arc::new(app));
    let resp = client.get("/readyz").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"ready\n");
    assert_eq!(client.post("/readyz", b"").unwrap().status, 405);
    assert_eq!(
        client.post("/v1/seeds", br#"{"k": 3}"#).unwrap().status,
        200
    );

    // Drain: readiness goes false immediately, even though the already-
    // accepted connection still gets its answer.
    server.request_shutdown();
    let resp = client.get("/readyz").unwrap();
    assert_eq!(resp.status, 503, "draining instances must report not-ready");
    assert_eq!(resp.header("retry-after"), Some("1"));

    server.join();
}

#[test]
fn seeds_k_is_clamped_to_graph_size() {
    let fixture = Fixture::create();
    let server = start_server(&fixture);
    let graph = privim_serve::load_graph(&fixture.graph).unwrap();
    let mut client = HttpClient::connect(&server.local_addr().to_string()).unwrap();

    let resp = client.post("/v1/seeds", br#"{"k": 1000000}"#).unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8_lossy(&resp.body).into_owned();
    assert!(
        text.contains(&format!("\"k\":{}", graph.num_nodes())),
        "body: {text}"
    );

    server.shutdown();
}
