//! Fault-tolerance integration tests: the replicated tier (router over
//! real replica servers) driven through the deterministic chaos proxy.
//!
//! The acceptance contract mirrored from the CI chaos gate:
//!
//! - at a fixed fault seed and a ≥10 % fault rate, a run through the
//!   chaos proxy finishes with **zero failed requests** and response
//!   bodies **byte-identical** to a fault-free run;
//! - killing one replica mid-run and hot-swapping the handler on the
//!   other drops **zero** in-flight requests.
//!
//! Replicas here are synthetic deterministic handlers (no checkpoint,
//! no JSON parsing) so the tests exercise exactly the transport,
//! routing, retry, and swap machinery.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use privim_serve::{
    ChaosConfig, ChaosProxy, Handler, HttpClient, ReadyGate, Request, Response, Router,
    RouterConfig, Server, ServerConfig,
};

/// A deterministic replica: every route's body is a pure function of
/// the request, so two replicas (or two generations of one) always
/// agree byte-for-byte — the stand-in for "same checkpoint digest".
fn replica_handler() -> Arc<dyn Handler> {
    Arc::new(|req: &Request| match req.route() {
        "/v1/seeds" => Response::json(200, b"{\"seeds\":[4,1,7,0,2]}".to_vec()),
        "/v1/spread" => {
            let sum: u64 = req.body.iter().map(|&b| b as u64).sum();
            Response::json(200, format!("{{\"spread\":{sum}}}").into_bytes())
        }
        "/version" => Response::json(
            200,
            b"{\"checkpoint_digest\":\"deadbeefdeadbeef\"}".to_vec(),
        ),
        _ => Response::error(404, "no such route"),
    })
}

fn replica_server(handler: Arc<dyn Handler>) -> Server {
    Server::start(
        ServerConfig {
            workers: 2,
            queue_depth: 32,
            deadline: Duration::from_secs(5),
            ..ServerConfig::default()
        },
        handler,
    )
    .expect("bind replica")
}

fn router_server(config: RouterConfig) -> (Server, Arc<Router>) {
    let router = Router::new(config).expect("router config");
    let server = Server::start(
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(10),
            ..ServerConfig::default()
        },
        router.clone(),
    )
    .expect("bind router");
    (server, router)
}

/// Drives the fixed request schedule through `addr` and returns every
/// `(status, body)` in order.
fn drive(addr: std::net::SocketAddr, requests: usize) -> Vec<(u16, Vec<u8>)> {
    let mut client = HttpClient::with_timeout(addr, Duration::from_secs(30)).expect("connect");
    let mut out = Vec::with_capacity(requests);
    for i in 0..requests {
        let resp = if i % 2 == 0 {
            client.get("/v1/seeds")
        } else {
            client.post("/v1/spread", format!("{{\"trials\":{i}}}").as_bytes())
        }
        .unwrap_or_else(|e| panic!("request {i} must not fail: {e}"));
        out.push((resp.status, resp.body));
    }
    out
}

#[test]
fn chaos_run_is_byte_identical_to_the_fault_free_run() {
    let replica_a = replica_server(replica_handler());
    let replica_b = replica_server(replica_handler());

    // Reference: router straight at the replicas, no faults anywhere.
    let (clean_front, clean_router) = router_server(RouterConfig {
        backends: vec![
            replica_a.local_addr().to_string(),
            replica_b.local_addr().to_string(),
        ],
        retries: 2,
        backoff: Duration::from_millis(2),
        timeout: Duration::from_secs(2),
        seed: 9,
        ..RouterConfig::default()
    });
    let reference = drive(clean_front.local_addr(), 30);
    clean_router
        .stop_flag()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    clean_front.shutdown();

    // Chaos: every router→replica connection passes a proxy faulting
    // 25 % of connections at a fixed seed.
    let proxy_a = ChaosProxy::start(ChaosConfig {
        listen: "127.0.0.1:0".into(),
        upstream: replica_a.local_addr().to_string(),
        seed: 40,
        fault_rate: 0.25,
    })
    .expect("proxy a");
    let proxy_b = ChaosProxy::start(ChaosConfig {
        listen: "127.0.0.1:0".into(),
        upstream: replica_b.local_addr().to_string(),
        seed: 41,
        fault_rate: 0.25,
    })
    .expect("proxy b");
    let (chaos_front, chaos_router) = router_server(RouterConfig {
        backends: vec![
            proxy_a.local_addr().to_string(),
            proxy_b.local_addr().to_string(),
        ],
        retries: 8,
        backoff: Duration::from_millis(2),
        timeout: Duration::from_secs(2),
        breaker_failures: 5,
        breaker_cooldown: Duration::from_millis(100),
        health_interval: Duration::from_millis(200),
        seed: 9,
        ..RouterConfig::default()
    });
    let health = chaos_router.spawn_health_thread();
    let faulted = drive(chaos_front.local_addr(), 30);

    assert_eq!(faulted.len(), reference.len());
    for (i, (clean, chaotic)) in reference.iter().zip(&faulted).enumerate() {
        assert_eq!(
            chaotic.0,
            200,
            "request {i} failed under chaos: {}",
            String::from_utf8_lossy(&chaotic.1)
        );
        assert_eq!(
            chaotic.1, clean.1,
            "request {i}: chaos bytes must match the fault-free bytes"
        );
    }

    chaos_router
        .stop_flag()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    health.join().expect("health thread");
    chaos_front.shutdown();
    proxy_a.shutdown();
    proxy_b.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();
}

#[test]
fn replica_death_and_hot_swap_drop_nothing() {
    // Replica A is plain; replica B serves through a ReadyGate so its
    // handler can be hot-swapped mid-run (same deterministic outputs —
    // the "same digest, newer generation" reload).
    let replica_a = replica_server(replica_handler());
    let gate_b = ReadyGate::new();
    gate_b.install(replica_handler());
    let replica_b = replica_server(gate_b.clone());

    let (front, router) = router_server(RouterConfig {
        backends: vec![
            replica_a.local_addr().to_string(),
            replica_b.local_addr().to_string(),
        ],
        retries: 6,
        backoff: Duration::from_millis(2),
        timeout: Duration::from_secs(2),
        breaker_failures: 3,
        breaker_cooldown: Duration::from_millis(100),
        health_interval: Duration::from_millis(100),
        seed: 5,
        ..RouterConfig::default()
    });
    let health = router.spawn_health_thread();

    let addr = front.local_addr();
    let driver = std::thread::spawn(move || {
        let mut client = HttpClient::with_timeout(addr, Duration::from_secs(30)).expect("connect");
        let mut bodies = Vec::new();
        for i in 0..120 {
            let resp = client
                .post("/v1/spread", b"{\"trials\":8}")
                .unwrap_or_else(|e| panic!("request {i} dropped: {e}"));
            assert_eq!(resp.status, 200, "request {i} failed");
            bodies.push(resp.body);
            std::thread::sleep(Duration::from_millis(2));
        }
        bodies
    });

    // Kill replica A under load, then hot-swap replica B's handler.
    std::thread::sleep(Duration::from_millis(80));
    replica_a.shutdown();
    std::thread::sleep(Duration::from_millis(80));
    let old = gate_b.swap(replica_handler());
    assert!(old.is_some(), "swap must replace a live handler");

    let bodies = driver.join().expect("driver thread");
    let expected = {
        let sum: u64 = b"{\"trials\":8}".iter().map(|&b| b as u64).sum();
        format!("{{\"spread\":{sum}}}").into_bytes()
    };
    for (i, body) in bodies.iter().enumerate() {
        assert_eq!(body, &expected, "request {i} answered with wrong bytes");
    }
    assert_eq!(gate_b.swap_count(), 1);

    router
        .stop_flag()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    health.join().expect("health thread");
    front.shutdown();
    replica_b.shutdown();
}

/// A passthrough chaos proxy (rate 0) in front of one replica: the
/// adversarial-I/O framing tests below go through it so the proxy's
/// chunk-at-a-time pumps are part of the path under test.
fn proxied_replica() -> (Server, ChaosProxy) {
    let replica = Server::start(
        ServerConfig {
            workers: 1,
            queue_depth: 8,
            deadline: Duration::from_millis(400),
            ..ServerConfig::default()
        },
        replica_handler(),
    )
    .expect("bind replica");
    let proxy = ChaosProxy::start(ChaosConfig {
        listen: "127.0.0.1:0".into(),
        upstream: replica.local_addr().to_string(),
        seed: 0,
        fault_rate: 0.0,
    })
    .expect("proxy");
    (replica, proxy)
}

#[test]
fn partial_writes_still_parse_into_one_request() {
    let (replica, proxy) = proxied_replica();
    let mut s = TcpStream::connect(proxy.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let request =
        b"POST /v1/spread HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\nConnection: close\r\n\r\n{\"trials\":8}";
    // Dribble the request a few bytes per write: framing must reassemble
    // it into exactly one request with the full body.
    for chunk in request.chunks(3) {
        s.write_all(chunk).expect("partial write");
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    let sum: u64 = b"{\"trials\":8}".iter().map(|&b| b as u64).sum();
    assert!(
        text.ends_with(&format!("{{\"spread\":{sum}}}")),
        "body must be computed from the fully reassembled request: {text}"
    );
    drop(s);
    proxy.shutdown();
    replica.shutdown();
}

#[test]
fn torn_content_length_body_is_cut_not_hung() {
    let (replica, proxy) = proxied_replica();
    let mut s = TcpStream::connect(proxy.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Promise 40 body bytes, deliver 4, then half-close: the server must
    // drop the connection (no response, or an error response) quickly —
    // never serve a truncated body as a real request.
    s.write_all(b"POST /v1/spread HTTP/1.1\r\nHost: x\r\nContent-Length: 40\r\n\r\n{\"tr")
        .expect("write torn request");
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let started = Instant::now();
    let mut raw = Vec::new();
    let _ = s.read_to_end(&mut raw);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "torn body must not hang the connection"
    );
    let text = String::from_utf8_lossy(&raw);
    assert!(
        !text.starts_with("HTTP/1.1 200"),
        "a torn body must never be answered as success: {text}"
    );
    // The worker survives: a clean request right after is served.
    let mut client = HttpClient::connect(proxy.local_addr()).expect("connect");
    assert_eq!(client.get("/v1/seeds").expect("clean request").status, 200);
    drop(client);
    proxy.shutdown();
    replica.shutdown();
}

#[test]
fn slow_loris_headers_hit_the_deadline() {
    let (replica, proxy) = proxied_replica();
    let mut s = TcpStream::connect(proxy.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Start a request line, then stall mid-header: the replica's 400 ms
    // read deadline must cut the connection instead of pinning a worker.
    s.write_all(b"GET /v1/seeds HTTP/1.1\r\nHost: x\r\nX-Slow: ")
        .expect("write stalled header");
    let started = Instant::now();
    let mut raw = Vec::new();
    let _ = s.read_to_end(&mut raw);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stalled headers must not hang past the deadline"
    );
    assert!(
        !String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 200"),
        "a half-sent request must never succeed"
    );
    // The worker is free again and serves the next connection.
    let mut client = HttpClient::connect(proxy.local_addr()).expect("connect");
    assert_eq!(client.get("/v1/seeds").expect("clean request").status, 200);
    drop(client);
    proxy.shutdown();
    replica.shutdown();
}
