//! Ablation micro-benchmarks for the design choices DESIGN.md calls out:
//! the frequency decay factor μ, the RWR restart probability τ, and the
//! BES size divisor s — each as extraction-cost benchmarks — plus the
//! exact-coverage vs Monte Carlo spread evaluation and the accountant's
//! σ-calibration cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use privim_core::config::PrivImConfig;
use privim_core::sampling::extract_dual_stage;
use privim_datasets::generators::holme_kim;
use privim_dp::rdp::{calibrate_sigma, SubsampledConfig};
use privim_graph::NodeId;
use privim_im::models::DiffusionConfig;
use privim_im::spread::influence_spread;

fn graph() -> privim_graph::Graph {
    let mut rng = StdRng::seed_from_u64(9);
    holme_kim(800, 5, 0.4, 1.0, &mut rng)
}

fn base_config() -> PrivImConfig {
    PrivImConfig {
        subgraph_size: 20,
        walk_length: 200,
        hops: 2,
        sampling_rate: Some(0.3),
        freq_threshold: 4,
        feature_dim: 8,
        ..PrivImConfig::default()
    }
}

fn bench_sampling_ablation(c: &mut Criterion) {
    let g = graph();
    let candidates: Vec<NodeId> = g.nodes().collect();
    let mut group = c.benchmark_group("sampling_ablation");
    for &decay in &[0.0, 1.0, 2.0] {
        group.bench_with_input(
            BenchmarkId::new("decay_mu", format!("{decay}")),
            &decay,
            |b, &d| {
                let cfg = PrivImConfig {
                    decay: d,
                    ..base_config()
                };
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    extract_dual_stage(&g, &cfg, &candidates, &mut rng)
                })
            },
        );
    }
    for &tau in &[0.1, 0.3, 0.6] {
        group.bench_with_input(
            BenchmarkId::new("restart_tau", format!("{tau}")),
            &tau,
            |b, &t| {
                let cfg = PrivImConfig {
                    restart_prob: t,
                    ..base_config()
                };
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(2);
                    extract_dual_stage(&g, &cfg, &candidates, &mut rng)
                })
            },
        );
    }
    for &s in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("bes_divisor_s", format!("{s}")),
            &s,
            |b, &s| {
                let cfg = PrivImConfig {
                    bes_divisor: s,
                    ..base_config()
                };
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(3);
                    extract_dual_stage(&g, &cfg, &candidates, &mut rng)
                })
            },
        );
    }
    group.finish();
}

fn bench_spread_evaluation(c: &mut Criterion) {
    let g = graph();
    let seeds: Vec<NodeId> = (0..50).collect();
    let mut group = c.benchmark_group("spread_evaluation");
    group.bench_function("exact_one_step_coverage", |b| {
        let cfg = DiffusionConfig::ic_with_steps(1);
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| influence_spread(&g, &seeds, &cfg, 1, &mut rng))
    });
    group.bench_function("monte_carlo_unbounded_1000", |b| {
        let half = g.with_uniform_weight(0.5);
        let cfg = DiffusionConfig::ic_unbounded();
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| influence_spread(&half, &seeds, &cfg, 1_000, &mut rng))
    });
    group.finish();
}

fn bench_accounting(c: &mut Criterion) {
    let mut group = c.benchmark_group("privacy_accounting");
    let sub = SubsampledConfig {
        max_occurrences: 4,
        batch_size: 16,
        container_size: 400,
    };
    group.bench_function("calibrate_sigma", |b| {
        b.iter(|| calibrate_sigma(3.0, 1e-5, &sub, 100))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sampling_ablation, bench_spread_evaluation, bench_accounting
}
criterion_main!(benches);
