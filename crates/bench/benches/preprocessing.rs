//! Criterion micro-benchmarks for Table III's preprocessing phase:
//! θ-projection, naive extraction (Algorithm 1), and dual-stage extraction
//! (Algorithm 3) across replica sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use privim_core::config::PrivImConfig;
use privim_core::sampling::{extract_dual_stage, extract_naive};
use privim_datasets::generators::holme_kim;
use privim_graph::ops::theta_projection;
use privim_graph::NodeId;

fn config() -> PrivImConfig {
    PrivImConfig {
        subgraph_size: 20,
        walk_length: 200,
        hops: 2,
        sampling_rate: Some(0.3),
        freq_threshold: 4,
        feature_dim: 8,
        ..PrivImConfig::default()
    }
}

fn bench_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocessing");
    for &n in &[300usize, 1_000, 3_000] {
        let mut rng = StdRng::seed_from_u64(7);
        let g = holme_kim(n, 5, 0.4, 1.0, &mut rng);
        let candidates: Vec<NodeId> = g.nodes().collect();
        let cfg = config();

        group.bench_with_input(BenchmarkId::new("theta_projection", n), &g, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                theta_projection(g, 10, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_algorithm1", n), &g, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                extract_naive(g, &cfg, &candidates, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("dual_stage_algorithm3", n), &g, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                extract_dual_stage(g, &cfg, &candidates, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_preprocessing
}
criterion_main!(benches);
