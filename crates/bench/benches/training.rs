//! Criterion micro-benchmarks for Table III's per-epoch training phase:
//! one DP-SGD iteration per GNN backbone, plus the private/non-private
//! overhead comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use privim_core::config::PrivImConfig;
use privim_core::sampling::extract_dual_stage;
use privim_core::train::{train, NoiseKind, PrivacySetup};
use privim_core::SubgraphContainer;
use privim_datasets::generators::holme_kim;
use privim_graph::NodeId;
use privim_nn::models::{build_model, ModelKind};

fn setup() -> (SubgraphContainer, PrivImConfig) {
    let mut rng = StdRng::seed_from_u64(5);
    let g = holme_kim(600, 5, 0.4, 1.0, &mut rng);
    let cfg = PrivImConfig {
        subgraph_size: 20,
        walk_length: 200,
        hops: 2,
        sampling_rate: Some(0.5),
        freq_threshold: 4,
        feature_dim: 8,
        hidden: 16,
        batch_size: 8,
        iterations: 1, // one epoch per measurement
        ..PrivImConfig::default()
    };
    let candidates: Vec<NodeId> = g.nodes().collect();
    let out = extract_dual_stage(&g, &cfg, &candidates, &mut rng);
    (out.container, cfg)
}

fn bench_training_iteration(c: &mut Criterion) {
    let (container, cfg) = setup();
    let mut group = c.benchmark_group("per_epoch_training");

    for kind in [
        ModelKind::Gcn,
        ModelKind::GraphSage,
        ModelKind::Gat,
        ModelKind::Grat,
        ModelKind::Gin,
    ] {
        group.bench_with_input(BenchmarkId::new("model", kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut model = build_model(kind, cfg.feature_dim, cfg.hidden, cfg.hops, &mut rng);
                train(model.as_mut(), &container, &cfg, None, &mut rng)
            })
        });
    }

    let setup_privacy = PrivacySetup::calibrate(
        3.0,
        1e-4,
        &cfg,
        container.len(),
        cfg.freq_threshold,
        NoiseKind::Gaussian,
    );
    group.bench_function("grat_private_epoch", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut model = build_model(
                ModelKind::Grat,
                cfg.feature_dim,
                cfg.hidden,
                cfg.hops,
                &mut rng,
            );
            train(
                model.as_mut(),
                &container,
                &cfg,
                Some(&setup_privacy),
                &mut rng,
            )
        })
    });
    group.bench_function("grat_nonprivate_epoch", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut model = build_model(
                ModelKind::Grat,
                cfg.feature_dim,
                cfg.hidden,
                cfg.hops,
                &mut rng,
            );
            train(model.as_mut(), &container, &cfg, None, &mut rng)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training_iteration
}
criterion_main!(benches);
