//! Benchmark harness for the PrivIM reproduction.
//!
//! One binary per paper table/figure lives in `src/bin/`; this library
//! holds what they share: CLI options, dataset/config selection, repeated
//! pipeline runs with mean ± std aggregation, CELF references, and table
//! rendering. Criterion micro-benchmarks (Table III's phase timings and
//! the design-choice ablations) live in `benches/`.
//!
//! All binaries accept:
//!
//! ```text
//! --scale <f64>         multiply the default replica sizes (default 1.0)
//! --seed <u64>          base RNG seed (default 42)
//! --repeats <n>         repetitions per configuration (default 3; paper: 5)
//! --full                paper-scale grids (all ε, all datasets)
//! --json <path>         also dump rows as JSON
//! --telemetry-out <p>   write the run's event stream as JSON lines to <p>
//! --profile             enable the scoped profiler; the call tree prints
//!                       to stderr when the binary exits
//! ```
//!
//! The `bench_diff` binary compares two `--json` dumps under noise
//! tolerances and exits non-zero on regression (see [`diff`]).

pub mod diff;
pub mod experiment;
pub mod opts;
pub mod report;

pub use diff::{diff_json, DiffOptions, DiffReport};
pub use experiment::{bench_config, bench_graph, celf_reference, run_repeated, MethodRow};
pub use opts::HarnessOpts;
pub use report::{print_table, write_json, write_json_seeded};
