//! `bench diff`: regression comparator for harness JSON dumps.
//!
//! Compares two result files — either the modern `{seed, rows, telemetry}`
//! envelope written by [`crate::report::write_json_seeded`] or a legacy
//! bare row array — metric by metric under configurable noise tolerances.
//! Runtime metrics regress when the candidate is *slower* than the
//! baseline by more than `runtime_tol`; quality metrics regress when the
//! candidate is *lower* by more than `quality_tol`. Everything else is
//! informational. The binary exits non-zero when any metric regresses,
//! which is what lets CI gate on a committed baseline.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use privim_obs::json::{parse, JsonValue};

/// Noise tolerances and strictness for a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOptions {
    /// Allowed relative slowdown for runtime metrics (0.25 = 25% slower).
    pub runtime_tol: f64,
    /// Allowed relative drop for quality metrics (0.05 = 5% lower).
    pub quality_tol: f64,
    /// Runtime metrics whose baseline is below this many seconds are too
    /// noisy to gate on and are reported as informational only.
    pub min_runtime: f64,
    /// Also fail when *any* metric present in the baseline is missing
    /// from the candidate (default: only removed **quality** metrics
    /// fail; removed runtime/info metrics are reported but tolerated).
    pub strict: bool,
    /// Per-metric tolerance overrides: the first `(substring, tol)`
    /// whose substring matches the flattened metric name replaces the
    /// class tolerance for that metric. Lets CI loosen one noisy kernel
    /// (`--tol min_secs=1.0`) without widening the global gate.
    pub overrides: Vec<(String, f64)>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            runtime_tol: 0.25,
            quality_tol: 0.05,
            min_runtime: 0.01,
            strict: false,
            overrides: Vec::new(),
        }
    }
}

impl DiffOptions {
    /// The tolerance gating `name`: the first matching override, or the
    /// class default.
    pub fn tolerance_for(&self, name: &str, class: MetricClass) -> f64 {
        for (pat, tol) in &self.overrides {
            if name.contains(pat.as_str()) {
                return *tol;
            }
        }
        match class {
            MetricClass::Runtime => self.runtime_tol,
            MetricClass::Quality => self.quality_tol,
            MetricClass::Info => f64::INFINITY,
        }
    }
}

/// How a metric is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Lower is better; gated by `runtime_tol` (seconds-valued).
    Runtime,
    /// Higher is better; gated by `quality_tol`.
    Quality,
    /// Tracked and printed, never gated.
    Info,
}

/// Classifies a flattened metric name.
///
/// Wall-clock metrics carry a `secs` suffix in every harness row
/// (`preprocessing_secs`, `training_secs`, …) and in telemetry span sums
/// (`span.training.sum`). Quality metrics are the spread/coverage/gain
/// family plus the audit attack metrics (`attack_auc`,
/// `precision_at_e`, `tpr_at_low_fpr`), excluding the `_std` companions
/// (spread noise across repeats is not a regression signal).
///
/// Attack metrics gate as quality because the audit envelopes exist to
/// pin the attack harness's sensitivity: a silent drop in measured AUC
/// on the synthetic leak workloads means the attack math got weaker,
/// not that privacy improved.
pub fn classify(name: &str) -> MetricClass {
    if (name.contains("secs") && !name.contains("per_sec")) || name.ends_with(".sum") {
        return MetricClass::Runtime;
    }
    let quality = [
        "spread",
        "coverage",
        "gain",
        "auc",
        "precision_at",
        "tpr_at",
    ];
    if quality.iter().any(|q| name.contains(q)) && !name.ends_with("_std") {
        return MetricClass::Quality;
    }
    MetricClass::Info
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// `<row key> / <metric name>`.
    pub name: String,
    pub class: MetricClass,
    pub baseline: f64,
    pub candidate: f64,
    /// `(candidate - baseline) / |baseline|` (0 when baseline is 0).
    pub relative: f64,
    /// True when the change exceeds the class tolerance in the bad
    /// direction.
    pub regressed: bool,
}

/// Outcome of comparing two result files.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every metric present in both files, in row order.
    pub metrics: Vec<MetricDiff>,
    /// Metrics present in the baseline but removed from the candidate.
    /// Removed **quality** metrics always gate; the rest only under
    /// `strict`.
    pub removed: Vec<String>,
    /// Metrics present only in the candidate (new coverage, never fatal).
    pub added: Vec<String>,
}

impl DiffReport {
    /// True when any gated metric regressed, a quality metric was
    /// removed, or (under `strict`) any baseline metric was removed.
    pub fn has_regressions(&self, opts: &DiffOptions) -> bool {
        self.metrics.iter().any(|m| m.regressed)
            || self.removed_quality().next().is_some()
            || (opts.strict && !self.removed.is_empty())
    }

    /// Removed metrics whose loss is itself a regression (the quality
    /// family: dropping a spread/coverage column hides regressions).
    pub fn removed_quality(&self) -> impl Iterator<Item = &String> {
        self.removed
            .iter()
            .filter(|n| classify(metric_part(n)) == MetricClass::Quality)
    }

    /// The regressed subset.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDiff> {
        self.metrics.iter().filter(|m| m.regressed)
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let marker = if m.regressed {
                "REGRESSED"
            } else if m.class == MetricClass::Info {
                "info"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{marker:>9}  {:<60} {:>14.6} -> {:>14.6}  ({:+.1}%)",
                m.name,
                m.baseline,
                m.candidate,
                100.0 * m.relative
            );
        }
        for name in &self.removed {
            let marker = if classify(metric_part(name)) == MetricClass::Quality {
                "REMOVED" // gating: a lost quality metric hides regressions
            } else {
                "removed"
            };
            let _ = writeln!(out, "{marker:>9}  {name}");
        }
        for name in &self.added {
            let _ = writeln!(out, "    added  {name}");
        }
        let n_reg = self.regressions().count();
        let _ = writeln!(
            out,
            "{} metrics compared, {} regressed, {} removed, {} added",
            self.metrics.len(),
            n_reg,
            self.removed.len(),
            self.added.len()
        );
        out
    }

    /// Sum of the candidate's runtime-class metrics, in seconds. The
    /// scalar the [`trend_gate`] watches across history entries: creeping
    /// growth that never trips a single pairwise gate still accumulates
    /// here.
    pub fn runtime_total(&self) -> f64 {
        self.metrics
            .iter()
            .filter(|m| classify(metric_part(&m.name)) == MetricClass::Runtime)
            .map(|m| m.candidate)
            .sum()
    }

    /// One-line JSON record for `--history` trend files (JSONL): the
    /// gate outcome and counts, plus every regressed metric by name and
    /// the candidate's total runtime for trend analysis.
    pub fn history_record(
        &self,
        opts: &DiffOptions,
        baseline: &str,
        candidate: &str,
        unix_secs: u64,
    ) -> String {
        let gate = if self.has_regressions(opts) {
            "fail"
        } else {
            "pass"
        };
        let regressed: Vec<String> = self
            .regressions()
            .map(|m| format!("\"{}\"", m.name.replace('"', "'")))
            .collect();
        format!(
            "{{\"unix_secs\": {unix_secs}, \"baseline\": \"{}\", \"candidate\": \"{}\", \
             \"gate\": \"{gate}\", \"compared\": {}, \"regressed\": [{}], \
             \"removed\": {}, \"added\": {}, \"runtime_total\": {}}}",
            baseline.replace('"', "'"),
            candidate.replace('"', "'"),
            self.metrics.len(),
            regressed.join(", "),
            self.removed.len(),
            self.added.len(),
            self.runtime_total(),
        )
    }
}

/// Verdict of the [`trend_gate`] over a `--history` JSONL file.
#[derive(Debug, Clone, PartialEq)]
pub enum TrendVerdict {
    /// Fewer than `window` entries carry a `runtime_total`; no judgment.
    Insufficient {
        /// Usable entries found.
        have: usize,
        /// Entries the window needs.
        want: usize,
    },
    /// Growth across the window is within tolerance.
    Pass {
        /// `(newest - oldest) / oldest` over the window.
        growth: f64,
    },
    /// Total runtime grew beyond tolerance, but not monotonically —
    /// could be one noisy entry. Report, don't gate.
    Warn {
        /// `(newest - oldest) / oldest` over the window.
        growth: f64,
    },
    /// Runtime grew on *every* step of the window and the cumulative
    /// growth exceeds tolerance: a sustained regression trend that no
    /// single pairwise diff was large enough to catch.
    Fail {
        /// `(newest - oldest) / oldest` over the window.
        growth: f64,
    },
}

/// Judges the last `window` history entries for sustained runtime
/// growth beyond `tol` (relative, e.g. 0.15 = +15% across the window).
///
/// Unparseable lines and records without a `runtime_total` (written by
/// older versions) are skipped, so the gate activates once enough new
/// entries accumulate. A non-positive oldest runtime yields `Pass` (no
/// meaningful base to grow from).
pub fn trend_gate(history: &str, window: usize, tol: f64) -> TrendVerdict {
    assert!(window >= 2, "a trend needs at least 2 entries");
    let totals: Vec<f64> = history
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| parse(l).ok())
        .filter_map(|v| v.get("runtime_total").and_then(JsonValue::as_f64))
        .collect();
    if totals.len() < window {
        return TrendVerdict::Insufficient {
            have: totals.len(),
            want: window,
        };
    }
    let recent = &totals[totals.len() - window..];
    let oldest = recent[0];
    let newest = recent[window - 1];
    if !(oldest > 0.0) {
        return TrendVerdict::Pass { growth: 0.0 };
    }
    let growth = (newest - oldest) / oldest;
    let monotone = recent.windows(2).all(|w| w[1] > w[0]);
    if growth > tol && monotone {
        TrendVerdict::Fail { growth }
    } else if growth > tol {
        TrendVerdict::Warn { growth }
    } else {
        TrendVerdict::Pass { growth }
    }
}

/// Compares two harness JSON texts. Errors on unparseable input.
pub fn diff_json(
    baseline: &str,
    candidate: &str,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    let base = flatten(&parse(baseline).map_err(|e| format!("baseline: {e}"))?)?;
    let cand = flatten(&parse(candidate).map_err(|e| format!("candidate: {e}"))?)?;
    let mut report = DiffReport::default();
    for (name, &b) in &base {
        let Some(&c) = cand.get(name) else {
            report.removed.push(name.clone());
            continue;
        };
        let class = classify(metric_part(name));
        let relative = if b != 0.0 { (c - b) / b.abs() } else { 0.0 };
        let tol = opts.tolerance_for(name, class);
        let regressed = match class {
            MetricClass::Runtime => b >= opts.min_runtime && relative > tol,
            MetricClass::Quality => relative < -tol,
            MetricClass::Info => false,
        };
        // A runtime baseline below the noise floor is informational.
        let class = if class == MetricClass::Runtime && b < opts.min_runtime {
            MetricClass::Info
        } else {
            class
        };
        report.metrics.push(MetricDiff {
            name: name.clone(),
            class,
            baseline: b,
            candidate: c,
            relative,
            regressed,
        });
    }
    for name in cand.keys() {
        if !base.contains_key(name) {
            report.added.push(name.clone());
        }
    }
    Ok(report)
}

fn metric_part(name: &str) -> &str {
    name.rsplit(" / ").next().unwrap_or(name)
}

/// Flattens a result file into `row key / metric name -> value`.
///
/// Accepts the `{seed, rows, telemetry}` envelope and the legacy bare row
/// array. Rows are keyed by their string-valued fields (plus `epsilon`,
/// the one numeric field that identifies a configuration rather than
/// measuring it); every other numeric field becomes a metric. Telemetry
/// histogram sums and counters are flattened under a `telemetry` key.
fn flatten(value: &JsonValue) -> Result<BTreeMap<String, f64>, String> {
    let (rows, telemetry) = match value {
        JsonValue::Arr(_) => (value, None),
        JsonValue::Obj(_) => {
            let rows = value
                .get("rows")
                .ok_or("object input has no `rows` field")?;
            (rows, value.get("telemetry"))
        }
        _ => return Err("input must be a row array or a {seed, rows, telemetry} envelope".into()),
    };
    let rows = rows.as_array().ok_or("`rows` is not an array")?;
    let mut out = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let Some(fields) = row.as_object() else {
            return Err(format!("row {i} is not an object"));
        };
        let mut key_parts: Vec<String> = Vec::new();
        for (name, field) in fields {
            if let Some(s) = field.as_str() {
                key_parts.push(s.to_string());
            } else if name == "epsilon" {
                if let Some(v) = field.as_f64() {
                    key_parts.push(format!("eps={v}"));
                }
            }
        }
        let key = if key_parts.is_empty() {
            format!("row{i}")
        } else {
            key_parts.join(" ")
        };
        for (name, field) in fields {
            if name == "epsilon" {
                continue;
            }
            if let Some(v) = field.as_f64() {
                out.insert(format!("{key} / {name}"), v);
            }
        }
    }
    if let Some(telemetry) = telemetry {
        flatten_telemetry(telemetry, &mut out);
    }
    Ok(out)
}

fn flatten_telemetry(telemetry: &JsonValue, out: &mut BTreeMap<String, f64>) {
    if let Some(counters) = telemetry.get("counters").and_then(JsonValue::as_object) {
        for (name, v) in counters {
            if let Some(v) = v.as_f64() {
                out.insert(format!("telemetry / {name}"), v);
            }
        }
    }
    if let Some(hists) = telemetry.get("histograms").and_then(JsonValue::as_object) {
        for (name, summary) in hists {
            for stat in ["sum", "count", "p50"] {
                if let Some(v) = summary.get(stat).and_then(JsonValue::as_f64) {
                    out.insert(format!("telemetry / {name}.{stat}"), v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENVELOPE: &str = r#"{
      "seed": 42,
      "rows": [
        {"dataset": "Email", "method": "PrivIM*", "epsilon": 3.0,
         "spread_mean": 349.67, "spread_std": 4.2,
         "preprocessing_secs": 0.02, "training_secs": 1.5, "per_epoch_secs": 0.0014},
        {"dataset": "Email", "method": "IMM", "epsilon": 3.0,
         "spread_mean": 360.0, "spread_std": 2.0,
         "preprocessing_secs": 0.001, "training_secs": 0.0, "per_epoch_secs": 0.0}
      ],
      "telemetry": {
        "counters": {"train.iterations": 60},
        "gauges": {},
        "histograms": {
          "span.training": {"count": 3, "sum": 4.5, "min": 1.4, "max": 1.6,
                            "p50": 1.5, "p90": 1.6, "p99": 1.6}
        }
      }
    }"#;

    fn with_metric(base: &str, from: &str, to: &str) -> String {
        assert!(base.contains(from), "fixture must contain {from}");
        base.replacen(from, to, 1)
    }

    #[test]
    fn identical_envelopes_self_compare_clean() {
        let report = diff_json(ENVELOPE, ENVELOPE, &DiffOptions::default()).unwrap();
        assert!(
            !report.has_regressions(&DiffOptions::default()),
            "{}",
            report.render()
        );
        assert!(report.removed.is_empty());
        assert!(report.added.is_empty());
        assert!(!report.metrics.is_empty());
        assert!(report.metrics.iter().all(|m| m.relative == 0.0));
    }

    #[test]
    fn doubled_runtime_is_a_regression() {
        let slow = with_metric(ENVELOPE, "\"training_secs\": 1.5", "\"training_secs\": 3.0");
        let report = diff_json(ENVELOPE, &slow, &DiffOptions::default()).unwrap();
        assert!(
            report.has_regressions(&DiffOptions::default()),
            "{}",
            report.render()
        );
        let reg: Vec<_> = report.regressions().collect();
        assert_eq!(reg.len(), 1, "{}", report.render());
        assert!(reg[0].name.ends_with("training_secs"));
        assert_eq!(reg[0].class, MetricClass::Runtime);
        assert!((reg[0].relative - 1.0).abs() < 1e-12, "2x slower is +100%");
    }

    #[test]
    fn runtime_below_noise_floor_is_informational() {
        // preprocessing_secs baseline 0.001 < min_runtime 0.01: even a 10x
        // slowdown must not gate.
        let slow = with_metric(
            ENVELOPE,
            "\"preprocessing_secs\": 0.001",
            "\"preprocessing_secs\": 0.01",
        );
        let report = diff_json(ENVELOPE, &slow, &DiffOptions::default()).unwrap();
        assert!(
            !report.has_regressions(&DiffOptions::default()),
            "{}",
            report.render()
        );
    }

    #[test]
    fn quality_drop_is_a_regression_but_gain_is_not() {
        let worse = with_metric(
            ENVELOPE,
            "\"spread_mean\": 349.67",
            "\"spread_mean\": 300.0",
        );
        let report = diff_json(ENVELOPE, &worse, &DiffOptions::default()).unwrap();
        let reg: Vec<_> = report.regressions().collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].class, MetricClass::Quality);

        let better = with_metric(
            ENVELOPE,
            "\"spread_mean\": 349.67",
            "\"spread_mean\": 400.0",
        );
        let report = diff_json(ENVELOPE, &better, &DiffOptions::default()).unwrap();
        assert!(!report.has_regressions(&DiffOptions::default()));
    }

    #[test]
    fn spread_std_is_not_gated() {
        let noisy = with_metric(ENVELOPE, "\"spread_std\": 4.2", "\"spread_std\": 40.0");
        let report = diff_json(ENVELOPE, &noisy, &DiffOptions::default()).unwrap();
        assert!(
            !report.has_regressions(&DiffOptions::default()),
            "{}",
            report.render()
        );
    }

    #[test]
    fn tolerances_are_respected() {
        // +20% runtime: within the default 25%, outside a tightened 10%.
        let slower = with_metric(ENVELOPE, "\"training_secs\": 1.5", "\"training_secs\": 1.8");
        let report = diff_json(ENVELOPE, &slower, &DiffOptions::default()).unwrap();
        assert!(!report.has_regressions(&DiffOptions::default()));
        let tight = DiffOptions {
            runtime_tol: 0.1,
            ..DiffOptions::default()
        };
        let report = diff_json(ENVELOPE, &slower, &tight).unwrap();
        assert!(report.has_regressions(&tight));
    }

    #[test]
    fn legacy_bare_arrays_compare_against_envelopes() {
        let legacy = r#"[
          {"dataset": "Email", "method": "PrivIM*", "epsilon": 3.0,
           "spread_mean": 349.67, "spread_std": 4.2,
           "preprocessing_secs": 0.02, "training_secs": 1.5, "per_epoch_secs": 0.0014},
          {"dataset": "Email", "method": "IMM", "epsilon": 3.0,
           "spread_mean": 360.0, "spread_std": 2.0,
           "preprocessing_secs": 0.001, "training_secs": 0.0, "per_epoch_secs": 0.0}
        ]"#;
        let report = diff_json(legacy, ENVELOPE, &DiffOptions::default()).unwrap();
        assert!(
            !report.has_regressions(&DiffOptions::default()),
            "{}",
            report.render()
        );
        // The envelope's telemetry metrics are new coverage, not removed.
        assert!(report.removed.is_empty());
        assert!(report.added.iter().any(|n| n.contains("span.training")));
    }

    #[test]
    fn removed_runtime_metrics_fail_only_under_strict() {
        let fewer = with_metric(ENVELOPE, "\"preprocessing_secs\": 0.02, ", "");
        let report = diff_json(ENVELOPE, &fewer, &DiffOptions::default()).unwrap();
        assert_eq!(report.removed.len(), 1);
        assert!(!report.has_regressions(&DiffOptions::default()));
        assert!(report.render().contains("removed  "), "{}", report.render());
        let strict = DiffOptions {
            strict: true,
            ..DiffOptions::default()
        };
        assert!(report.has_regressions(&strict));
    }

    #[test]
    fn removed_quality_metric_gates_even_without_strict() {
        // Dropping a spread column from one row must fail the diff: a
        // quality metric that vanishes can hide a real regression.
        let fewer = with_metric(ENVELOPE, "\"spread_mean\": 349.67, ", "");
        let report = diff_json(ENVELOPE, &fewer, &DiffOptions::default()).unwrap();
        assert_eq!(report.removed.len(), 1);
        assert_eq!(report.removed_quality().count(), 1);
        assert!(
            report.has_regressions(&DiffOptions::default()),
            "{}",
            report.render()
        );
        assert!(report.render().contains("REMOVED"), "{}", report.render());
    }

    #[test]
    fn per_metric_tolerance_overrides_beat_class_defaults() {
        // +20% on training_secs: clean under the default 25% gate …
        let slower = with_metric(ENVELOPE, "\"training_secs\": 1.5", "\"training_secs\": 1.8");
        let mut opts = DiffOptions::default();
        assert!(!diff_json(ENVELOPE, &slower, &opts)
            .unwrap()
            .has_regressions(&opts));
        // … regressed once an override tightens that one metric …
        opts.overrides = vec![("training_secs".into(), 0.1)];
        assert!(diff_json(ENVELOPE, &slower, &opts)
            .unwrap()
            .has_regressions(&opts));
        // … and clean again when the override loosens it below a tight
        // global tolerance (the override wins in both directions).
        opts.runtime_tol = 0.05;
        opts.overrides = vec![("training_secs".into(), 0.5)];
        assert!(!diff_json(ENVELOPE, &slower, &opts)
            .unwrap()
            .has_regressions(&opts));
    }

    /// A kernelbench-shaped envelope: the committed `BENCH_kernels.json`
    /// baseline compared against a candidate whose matmul kernel got 2×
    /// slower must gate, while the identical candidate passes.
    #[test]
    fn kernelbench_2x_slowdown_gates_against_committed_baseline() {
        let baseline = r#"{
          "seed": 42,
          "rows": [
            {"kernel": "matmul", "size": "medium",
             "flops": 24576000, "bytes": 1638400, "items": 2, "allocs": 19,
             "min_secs": 0.02, "mean_secs": 0.021, "cv": 0.03, "gflops": 1.2,
             "checksum": 10749.8},
            {"kernel": "spmm", "size": "medium",
             "flops": 524288, "bytes": 6422528, "items": 8192, "allocs": 8215,
             "min_secs": 0.012, "mean_secs": 0.013, "cv": 0.05,
             "checksum": -528.49}
          ],
          "telemetry": {"counters": {"nn.flops.matmul": 25239552}}
        }"#;
        let opts = DiffOptions::default();
        let self_diff = diff_json(baseline, baseline, &opts).unwrap();
        assert!(!self_diff.has_regressions(&opts), "{}", self_diff.render());

        let slowed = with_metric(baseline, "\"min_secs\": 0.02,", "\"min_secs\": 0.04,");
        let report = diff_json(baseline, &slowed, &opts).unwrap();
        assert!(report.has_regressions(&opts), "{}", report.render());
        let reg: Vec<_> = report.regressions().collect();
        assert_eq!(reg.len(), 1, "{}", report.render());
        assert_eq!(reg[0].name, "matmul medium / min_secs");
        assert!((reg[0].relative - 1.0).abs() < 1e-12);
        // Work counters and checksums are informational, never gated.
        assert!(report
            .metrics
            .iter()
            .all(|m| m.class == MetricClass::Info || m.name.contains("secs")));
    }

    #[test]
    fn history_record_is_one_parseable_json_line() {
        let slow = with_metric(ENVELOPE, "\"training_secs\": 1.5", "\"training_secs\": 3.0");
        let opts = DiffOptions::default();
        let report = diff_json(ENVELOPE, &slow, &opts).unwrap();
        let line = report.history_record(&opts, "BENCH_kernels.json", "fresh.json", 1_700_000_000);
        assert!(!line.contains('\n'), "single line: {line}");
        let value = parse(&line).expect("history record parses");
        assert_eq!(value.get("gate").and_then(JsonValue::as_str), Some("fail"));
        assert_eq!(
            value.get("unix_secs").and_then(JsonValue::as_f64),
            Some(1_700_000_000.0)
        );
        let regressed = value
            .get("regressed")
            .and_then(JsonValue::as_array)
            .expect("regressed array");
        assert_eq!(regressed.len(), 1);
        assert!(regressed[0].as_str().unwrap().ends_with("training_secs"));

        let clean = diff_json(ENVELOPE, ENVELOPE, &opts).unwrap();
        let line = clean.history_record(&opts, "b.json", "c.json", 7);
        let value = parse(&line).unwrap();
        assert_eq!(value.get("gate").and_then(JsonValue::as_str), Some("pass"));
        // runtime_total = sum of all runtime-class candidate values.
        let expected = clean.runtime_total();
        assert!(expected > 0.0);
        assert_eq!(
            value.get("runtime_total").and_then(JsonValue::as_f64),
            Some(expected)
        );
    }

    fn history_of(totals: &[f64]) -> String {
        totals
            .iter()
            .map(|t| format!("{{\"gate\": \"pass\", \"runtime_total\": {t}}}\n"))
            .collect()
    }

    #[test]
    fn trend_gate_fails_only_on_sustained_growth_beyond_tolerance() {
        // Monotone +50% over the window: every step grew → Fail.
        let fail = history_of(&[1.0, 1.1, 1.2, 1.35, 1.5]);
        assert_eq!(
            trend_gate(&fail, 5, 0.15),
            TrendVerdict::Fail { growth: 0.5 }
        );
        // Same endpoints with a dip in the middle: not sustained → Warn.
        let warn = history_of(&[1.0, 1.4, 1.2, 1.35, 1.5]);
        assert_eq!(
            trend_gate(&warn, 5, 0.15),
            TrendVerdict::Warn { growth: 0.5 }
        );
        // Growth inside tolerance passes even when monotone.
        let ok = history_of(&[1.0, 1.02, 1.04, 1.06, 1.08]);
        assert!(matches!(
            trend_gate(&ok, 5, 0.15),
            TrendVerdict::Pass { .. }
        ));
        // Shrinking runtime passes.
        let faster = history_of(&[1.5, 1.2, 1.0, 0.9, 0.8]);
        assert!(matches!(
            trend_gate(&faster, 5, 0.15),
            TrendVerdict::Pass { .. }
        ));
    }

    #[test]
    fn trend_gate_windows_ignore_older_entries() {
        // Huge historical growth, but the last 3 entries are flat.
        let text = history_of(&[0.1, 0.5, 2.0, 2.0, 2.0]);
        assert!(matches!(
            trend_gate(&text, 3, 0.15),
            TrendVerdict::Pass { .. }
        ));
        // The same file judged over all 5 entries warns (non-monotone
        // tail) — the window is what makes the gate recent-history only.
        assert!(matches!(
            trend_gate(&text, 5, 0.15),
            TrendVerdict::Warn { .. }
        ));
    }

    #[test]
    fn trend_gate_skips_legacy_and_garbage_lines() {
        let mut text = String::from("not json\n{\"gate\": \"pass\"}\n\n");
        text.push_str(&history_of(&[1.0, 1.3]));
        // Only 2 usable entries: a window of 3 is insufficient.
        assert_eq!(
            trend_gate(&text, 3, 0.15),
            TrendVerdict::Insufficient { have: 2, want: 3 }
        );
        // A window of 2 judges just the usable tail.
        assert_eq!(
            trend_gate(&text, 2, 0.15),
            TrendVerdict::Fail {
                growth: 0.30000000000000004
            }
        );
    }

    #[test]
    fn trend_gate_handles_zero_baseline_runtime() {
        let text = history_of(&[0.0, 0.0, 1.0]);
        assert!(matches!(
            trend_gate(&text, 3, 0.15),
            TrendVerdict::Pass { .. }
        ));
    }

    #[test]
    fn classify_covers_the_metric_families() {
        assert_eq!(classify("training_secs"), MetricClass::Runtime);
        assert_eq!(classify("span.training.sum"), MetricClass::Runtime);
        assert_eq!(classify("sims_per_sec"), MetricClass::Info);
        assert_eq!(classify("spread_mean"), MetricClass::Quality);
        assert_eq!(classify("coverage"), MetricClass::Quality);
        assert_eq!(classify("spread_std"), MetricClass::Info);
        assert_eq!(classify("container_size"), MetricClass::Info);
        assert_eq!(classify("attack_auc"), MetricClass::Quality);
        assert_eq!(classify("precision_at_e"), MetricClass::Quality);
        assert_eq!(classify("tpr_at_low_fpr"), MetricClass::Quality);
        assert_eq!(classify("num_candidates"), MetricClass::Info);
    }

    #[test]
    fn audit_auc_drop_gates_against_committed_baseline() {
        let baseline = r#"{
          "seed": 42,
          "rows": [
            {"attack": "membership", "mode": "synthetic", "label": "sep1",
             "digest": "synthetic", "attack_auc": 0.82, "tpr_at_low_fpr": 0.4,
             "flipped": 0.0},
            {"attack": "topology", "mode": "synthetic", "label": "mix1",
             "digest": "synthetic", "precision_at_e": 0.9,
             "num_candidates": 4560.0, "num_true_edges": 96.0}
          ],
          "telemetry": {"counters": {"audit.membership_runs": 1}}
        }"#;
        let opts = DiffOptions::default();
        let self_diff = diff_json(baseline, baseline, &opts).unwrap();
        assert!(!self_diff.has_regressions(&opts), "{}", self_diff.render());

        // A weaker attack harness (lower AUC on the same synthetic
        // leak) is a quality regression.
        let weakened = with_metric(baseline, "\"attack_auc\": 0.82,", "\"attack_auc\": 0.55,");
        let report = diff_json(baseline, &weakened, &opts).unwrap();
        assert!(report.has_regressions(&opts), "{}", report.render());
        let reg: Vec<_> = report.regressions().collect();
        assert_eq!(reg.len(), 1, "{}", report.render());
        assert_eq!(
            reg[0].name,
            "membership synthetic sep1 synthetic / attack_auc"
        );
        assert_eq!(reg[0].class, MetricClass::Quality);

        // Candidate counts are informational, never gated.
        let resampled = with_metric(
            baseline,
            "\"num_candidates\": 4560.0,",
            "\"num_candidates\": 100.0,",
        );
        let report = diff_json(baseline, &resampled, &opts).unwrap();
        assert!(!report.has_regressions(&opts), "{}", report.render());
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(diff_json("not json", ENVELOPE, &DiffOptions::default()).is_err());
        assert!(diff_json("{\"seed\": 1}", ENVELOPE, &DiffOptions::default()).is_err());
        assert!(diff_json("3.5", ENVELOPE, &DiffOptions::default()).is_err());
    }
}
