//! loadgen — closed-loop load generator for the `privim-serve` inference
//! server.
//!
//! Starts an in-process server over a synthetic Email-replica fixture
//! (or targets an external `--addr`), drives it with `--clients`
//! closed-loop clients alternating `/v1/seeds` and `/v1/spread`
//! requests, and — unless `--no-shutdown` — requests a graceful
//! shutdown halfway through to verify that no in-flight request is
//! dropped while the server drains.
//!
//! Prints per-route throughput and latency percentiles, optionally
//! writing them as a `{seed, rows, telemetry}` JSON envelope via
//! `--json`. Exits 1 if any request was dropped (no response on an
//! established connection outside the shutdown window).
//!
//! `--rate <rps>` switches to *open-loop* arrivals: requests are
//! scheduled on a global clock at the offered rate regardless of how
//! fast responses come back, the way real traffic behaves. In that mode
//! 503s are never retried — shed load is the measurement, not a hiccup —
//! and the summary reports offered vs achieved throughput, the shed
//! rate, and tail (p999) latency.
//!
//! `--retries <n>` gives each closed-loop request a retry budget for
//! transport errors and 503s, backing off `--backoff-ms * 2^(k-1)`
//! between attempts; the envelope reports retried-vs-failed counts per
//! route. The default budget is zero, so the strict zero-drop exit gate
//! is unchanged unless retries are explicitly enabled.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use privim_bench::{print_table, write_json_seeded};
use privim_datasets::paper::Dataset;
use privim_graph::io;
use privim_nn::models::{build_model, ModelKind};
use privim_nn::serialize::Checkpoint;
use privim_serve::{App, AppConfig, HttpClient, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Debug, Clone)]
struct Opts {
    clients: usize,
    requests: usize,
    workers: usize,
    queue_depth: usize,
    scale: f64,
    seed: u64,
    trials: usize,
    json: Option<String>,
    addr: Option<String>,
    no_shutdown: bool,
    /// Open-loop offered rate in requests/second (`None` = closed loop).
    rate: Option<f64>,
    /// Closed-loop retry budget per request (`--retries`): extra attempts
    /// on transport errors and 503s. Zero (the default) keeps the strict
    /// zero-drop gate — any transport error is a dropped request. Open
    /// loop never retries: shed load is the measurement there.
    retries: usize,
    /// Base for the deterministic exponential backoff between retry
    /// attempts (`--backoff-ms`): attempt k sleeps `backoff * 2^(k-1)`.
    backoff_ms: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            clients: 8,
            requests: 50,
            workers: 4,
            queue_depth: 64,
            scale: 0.15,
            seed: 42,
            trials: 200,
            json: None,
            addr: None,
            no_shutdown: false,
            rate: None,
            retries: 0,
            backoff_ms: 50,
        }
    }
}

const USAGE: &str = "usage: loadgen [--clients n] [--requests n] [--workers n] \
                     [--queue-depth n] [--scale f] [--seed u] [--trials n] \
                     [--rate rps] [--retries n] [--backoff-ms n] [--json path] \
                     [--addr host:port] [--no-shutdown]";

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--clients" => opts.clients = num(&value("--clients")?, "--clients")?,
            "--requests" => opts.requests = num(&value("--requests")?, "--requests")?,
            "--workers" => opts.workers = num(&value("--workers")?, "--workers")?,
            "--queue-depth" => opts.queue_depth = num(&value("--queue-depth")?, "--queue-depth")?,
            "--scale" => opts.scale = num(&value("--scale")?, "--scale")?,
            "--seed" => opts.seed = num(&value("--seed")?, "--seed")?,
            "--trials" => opts.trials = num(&value("--trials")?, "--trials")?,
            "--json" => opts.json = Some(value("--json")?),
            "--addr" => opts.addr = Some(value("--addr")?),
            "--no-shutdown" => opts.no_shutdown = true,
            "--rate" => opts.rate = Some(num(&value("--rate")?, "--rate")?),
            "--retries" => opts.retries = num(&value("--retries")?, "--retries")?,
            "--backoff-ms" => opts.backoff_ms = num(&value("--backoff-ms")?, "--backoff-ms")?,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    if opts.clients == 0 || opts.requests == 0 {
        return Err("--clients and --requests must be at least 1".into());
    }
    if let Some(rate) = opts.rate {
        if !(rate > 0.0) || !rate.is_finite() {
            return Err("--rate must be a positive requests/second value".into());
        }
    }
    Ok(opts)
}

fn num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("bad value for {flag}: {e}"))
}

/// One request's fate, as seen from the client side.
enum Outcome {
    /// Answered; status, latency (across all attempts), and how many
    /// retry attempts it took. The request id ties the measurement to
    /// server-side spans and logs (the envelope reports the slowest).
    Answered {
        route: &'static str,
        status: u16,
        ms: f64,
        retries: usize,
        request_id: String,
    },
    /// No response on an established connection while the server was NOT
    /// shutting down — after exhausting the retry budget — the failure
    /// mode the harness exists to catch. The request id names the
    /// casualty so it can be looked up in the server's logs or
    /// flight-recorder dump.
    Dropped {
        route: &'static str,
        request_id: String,
        retries: usize,
    },
    /// Failed during the shutdown window (connection refused or drained);
    /// expected load shedding, not an error.
    Shed,
}

/// One of a route's slowest requests: its id (greppable in server spans
/// and logs — and resolvable via `privim trace-view --request-id`) and
/// its client-observed latency.
#[derive(Debug, Serialize)]
struct SlowRequest {
    request_id: String,
    ms: f64,
}

#[derive(Debug, Serialize)]
struct RouteRow {
    route: String,
    requests: usize,
    ok: usize,
    rejected: usize,
    errors: usize,
    dropped: usize,
    /// Requests that needed at least one retry (whatever their fate).
    retried: usize,
    /// Total extra attempts spent across all retried requests.
    retry_attempts: usize,
    /// Request ids of the dropped requests, for server-side forensics.
    dropped_ids: Vec<String>,
    /// The slowest successfully answered requests (worst first): feed
    /// these ids to the trace assembler to decompose the tail.
    slowest: Vec<SlowRequest>,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

/// Writes the graph + checkpoint fixture the in-process server loads.
fn write_fixture(dir: &std::path::Path, scale: f64, seed: u64) -> AppConfig {
    std::fs::create_dir_all(dir).expect("create fixture dir");
    let graph = Dataset::Email.generate(scale, seed);
    let graph_path = dir.join("email.bin");
    io::save_binary(&graph, &graph_path).expect("save fixture graph");
    let in_dim = 8;
    let mut rng = StdRng::seed_from_u64(seed);
    let model = build_model(ModelKind::GraphSage, in_dim, 16, 2, &mut rng);
    let checkpoint_path = dir.join("model.json");
    Checkpoint::capture(model.as_ref(), in_dim, 16, 2)
        .save(&checkpoint_path)
        .expect("save fixture checkpoint");
    AppConfig::new(
        graph_path.to_string_lossy().into_owned(),
        checkpoint_path.to_string_lossy().into_owned(),
    )
}

fn run_client(
    addr: &str,
    client_id: usize,
    opts: &Opts,
    completed: &AtomicUsize,
    shutting_down: &AtomicBool,
) -> Vec<Outcome> {
    let mut outcomes = Vec::with_capacity(opts.requests);
    let mut client = match HttpClient::connect(addr) {
        Ok(c) => c,
        Err(_) => return outcomes, // server already gone; nothing in flight
    };
    for i in 0..opts.requests {
        let request_seed = opts.seed + (client_id * opts.requests + i) as u64;
        let (route, path, body): (&'static str, &str, String) = if i % 2 == 0 {
            (
                "seeds",
                "/v1/seeds",
                format!(r#"{{"k": 10, "seed": {request_seed}}}"#),
            )
        } else {
            (
                "spread",
                "/v1/spread",
                format!(
                    r#"{{"seeds": [0, 1, 2], "trials": {}, "seed": {request_seed}, "steps": 1}}"#,
                    opts.trials
                ),
            )
        };
        // Deterministic per-request id: greppable in the server's JSONL
        // events and flight-recorder dump, reproducible from the seed.
        let request_id = format!(
            "loadgen-{client_id}-{i}-{:016x}",
            privim_obs::fault::splitmix64(request_seed)
        );
        let start = Instant::now();
        let mut retries = 0usize;
        let outcome = loop {
            let attempt =
                client.post_with_headers(path, &[("X-Request-Id", &request_id)], body.as_bytes());
            match attempt {
                Ok(resp) => {
                    if resp.status == 503 && retries < opts.retries {
                        retries += 1;
                        std::thread::sleep(backoff_for(opts.backoff_ms, retries));
                        continue;
                    }
                    let ms = start.elapsed().as_secs_f64() * 1e3;
                    completed.fetch_add(1, Ordering::SeqCst);
                    if resp.status == 503 {
                        // Backpressure: honor Retry-After (slightly jittered
                        // by client id so clients do not re-stampede the
                        // queue).
                        std::thread::sleep(Duration::from_millis(5 + (client_id as u64 % 7)));
                    }
                    break Some(Outcome::Answered {
                        route,
                        status: resp.status,
                        ms,
                        retries,
                        request_id: request_id.clone(),
                    });
                }
                Err(_) if shutting_down.load(Ordering::SeqCst) => break None, // shed
                Err(_) if retries < opts.retries => {
                    // Transport error with budget left: back off and retry
                    // (the client reconnects on the next attempt).
                    retries += 1;
                    std::thread::sleep(backoff_for(opts.backoff_ms, retries));
                }
                Err(_) => {
                    break Some(Outcome::Dropped {
                        route,
                        request_id: request_id.clone(),
                        retries,
                    })
                }
            }
        };
        match outcome {
            Some(o) => outcomes.push(o),
            None => {
                outcomes.push(Outcome::Shed);
                break; // server is draining; this client is done
            }
        }
    }
    outcomes
}

/// Deterministic exponential backoff: attempt `k` (1-based) sleeps
/// `base * 2^(k-1)`, capped at a 10-doubling shift.
fn backoff_for(base_ms: u64, attempt: usize) -> Duration {
    Duration::from_millis(base_ms.saturating_mul(1u64 << (attempt - 1).min(10)))
}

/// Returns the request triple for arrival `i` (routes alternate).
fn request_for(i: usize, seed: u64, trials: usize) -> (&'static str, &'static str, String) {
    let request_seed = seed + i as u64;
    if i % 2 == 0 {
        (
            "seeds",
            "/v1/seeds",
            format!(r#"{{"k": 10, "seed": {request_seed}}}"#),
        )
    } else {
        (
            "spread",
            "/v1/spread",
            format!(
                r#"{{"seeds": [0, 1, 2], "trials": {trials}, "seed": {request_seed}, "steps": 1}}"#,
            ),
        )
    }
}

/// Open-loop client: arrivals are slots on a global clock ticking at
/// `rate` requests/second; the shared index hands each thread the next
/// slot and the thread sleeps until that slot's scheduled instant. If
/// every thread is stuck waiting on a slow server, arrivals fall behind
/// schedule — exactly the overload signal the mode exists to measure —
/// and 503s are recorded without retry.
#[allow(clippy::too_many_arguments)]
fn run_open_loop_client(
    addr: &str,
    opts: &Opts,
    rate: f64,
    total: usize,
    arrivals: &AtomicUsize,
    epoch: Instant,
    completed: &AtomicUsize,
    shutting_down: &AtomicBool,
) -> Vec<Outcome> {
    let mut outcomes = Vec::new();
    let mut client = match HttpClient::connect(addr) {
        Ok(c) => c,
        Err(_) => return outcomes,
    };
    loop {
        let i = arrivals.fetch_add(1, Ordering::SeqCst);
        if i >= total {
            break;
        }
        let due = epoch + Duration::from_secs_f64(i as f64 / rate);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let (route, path, body) = request_for(i, opts.seed, opts.trials);
        let request_id = format!(
            "loadgen-open-{i}-{:016x}",
            privim_obs::fault::splitmix64(opts.seed + i as u64)
        );
        let start = Instant::now();
        match client.post_with_headers(path, &[("X-Request-Id", &request_id)], body.as_bytes()) {
            Ok(resp) => {
                let ms = start.elapsed().as_secs_f64() * 1e3;
                completed.fetch_add(1, Ordering::SeqCst);
                outcomes.push(Outcome::Answered {
                    route,
                    status: resp.status,
                    ms,
                    retries: 0,
                    request_id,
                });
            }
            Err(_) if shutting_down.load(Ordering::SeqCst) => {
                outcomes.push(Outcome::Shed);
                break;
            }
            Err(_) => outcomes.push(Outcome::Dropped {
                route,
                request_id,
                retries: 0,
            }),
        }
    }
    outcomes
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    if let Some(sink) = privim_obs::StderrSink::from_env() {
        privim_obs::install_sink(Arc::new(sink));
    }
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    // Either start an in-process server over a temp fixture, or target an
    // externally running one (no shutdown is exercised in that mode).
    let fixture_dir = std::env::temp_dir().join(format!("privim-loadgen-{}", std::process::id()));
    let server: Option<Server> = match &opts.addr {
        Some(_) => None,
        None => {
            let app_config = write_fixture(&fixture_dir, opts.scale, opts.seed);
            let app = App::load(&app_config).expect("load fixture app");
            let config = ServerConfig {
                workers: opts.workers,
                queue_depth: opts.queue_depth,
                ..ServerConfig::default()
            };
            Some(Server::start(config, Arc::new(app)).expect("start server"))
        }
    };
    let addr = match (&opts.addr, &server) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    let total = opts.clients * opts.requests;
    let shutdown_at = total / 2;
    // Open-loop runs measure steady-state shedding; mixing in a mid-run
    // drain would conflate the two shed sources.
    let exercise_shutdown = !opts.no_shutdown && server.is_some() && opts.rate.is_none();
    match opts.rate {
        Some(rate) => println!(
            "loadgen: open-loop, {total} arrivals at {rate} rps over {} connections \
             against {addr}",
            opts.clients
        ),
        None => println!(
            "loadgen: {} clients x {} requests against {addr} ({})",
            opts.clients,
            opts.requests,
            if exercise_shutdown {
                format!("graceful shutdown after ~{shutdown_at} responses")
            } else {
                "no mid-run shutdown".to_string()
            }
        ),
    }

    let completed = AtomicUsize::new(0);
    let shutting_down = AtomicBool::new(false);
    let clients_done = AtomicBool::new(false);
    let arrivals = AtomicUsize::new(0);
    let started = Instant::now();

    let mut all_outcomes: Vec<Outcome> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|client_id| {
                let (addr, opts) = (&addr, &opts);
                let (completed, shutting_down) = (&completed, &shutting_down);
                let arrivals = &arrivals;
                scope.spawn(move || match opts.rate {
                    Some(rate) => run_open_loop_client(
                        addr,
                        opts,
                        rate,
                        total,
                        arrivals,
                        started,
                        completed,
                        shutting_down,
                    ),
                    None => run_client(addr, client_id, opts, completed, shutting_down),
                })
            })
            .collect();
        if exercise_shutdown {
            let server = server.as_ref().expect("in-process server");
            let (completed, shutting_down, clients_done) =
                (&completed, &shutting_down, &clients_done);
            scope.spawn(move || {
                while completed.load(Ordering::SeqCst) < shutdown_at
                    && !clients_done.load(Ordering::SeqCst)
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Flag first so late client errors classify as shed, not
                // dropped, then stop accepting and drain.
                shutting_down.store(true, Ordering::SeqCst);
                server.request_shutdown();
            });
        }
        for handle in handles {
            all_outcomes.extend(handle.join().expect("client thread"));
        }
        clients_done.store(true, Ordering::SeqCst);
    });
    let elapsed = started.elapsed().as_secs_f64();
    if let Some(server) = server {
        server.shutdown(); // drains whatever is left, flushes telemetry
    }
    let _ = std::fs::remove_dir_all(&fixture_dir);

    // Aggregate per route.
    let mut rows: Vec<RouteRow> = Vec::new();
    let mut shed = 0usize;
    for route in ["seeds", "spread"] {
        let mut latencies: Vec<f64> = Vec::new();
        let mut slow: Vec<(f64, String)> = Vec::new();
        let mut row = RouteRow {
            route: route.to_string(),
            requests: 0,
            ok: 0,
            rejected: 0,
            errors: 0,
            dropped: 0,
            retried: 0,
            retry_attempts: 0,
            dropped_ids: Vec::new(),
            slowest: Vec::new(),
            throughput_rps: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            p999_ms: 0.0,
        };
        for outcome in &all_outcomes {
            match outcome {
                Outcome::Answered {
                    route: r,
                    status,
                    ms,
                    retries,
                    request_id,
                } if *r == route => {
                    row.requests += 1;
                    row.retried += usize::from(*retries > 0);
                    row.retry_attempts += retries;
                    match status {
                        200 => {
                            row.ok += 1;
                            latencies.push(*ms);
                            slow.push((*ms, request_id.clone()));
                        }
                        503 => row.rejected += 1,
                        _ => row.errors += 1,
                    }
                }
                Outcome::Dropped {
                    route: r,
                    request_id,
                    retries,
                } if *r == route => {
                    row.requests += 1;
                    row.dropped += 1;
                    row.retried += usize::from(*retries > 0);
                    row.retry_attempts += retries;
                    row.dropped_ids.push(request_id.clone());
                }
                _ => {}
            }
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        // Worst-latency requests first; their ids feed the trace
        // assembler for tail decomposition.
        slow.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite latency"));
        row.slowest = slow
            .into_iter()
            .take(5)
            .map(|(ms, request_id)| SlowRequest { request_id, ms })
            .collect();
        row.p50_ms = percentile(&latencies, 0.50);
        row.p95_ms = percentile(&latencies, 0.95);
        row.p99_ms = percentile(&latencies, 0.99);
        row.p999_ms = percentile(&latencies, 0.999);
        row.throughput_rps = row.ok as f64 / elapsed.max(1e-9);
        rows.push(row);
    }
    for outcome in &all_outcomes {
        if matches!(outcome, Outcome::Shed) {
            shed += 1;
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.route.clone(),
                r.requests.to_string(),
                r.ok.to_string(),
                r.rejected.to_string(),
                r.errors.to_string(),
                r.dropped.to_string(),
                r.retried.to_string(),
                format!("{:.1}", r.throughput_rps),
                format!("{:.2}", r.p50_ms),
                format!("{:.2}", r.p95_ms),
                format!("{:.2}", r.p99_ms),
                format!("{:.2}", r.p999_ms),
            ]
        })
        .collect();
    println!();
    print_table(
        &[
            "route", "reqs", "ok", "503", "err", "dropped", "retried", "rps", "p50ms", "p95ms",
            "p99ms", "p999ms",
        ],
        &table,
    );
    let retried: usize = rows.iter().map(|r| r.retried).sum();
    let retry_attempts: usize = rows.iter().map(|r| r.retry_attempts).sum();
    println!(
        "\n{} responses in {elapsed:.2}s ({} shed during shutdown, \
         {retried} retried over {retry_attempts} extra attempts)",
        completed.load(Ordering::SeqCst),
        shed
    );
    if let Some(rate) = opts.rate {
        // Open-loop scoreboard: 503s are the server-side shed signal.
        let ok: usize = rows.iter().map(|r| r.ok).sum();
        let rejected: usize = rows.iter().map(|r| r.rejected).sum();
        let answered: usize = rows.iter().map(|r| r.requests).sum();
        let shed_pct = 100.0 * rejected as f64 / answered.max(1) as f64;
        let p999 = rows.iter().map(|r| r.p999_ms).fold(0.0f64, f64::max);
        println!(
            "open-loop: offered {rate:.1} rps, achieved {:.1} rps ok, \
             shed {rejected}/{answered} ({shed_pct:.1}%), p999 {p999:.2}ms",
            ok as f64 / elapsed.max(1e-9),
        );
    }

    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &rows).expect("write json");
        println!("wrote {path}");
    }
    privim_obs::flush_sinks();

    let dropped: usize = rows.iter().map(|r| r.dropped).sum();
    if dropped > 0 {
        let ids: Vec<&str> = rows
            .iter()
            .flat_map(|r| r.dropped_ids.iter().map(String::as_str))
            .collect();
        eprintln!(
            "FAIL: {dropped} request(s) dropped outside the shutdown window \
             (ids: {})",
            ids.join(", ")
        );
        std::process::exit(1);
    }
}
