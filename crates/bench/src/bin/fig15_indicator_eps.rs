//! Figure 15 (Appendix K): the indicator's trend vs empirical results at
//! different privacy budgets (ε = 1 and ε = 6) on LastFM. The indicator is
//! privacy-budget-free, so the test is whether the *empirical* peak stays
//! aligned with it as ε changes.

use privim_bench::{
    bench_config, bench_graph, celf_reference, print_table, run_repeated, write_json_seeded,
    HarnessOpts,
};
use privim_core::indicator::Indicator;
use privim_core::pipeline::Method;
use privim_datasets::paper::Dataset;

fn main() {
    let opts = HarnessOpts::from_env();
    let dataset = Dataset::LastFm;
    let g = bench_graph(dataset, &opts);
    let spec = dataset.spec();
    eprintln!("[fig15] {}: |V|={}", spec.name, g.num_nodes());
    let indicator = Indicator::default();
    let n_grid = [20usize, 40, 60, 80];
    let m_grid = [2usize, 4, 6, 8];
    let grid = indicator.values_on_grid(&n_grid, &m_grid, spec.num_nodes);
    let k = bench_config(g.num_nodes(), None).seed_size;
    let celf = celf_reference(&g, k);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for eps in [1.0, 6.0] {
        for (i, &n) in n_grid.iter().enumerate() {
            for (j, &m) in m_grid.iter().enumerate() {
                let mut cfg = bench_config(g.num_nodes(), Some(eps));
                cfg.subgraph_size = n;
                cfg.freq_threshold = m;
                let r = run_repeated(
                    &g,
                    spec.name,
                    Method::PrivImStar,
                    &cfg,
                    celf,
                    opts.repeats,
                    opts.seed + (n * 37 + m) as u64 + eps as u64,
                );
                rows.push(vec![
                    format!("{eps}"),
                    format!("{n}"),
                    format!("{m}"),
                    format!("{:.3}", grid[i][j]),
                    format!("{:.1}", r.spread_mean),
                ]);
                json_rows.push((eps, n, m, grid[i][j], r.spread_mean));
            }
        }
    }

    println!("Figure 15 — indicator vs empirical spread on LastFM at eps = 1 and 6\n");
    print_table(&["eps", "n", "M", "indicator I(n,M)", "spread"], &rows);
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &json_rows).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
