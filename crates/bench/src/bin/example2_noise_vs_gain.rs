//! Example 2: why noisy greedy fails under node-level DP.
//!
//! On a Gowalla-sized graph, the Laplace mechanism for the greedy marginal
//! gain needs noise scale Δf/ε ≈ |V|/ε, while real marginal gains are
//! 10⁰–10³. This binary measures both quantities on the replica and shows
//! the signal-to-noise ratio collapsing — the paper's motivation for
//! learning-based PrivIM.

use privim_bench::{bench_graph, print_table, write_json_seeded, HarnessOpts};
use privim_datasets::paper::Dataset;
use privim_dp::mechanisms::laplace_mechanism;
use privim_im::greedy::celf_coverage;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = HarnessOpts::from_env();
    let g = bench_graph(Dataset::Gowalla, &opts);
    let n = g.num_nodes();
    println!("Example 2 — Laplace noise vs greedy gain on Gowalla replica (|V| = {n})\n");

    // True top greedy marginal gains (what the mechanism must preserve).
    let (seeds, _) = celf_coverage(&g, 10);
    let mut covered = vec![false; n];
    let mut gains = Vec::new();
    for &s in &seeds {
        let mut gain = usize::from(!covered[s as usize]);
        covered[s as usize] = true;
        for &u in g.out_neighbors(s) {
            if !covered[u as usize] {
                covered[u as usize] = true;
                gain += 1;
            }
        }
        gains.push(gain as f64);
    }

    let sensitivity = n as f64; // removing one node can change gains by Θ(|V|)
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for eps in [0.5, 1.0, 2.0, 4.0] {
        let noise_scale = sensitivity / eps;
        let trials = 2_000;
        // Fraction of trials where the noised best gain is still ranked
        // above the noised worst gain — i.e., where selection survives.
        let best = gains[0];
        let worst = *gains.last().unwrap();
        let survived = (0..trials)
            .filter(|_| {
                let nb = laplace_mechanism(&mut rng, best, sensitivity, eps);
                let nw = laplace_mechanism(&mut rng, worst, sensitivity, eps);
                nb > nw
            })
            .count();
        let survival = survived as f64 / trials as f64;
        rows.push(vec![
            format!("{eps}"),
            format!("{:.0}", best),
            format!("{:.0}", noise_scale),
            format!("{:.1}x", noise_scale / best),
            format!("{:.1}%", 100.0 * survival),
        ]);
        json_rows.push((eps, best, noise_scale, survival));
    }
    print_table(
        &[
            "epsilon",
            "top gain",
            "noise scale |V|/eps",
            "noise/gain",
            "ranking survives",
        ],
        &rows,
    );
    println!(
        "\nWith ranking-survival near 50% (a coin flip), noisy greedy selection is \
         uninformative — matching the paper's Example 2."
    );
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &json_rows).expect("write json");
        println!("wrote {path}");
    }
    opts.finish();
}
