//! Table I: statistics of the experimented datasets.
//!
//! Prints the paper's specification next to the generated synthetic
//! replica at the harness scale, so the calibration of the substitution
//! (DESIGN.md §3) is auditable.

use privim_bench::{bench_graph, print_table, write_json_seeded, HarnessOpts};
use privim_datasets::paper::Dataset;
use privim_graph::stats::graph_stats;

fn main() {
    let opts = HarnessOpts::from_env();
    println!("Table I — dataset statistics (paper spec vs generated replica)\n");
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for dataset in Dataset::SIX {
        let spec = dataset.spec();
        let g = bench_graph(dataset, &opts);
        let s = graph_stats(&g);
        rows.push(vec![
            spec.name.to_string(),
            format!("{}", spec.num_nodes),
            format!("{:.2}", spec.avg_degree),
            if spec.directed {
                "Directed"
            } else {
                "Undirected"
            }
            .to_string(),
            format!("{}", s.num_nodes),
            format!("{}", s.num_edges),
            format!("{:.2}", s.avg_degree),
            format!("{}", s.max_in_degree),
            format!("{:.3}", s.avg_clustering),
        ]);
        json_rows.push((spec, s));
    }
    // Friendster is partitioned (Section V-A); report one partition's shape.
    let parts = Dataset::Friendster.generate_partitions(400, 2, opts.seed);
    let s = graph_stats(&parts[0]);
    rows.push(vec![
        "Friendster (1 of 2 partitions)".into(),
        format!("{}", Dataset::Friendster.spec().num_nodes),
        format!("{:.2}", Dataset::Friendster.spec().avg_degree),
        "Undirected".into(),
        format!("{}", s.num_nodes),
        format!("{}", s.num_edges),
        format!("{:.2}", s.avg_degree),
        format!("{}", s.max_in_degree),
        format!("{:.3}", s.avg_clustering),
    ]);
    print_table(
        &[
            "Dataset",
            "|V| (paper)",
            "AvgDeg (paper)",
            "Type",
            "|V| (replica)",
            "|E| (replica)",
            "AvgDeg",
            "MaxInDeg",
            "Clustering",
        ],
        &rows,
    );
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &json_rows).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
