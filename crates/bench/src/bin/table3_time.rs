//! Table III: computational time cost (preprocessing vs per-epoch
//! training) of PrivIM*, PrivIM, HP-GRAT and EGN over the six datasets.
//! (Criterion micro-benchmarks of the same phases live in `benches/`.)

use privim_bench::{
    bench_config, bench_graph, celf_reference, print_table, run_repeated, write_json_seeded,
    HarnessOpts, MethodRow,
};
use privim_core::pipeline::Method;
use privim_datasets::paper::Dataset;

fn main() {
    let opts = HarnessOpts::from_env();
    let methods = [
        Method::PrivImStar,
        Method::PrivIm,
        Method::HpGrat,
        Method::Egn,
    ];

    let mut rows = Vec::new();
    let mut all: Vec<MethodRow> = Vec::new();
    for method in methods {
        for dataset in Dataset::SIX {
            let g = bench_graph(dataset, &opts);
            let name = dataset.spec().name;
            let k = bench_config(g.num_nodes(), None).seed_size;
            let celf = celf_reference(&g, k);
            let cfg = bench_config(g.num_nodes(), Some(3.0));
            let r = run_repeated(&g, name, method, &cfg, celf, opts.repeats, opts.seed);
            rows.push(vec![
                method.name().to_string(),
                name.to_string(),
                format!("{:.3}s", r.preprocessing_secs),
                format!("{:.3}s", r.per_epoch_secs),
            ]);
            all.push(r);
        }
    }

    println!("Table III — computational time cost (seconds)\n");
    print_table(
        &["method", "dataset", "preprocessing", "per-epoch training"],
        &rows,
    );
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &all).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
