//! Table II: coverage-ratio ablation of the dual-stage sampling scheme —
//! PrivIM vs PrivIM+SCS vs PrivIM+SCS+BES (= PrivIM*) at ε ∈ {4, 1}, plus
//! the Non-Private reference, over the six datasets.

use privim_bench::{
    bench_config, bench_graph, celf_reference, print_table, run_repeated, write_json_seeded,
    HarnessOpts, MethodRow,
};
use privim_core::pipeline::Method;
use privim_datasets::paper::Dataset;

fn main() {
    let opts = HarnessOpts::from_env();
    let mut rows = Vec::new();
    let mut all: Vec<MethodRow> = Vec::new();

    for dataset in Dataset::SIX {
        let g = bench_graph(dataset, &opts);
        let name = dataset.spec().name;
        eprintln!("[table2] {name}: |V|={}", g.num_nodes());
        let k = bench_config(g.num_nodes(), None).seed_size;
        let celf = celf_reference(&g, k);

        let np_cfg = bench_config(g.num_nodes(), None);
        let np = run_repeated(
            &g,
            name,
            Method::NonPrivate,
            &np_cfg,
            celf,
            opts.repeats,
            opts.seed,
        );
        rows.push(row_of(&np, "inf"));
        all.push(np);

        for eps in [4.0, 1.0] {
            for method in [Method::PrivIm, Method::PrivImScs, Method::PrivImStar] {
                let cfg = bench_config(g.num_nodes(), Some(eps));
                let r = run_repeated(
                    &g,
                    name,
                    method,
                    &cfg,
                    celf,
                    opts.repeats,
                    opts.seed + eps as u64,
                );
                rows.push(row_of(&r, &format!("{eps}")));
                all.push(r);
            }
        }
    }

    println!("Table II — coverage ratio (%) of the sampling-scheme ablation\n");
    print_table(&["dataset", "method", "eps", "coverage %"], &rows);
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &all).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}

fn row_of(r: &MethodRow, eps: &str) -> Vec<String> {
    vec![
        r.dataset.clone(),
        r.method.clone(),
        eps.to_string(),
        format!("{:.2} ± {:.2}", r.coverage_mean, r.coverage_std),
    ]
}
