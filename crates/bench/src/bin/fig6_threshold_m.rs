//! Figures 6 and 10: impact of the frequency threshold M on PrivIM*
//! (ε = 3), for several subgraph sizes n. Quick mode covers Facebook and
//! Gowalla (the paper's Figure 6); `--full` adds the remaining datasets
//! (Figure 10).

use privim_bench::{
    bench_config, bench_graph, celf_reference, print_table, run_repeated, write_json_seeded,
    HarnessOpts, MethodRow,
};
use privim_core::pipeline::Method;
use privim_datasets::paper::Dataset;

fn main() {
    let opts = HarnessOpts::from_env();
    let datasets: Vec<Dataset> = if opts.full {
        Dataset::SIX.to_vec()
    } else {
        vec![Dataset::Facebook, Dataset::Gowalla]
    };
    // The paper: M ∈ {4..12} for Email (1K nodes), {2..10} elsewhere;
    // n ∈ {20, 40, 60, 80}.
    let n_grid = [20usize, 40, 60, 80];

    let mut rows = Vec::new();
    let mut all: Vec<MethodRow> = Vec::new();
    for dataset in datasets {
        let g = bench_graph(dataset, &opts);
        let name = dataset.spec().name;
        let m_grid: [usize; 5] = if dataset == Dataset::Email {
            [4, 6, 8, 10, 12]
        } else {
            [2, 4, 6, 8, 10]
        };
        eprintln!("[fig6] {name}: |V|={}", g.num_nodes());
        let k = bench_config(g.num_nodes(), None).seed_size;
        let celf = celf_reference(&g, k);
        for &n in &n_grid {
            for &m in &m_grid {
                let mut cfg = bench_config(g.num_nodes(), Some(3.0));
                cfg.subgraph_size = n;
                cfg.freq_threshold = m;
                let r = run_repeated(
                    &g,
                    name,
                    Method::PrivImStar,
                    &cfg,
                    celf,
                    opts.repeats,
                    opts.seed + (n * 100 + m) as u64,
                );
                rows.push(vec![
                    name.to_string(),
                    format!("{n}"),
                    format!("{m}"),
                    format!("{:.1} ± {:.1}", r.spread_mean, r.spread_std),
                    format!("{:.1}", r.coverage_mean),
                ]);
                all.push(r);
            }
        }
    }

    println!("Figure 6 / Figure 10 — impact of threshold M on PrivIM* (eps = 3)\n");
    print_table(&["dataset", "n", "M", "spread", "coverage %"], &rows);
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &all).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
