//! Figure 9: coverage ratio of PrivIM* with different GNN backbones
//! (GraphSAGE, GCN, GAT, GIN, GRAT) at ε = 2 and ε = 5.

use privim_bench::{
    bench_config, bench_graph, celf_reference, print_table, run_repeated, write_json_seeded,
    HarnessOpts, MethodRow,
};
use privim_core::pipeline::Method;
use privim_datasets::paper::Dataset;
use privim_nn::models::ModelKind;

fn main() {
    let opts = HarnessOpts::from_env();
    let datasets: Vec<Dataset> = if opts.full {
        Dataset::SIX.to_vec()
    } else {
        vec![Dataset::Email, Dataset::LastFm, Dataset::Facebook]
    };
    let models = [
        ModelKind::GraphSage,
        ModelKind::Gcn,
        ModelKind::Gat,
        ModelKind::Gin,
        ModelKind::Grat,
    ];

    let mut rows = Vec::new();
    let mut all: Vec<MethodRow> = Vec::new();
    for dataset in datasets {
        let g = bench_graph(dataset, &opts);
        let name = dataset.spec().name;
        eprintln!("[fig9] {name}: |V|={}", g.num_nodes());
        let k = bench_config(g.num_nodes(), None).seed_size;
        let celf = celf_reference(&g, k);
        for eps in [2.0, 5.0] {
            for kind in models {
                let mut cfg = bench_config(g.num_nodes(), Some(eps));
                cfg.model = kind;
                let mut r = run_repeated(
                    &g,
                    name,
                    Method::PrivImStar,
                    &cfg,
                    celf,
                    opts.repeats,
                    opts.seed + eps as u64,
                );
                r.method = format!("PrivIM* ({kind})");
                rows.push(vec![
                    name.to_string(),
                    kind.to_string(),
                    format!("{eps}"),
                    format!("{:.2} ± {:.2}", r.coverage_mean, r.coverage_std),
                ]);
                all.push(r);
            }
        }
    }

    println!("Figure 9 — coverage ratio (%) of PrivIM* with different GNN models\n");
    print_table(&["dataset", "model", "eps", "coverage %"], &rows);
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &all).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
