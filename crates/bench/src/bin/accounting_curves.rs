//! Privacy-accounting curves (extension): the calibrated noise multiplier
//! σ and the absolute noise std σ·C·N_g as functions of ε, T and N_g —
//! the quantitative backbone behind every utility figure. Prints the
//! curves the paper's Section III-E insights describe: noise growing
//! exponentially with the GNN depth under the naive bound, and collapsing
//! to a constant under the dual-stage bound.

use privim_bench::{print_table, write_json_seeded, HarnessOpts};
use privim_dp::rdp::{calibrate_sigma, naive_occurrence_bound, SubsampledConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    let delta = 1e-4;
    let container = 100usize;
    let batch = 32usize;
    let steps = 60usize;
    let clip = 1.0;

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();

    // Curve 1: σ and absolute noise vs ε, naive (θ=10, r∈{1,2,3}) vs
    // dual-stage (M = 4).
    for eps in [1.0, 2.0, 3.0, 4.0, 6.0] {
        for (label, n_g) in [
            ("dual-stage M=4", 4usize),
            ("naive r=1 (θ=10)", naive_occurrence_bound(10, 1)),
            ("naive r=2 (θ=10)", naive_occurrence_bound(10, 2)),
            ("naive r=3 (θ=10)", naive_occurrence_bound(10, 3)),
        ] {
            let cfg = SubsampledConfig {
                max_occurrences: n_g,
                batch_size: batch,
                container_size: container.max(n_g + 1),
            };
            let sigma = calibrate_sigma(eps, delta, &cfg, steps);
            let noise = sigma * clip * n_g as f64;
            rows.push(vec![
                format!("{eps}"),
                label.to_string(),
                format!("{n_g}"),
                format!("{sigma:.3}"),
                format!("{noise:.1}"),
            ]);
            json_rows.push((eps, label, n_g, sigma, noise));
        }
    }

    println!("Calibrated noise vs privacy budget (T = {steps}, B = {batch}, m = {container})\n");
    print_table(
        &["eps", "scheme", "N_g", "sigma", "noise std (sigma*C*N_g)"],
        &rows,
    );

    // Curve 2: σ vs iterations at fixed ε = 3.
    let mut rows2 = Vec::new();
    for t in [20usize, 60, 120, 240, 480] {
        let cfg = SubsampledConfig {
            max_occurrences: 4,
            batch_size: batch,
            container_size: container,
        };
        let sigma = calibrate_sigma(3.0, delta, &cfg, t);
        rows2.push(vec![format!("{t}"), format!("{sigma:.3}")]);
    }
    println!("\nNoise multiplier vs iterations (eps = 3, dual-stage M = 4)\n");
    print_table(&["iterations T", "sigma"], &rows2);

    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &json_rows).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
