//! Deterministic micro-benchmarks for the instrumented hot kernels.
//!
//! Runs every kernel the profiler attributes roofline counters to —
//! tape matmul, SpMM, gather/scatter, segment softmax (forward and
//! backward via the tape), DP-SGD clip+accumulate, and Monte Carlo
//! spread — on seeded synthetic workloads at two sizes, and emits the
//! standard `{seed, rows, telemetry}` envelope.
//!
//! Two modes:
//!
//! * default: fully deterministic. No wall-clock fields are emitted, so
//!   two runs with the same seed produce **byte-identical** JSON — this
//!   is what `BENCH_kernels.json` at the repo root is and what CI's
//!   bit-identity check relies on.
//! * `--measure`: adds warmup + min-of-N wall-clock timing per kernel
//!   (`min_secs`, `mean_secs`, `cv`, `gflops`). Used when refreshing the
//!   committed baseline so `bench_diff` has runtime metrics to gate on.
//!
//! A counting global allocator (armed only around each kernel's steady
//! state) records allocation counts per row; the clip+accumulate kernel
//! asserts **zero** steady-state allocations.
//!
//! Work counters (`flops`, `bytes`, `items`) are read back from the
//! scoped profiler, not recomputed here — the benchmark doubles as an
//! end-to-end check of the instrumentation sites.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use privim_bench::print_table;
use privim_graph::GraphBuilder;
use privim_im::{influence_spread, DiffusionConfig};
use privim_nn::prelude::{GradVec, Matrix, Tape};
use privim_obs::fault::splitmix64;
use privim_obs::ProfScope;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Counting allocator: wraps the system allocator, counts allocations only
// while armed so hot kernels can assert zero steady-state allocation.
// ---------------------------------------------------------------------------

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with the allocation counter armed; returns (result, allocs).
fn counting_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let out = f();
    COUNTING.store(false, Ordering::Relaxed);
    (out, ALLOCS.load(Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// Seeded synthetic inputs. splitmix64 (not `rand`) so the streams are
// defined by this repo alone and stable across toolchains.
// ---------------------------------------------------------------------------

struct Stream(u64);

impl Stream {
    fn new(seed: u64) -> Self {
        Stream(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }

    /// Uniform in [-1, 1).
    fn signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }

    fn index(&mut self, n: usize) -> u32 {
        (self.next_u64() % n as u64) as u32
    }

    fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| self.signed_unit()).collect(),
        )
    }

    fn indices(&mut self, len: usize, n: usize) -> Rc<Vec<u32>> {
        Rc::new((0..len).map(|_| self.index(n)).collect())
    }
}

// ---------------------------------------------------------------------------
// Kernel definitions
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Dims {
    /// Node count (or matmul m=k=n).
    n: usize,
    /// Edge count (or gradient entries).
    e: usize,
    /// Feature width.
    d: usize,
}

const SIZES: [(&str, Dims); 2] = [
    (
        "small",
        Dims {
            n: 48,
            e: 256,
            d: 16,
        },
    ),
    (
        "medium",
        Dims {
            n: 160,
            e: 4096,
            d: 32,
        },
    ),
];

/// One benchmarked kernel: builds its inputs from the stream, runs the
/// forward+backward pass, and returns a checksum of outputs+gradients.
type KernelFn = fn(&mut Stream, Dims) -> f64;

fn bench_matmul(s: &mut Stream, dims: Dims) -> f64 {
    let n = dims.n;
    let a = s.matrix(n, n);
    let b = s.matrix(n, n);
    let mut tape = Tape::new();
    let (va, vb) = (tape.leaf(a), tape.leaf(b));
    let c = tape.matmul(va, vb);
    let loss = tape.sum(c);
    let out_sum = tape.value(c).sum();
    let mut grads = tape.backward(loss);
    out_sum + grads.take(va, (n, n)).sum() + grads.take(vb, (n, n)).sum()
}

fn bench_spmm(s: &mut Stream, dims: Dims) -> f64 {
    let Dims { n, e, d } = dims;
    let h = s.matrix(n, d);
    let src = s.indices(e, n);
    let dst = s.indices(e, n);
    let coeff = Rc::new((0..e).map(|_| s.signed_unit()).collect::<Vec<_>>());
    let mut tape = Tape::new();
    let vh = tape.leaf(h);
    let out = tape.spmm_fixed(vh, src, dst, coeff, n);
    let loss = tape.sum(out);
    let out_sum = tape.value(out).sum();
    let mut grads = tape.backward(loss);
    out_sum + grads.take(vh, (n, d)).sum()
}

fn bench_gather(s: &mut Stream, dims: Dims) -> f64 {
    let Dims { n, e, d } = dims;
    let h = s.matrix(n, d);
    let idx = s.indices(e, n);
    let mut tape = Tape::new();
    let vh = tape.leaf(h);
    let out = tape.gather_rows(vh, idx);
    let loss = tape.sum(out);
    let out_sum = tape.value(out).sum();
    let mut grads = tape.backward(loss);
    out_sum + grads.take(vh, (n, d)).sum()
}

fn bench_scatter_add(s: &mut Stream, dims: Dims) -> f64 {
    let Dims { n, e, d } = dims;
    let v = s.matrix(e, d);
    let idx = s.indices(e, n);
    let mut tape = Tape::new();
    let vv = tape.leaf(v);
    let out = tape.scatter_add_rows(vv, idx, n);
    let loss = tape.sum(out);
    let out_sum = tape.value(out).sum();
    let mut grads = tape.backward(loss);
    out_sum + grads.take(vv, (e, d)).sum()
}

fn bench_segment_softmax(s: &mut Stream, dims: Dims) -> f64 {
    let Dims { n, e, .. } = dims;
    let scores = s.matrix(e, 1);
    let segment = s.indices(e, n);
    let mut tape = Tape::new();
    let vs = tape.leaf(scores);
    let soft = tape.segment_softmax(vs, segment, n);
    // sum(softmax) is constant per segment, so square first to get
    // non-trivial gradients through the backward pass.
    let sq = tape.mul(soft, soft);
    let loss = tape.sum(sq);
    let out_sum = tape.value(soft).sum();
    let mut grads = tape.backward(loss);
    // Softmax gradients sum to zero within a segment (shift invariance),
    // so checksum the squared gradient to stay backward-sensitive.
    let g = grads.take(vs, (e, 1));
    out_sum + g.data().iter().map(|x| x * x).sum::<f64>()
}

/// DP-SGD per-sample clip + accumulate. Mirrors the instrumented site in
/// `privim_core::train` (same scope name and work formula) and asserts
/// the steady state performs **zero** heap allocations.
fn bench_clip_accumulate(s: &mut Stream, dims: Dims) -> f64 {
    let Dims { e, d, .. } = dims;
    // `e` scalar entries split over two blocks, like a 2-layer model.
    let rows = e / (2 * d);
    let mut gv = GradVec::from_blocks(vec![s.matrix(rows, d), s.matrix(rows, d)]);
    let mut sum = GradVec::from_blocks(vec![Matrix::zeros(rows, d), Matrix::zeros(rows, d)]);
    let clip_bound = 1.0;
    // Warm the profiler node and scope stack so the counted region sees
    // only the kernel's own (zero) allocations.
    drop(ProfScope::enter("train.clip_accumulate"));
    let (pre_norm, allocs) = counting_allocs(|| {
        let prof = ProfScope::enter("train.clip_accumulate");
        let p64 = gv.num_entries() as u64;
        prof.add_work(4 * p64, 8 * 6 * p64, p64);
        let pre = gv.clip(clip_bound);
        sum.add_assign(&gv);
        pre
    });
    assert_eq!(allocs, 0, "clip+accumulate must not allocate");
    pre_norm + sum.blocks()[0].sum() + sum.blocks()[1].sum()
}

fn bench_mc_spread(s: &mut Stream, dims: Dims) -> f64 {
    let Dims { n, e, .. } = dims;
    let mut b = GraphBuilder::with_capacity(n, e);
    for _ in 0..e {
        let (u, v) = (s.index(n), s.index(n));
        if u != v {
            b.add_edge(u, v, 0.25 + 0.5 * (0.5 + 0.5 * s.signed_unit()));
        }
    }
    let g = b.build();
    let seeds: Vec<u32> = (0..4.min(n as u32)).collect();
    let trials = dims.e / 16;
    // StdRng (not splitmix) drives the cascades: this is the production
    // code path. Its checksum is informational, never gated.
    let mut rng = StdRng::seed_from_u64(s.next_u64());
    influence_spread(
        &g,
        &seeds,
        &DiffusionConfig::ic_unbounded(),
        trials,
        &mut rng,
    )
}

const KERNELS: [(&str, KernelFn); 7] = [
    ("matmul", bench_matmul),
    ("spmm", bench_spmm),
    ("gather", bench_gather),
    ("scatter_add", bench_scatter_add),
    ("segment_softmax", bench_segment_softmax),
    ("clip_accumulate", bench_clip_accumulate),
    ("mc_spread", bench_mc_spread),
];

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct Timing {
    min_secs: f64,
    mean_secs: f64,
    /// Coefficient of variation across repeats (std / mean).
    cv: f64,
}

struct KernelRow {
    kernel: &'static str,
    size: &'static str,
    flops: u64,
    bytes: u64,
    items: u64,
    checksum: f64,
    allocs: u64,
    timing: Option<Timing>,
}

impl KernelRow {
    fn gflops(&self) -> Option<f64> {
        let t = self.timing.as_ref()?;
        (self.flops > 0).then(|| self.flops as f64 / t.min_secs / 1e9)
    }
}

/// Per-kernel seed: decorrelates kernels while keeping every one a pure
/// function of (`--seed`, kernel, size).
fn kernel_seed(base: u64, kernel: &str, size: &str) -> u64 {
    let mut h = base;
    for b in kernel.bytes().chain(size.bytes()) {
        h = splitmix64(h ^ b as u64);
    }
    h
}

fn run_kernel(
    kernel: &'static str,
    f: KernelFn,
    size: &'static str,
    dims: Dims,
    seed: u64,
) -> (f64, u64, privim_obs::ProfileReport) {
    privim_obs::reset_profile();
    let mut stream = Stream::new(kernel_seed(seed, kernel, size));
    let (checksum, allocs) = if kernel == "clip_accumulate" {
        // counts its own steady state internally
        (f(&mut stream, dims), 0)
    } else {
        let (c, a) = counting_allocs(|| f(&mut stream, dims));
        (c, a)
    };
    (checksum, allocs, privim_obs::profile_report())
}

fn measure_kernel(
    kernel: &'static str,
    f: KernelFn,
    size: &'static str,
    dims: Dims,
    seed: u64,
    repeats: usize,
) -> Timing {
    // Timing runs: profiler off so we measure the raw kernel, warmup
    // once, then min/mean/cv over `repeats`.
    privim_obs::set_profiling(false);
    let run = || {
        let mut stream = Stream::new(kernel_seed(seed, kernel, size));
        std::hint::black_box(f(&mut stream, dims));
    };
    run();
    let mut secs = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = std::time::Instant::now();
        run();
        secs.push(t0.elapsed().as_secs_f64());
    }
    privim_obs::set_profiling(true);
    let min = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let var = secs.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / secs.len() as f64;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    Timing {
        min_secs: min,
        mean_secs: mean,
        cv,
    }
}

// ---------------------------------------------------------------------------
// JSON envelope (hand-rolled: field order and formatting must be stable
// so that equal runs are byte-identical)
// ---------------------------------------------------------------------------

fn json_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

fn render_envelope(
    seed: u64,
    rows: &[KernelRow],
    counters: &std::collections::BTreeMap<String, u64>,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"kernel\": \"{}\",", r.kernel);
        let _ = writeln!(out, "      \"size\": \"{}\",", r.size);
        let _ = writeln!(out, "      \"flops\": {},", r.flops);
        let _ = writeln!(out, "      \"bytes\": {},", r.bytes);
        let _ = writeln!(out, "      \"items\": {},", r.items);
        let _ = writeln!(out, "      \"allocs\": {},", r.allocs);
        if let Some(t) = &r.timing {
            let _ = writeln!(out, "      \"min_secs\": {},", json_f64(t.min_secs));
            let _ = writeln!(out, "      \"mean_secs\": {},", json_f64(t.mean_secs));
            let _ = writeln!(out, "      \"cv\": {},", json_f64(t.cv));
            if let Some(g) = r.gflops() {
                let _ = writeln!(out, "      \"gflops\": {},", json_f64(g));
            }
        }
        let _ = writeln!(out, "      \"checksum\": {}", json_f64(r.checksum));
        out.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    // Telemetry: counters only. Histograms (e.g. `im.sims_per_sec`) are
    // wall-clock-derived, so including them would break bit-identity.
    out.push_str("  \"telemetry\": {\n    \"counters\": {\n");
    let n = counters.len();
    for (i, (k, v)) in counters.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = writeln!(out, "      \"{k}\": {v}{comma}");
    }
    out.push_str("    }\n  }\n}\n");
    out
}

// ---------------------------------------------------------------------------

struct Opts {
    seed: u64,
    repeats: usize,
    measure: bool,
    json: Option<String>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        seed: 42,
        repeats: 5,
        measure: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--repeats" => {
                opts.repeats = it
                    .next()
                    .ok_or("--repeats needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --repeats: {e}"))?
            }
            "--measure" => opts.measure = true,
            "--json" => opts.json = Some(it.next().ok_or("--json needs a path")?),
            "--help" | "-h" => {
                return Err(
                    "usage: kernelbench [--seed u] [--repeats n] [--measure] [--json path]".into(),
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.repeats == 0 {
        return Err("--repeats must be at least 1".into());
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    privim_obs::set_profiling(true);
    let mut rows = Vec::new();
    for (kernel, f) in KERNELS {
        for (size, dims) in SIZES {
            let (checksum, allocs, profile) = run_kernel(kernel, f, size, dims, opts.seed);
            // Work totals come from the profiler: the benchmark verifies
            // the instrumentation sites as a side effect.
            let flops: u64 = profile.rows.iter().map(|r| r.flops).sum();
            let bytes: u64 = profile.rows.iter().map(|r| r.bytes).sum();
            let items: u64 = profile.rows.iter().map(|r| r.items).sum();
            let timing = opts
                .measure
                .then(|| measure_kernel(kernel, f, size, dims, opts.seed, opts.repeats));
            rows.push(KernelRow {
                kernel,
                size,
                flops,
                bytes,
                items,
                checksum,
                allocs,
                timing,
            });
        }
    }

    let mut headers = vec![
        "kernel", "size", "flops", "bytes", "items", "allocs", "checksum",
    ];
    if opts.measure {
        headers.extend(["min_secs", "cv", "gflop/s"]);
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![
                r.kernel.to_string(),
                r.size.to_string(),
                r.flops.to_string(),
                r.bytes.to_string(),
                r.items.to_string(),
                r.allocs.to_string(),
                format!("{:.6}", r.checksum),
            ];
            if let Some(t) = &r.timing {
                row.push(format!("{:.6}", t.min_secs));
                row.push(format!("{:.3}", t.cv));
                row.push(r.gflops().map_or("-".into(), |g| format!("{g:.2}")));
            }
            row
        })
        .collect();
    print_table(&headers, &table);

    let counters = privim_obs::snapshot().counters;
    let envelope = render_envelope(opts.seed, &rows, &counters);
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, &envelope) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
