//! Extension experiment: PrivIM* under the Linear Threshold model
//! (Section VII's first future-work item).
//!
//! Trains PrivIM* twice — once with the IC product-form loss and once with
//! the truncated-sum loss, which is the *exact* one-step LT activation
//! probability — and evaluates both seed sets with Monte Carlo LT
//! diffusion on weighted-cascade edges (`w_vu = 1/d_in(u)`, so threshold
//! saturation actually matters).

use privim_bench::{bench_config, bench_graph, print_table, write_json_seeded, HarnessOpts};
use privim_core::config::LossKind;
use privim_core::pipeline::{run_method, Method};
use privim_datasets::paper::Dataset;
use privim_graph::algorithms::weighted_cascade;
use privim_im::models::{DiffusionConfig, DiffusionModel};
use privim_im::spread::influence_spread_with_ci;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = HarnessOpts::from_env();
    let datasets: Vec<Dataset> = if opts.full {
        Dataset::SIX.to_vec()
    } else {
        vec![Dataset::LastFm, Dataset::Facebook]
    };
    let lt = DiffusionConfig {
        model: DiffusionModel::LinearThreshold,
        max_steps: Some(2),
    };

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for dataset in datasets {
        let base = bench_graph(dataset, &opts);
        let g = weighted_cascade(&base);
        let name = dataset.spec().name;
        eprintln!("[ext-lt] {name}: |V|={}", g.num_nodes());
        for (label, loss) in [
            ("IC product loss", LossKind::IcProduct),
            ("LT truncated loss", LossKind::LtTruncated),
        ] {
            let mut cfg = bench_config(g.num_nodes(), Some(3.0));
            cfg.loss = loss;
            let mut spreads = Vec::new();
            for r in 0..opts.repeats {
                let run = run_method(&g, Method::PrivImStar, &cfg, opts.seed + r as u64);
                let mut rng = StdRng::seed_from_u64(opts.seed);
                let est = influence_spread_with_ci(&g, &run.seeds, &lt, 2_000, 1.96, &mut rng);
                spreads.push(est.mean);
            }
            let (mean, std) = privim_im::metrics::mean_std(&spreads);
            rows.push(vec![
                name.to_string(),
                label.to_string(),
                format!("{mean:.1} ± {std:.1}"),
            ]);
            json_rows.push((name, label, mean, std));
        }
    }

    println!("Extension — PrivIM* trained for LT diffusion (eps = 3, WC weights)\n");
    print_table(&["dataset", "training loss", "LT spread (2 steps)"], &rows);
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &json_rows).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
