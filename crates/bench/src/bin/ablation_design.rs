//! Quality ablations of the design choices DESIGN.md §6 calls out: the
//! frequency decay factor μ (Eq. 9), the RWR restart probability τ, the
//! BES size divisor s, and the effect of removing BES entirely — all at
//! ε = 3 on a LastFM replica. (Timing ablations of the same knobs live in
//! `benches/ablation.rs`.)

use privim_bench::{
    bench_config, bench_graph, celf_reference, print_table, run_repeated, write_json_seeded,
    HarnessOpts, MethodRow,
};
use privim_core::config::PrivImConfig;
use privim_core::pipeline::Method;
use privim_datasets::paper::Dataset;

fn main() {
    let opts = HarnessOpts::from_env();
    let g = bench_graph(Dataset::LastFm, &opts);
    eprintln!("[ablation] LastFM replica: |V|={}", g.num_nodes());
    let base = bench_config(g.num_nodes(), Some(3.0));
    let celf = celf_reference(&g, base.seed_size);

    let mut rows = Vec::new();
    let mut all: Vec<MethodRow> = Vec::new();
    let mut run = |label: String, cfg: &PrivImConfig, method: Method, all: &mut Vec<MethodRow>| {
        let r = run_repeated(&g, "LastFM", method, cfg, celf, opts.repeats, opts.seed);
        rows.push(vec![
            label,
            format!("{:.1} ± {:.1}", r.spread_mean, r.spread_std),
            format!("{:.1}", r.coverage_mean),
        ]);
        all.push(r);
    };

    for decay in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let cfg = PrivImConfig {
            decay,
            ..base.clone()
        };
        run(
            format!("decay mu = {decay}"),
            &cfg,
            Method::PrivImStar,
            &mut all,
        );
    }
    for tau in [0.1, 0.3, 0.6, 0.9] {
        let cfg = PrivImConfig {
            restart_prob: tau,
            ..base.clone()
        };
        run(
            format!("restart tau = {tau}"),
            &cfg,
            Method::PrivImStar,
            &mut all,
        );
    }
    for s in [1usize, 2, 4, 8] {
        let cfg = PrivImConfig {
            bes_divisor: s,
            ..base.clone()
        };
        run(
            format!("BES divisor s = {s}"),
            &cfg,
            Method::PrivImStar,
            &mut all,
        );
    }
    // BES on/off: PrivIM* vs PrivIM+SCS at identical settings.
    run(
        "with BES (PrivIM*)".into(),
        &base,
        Method::PrivImStar,
        &mut all,
    );
    run(
        "without BES (SCS only)".into(),
        &base,
        Method::PrivImScs,
        &mut all,
    );

    println!("Design-choice ablation on LastFM (eps = 3)\n");
    print_table(&["configuration", "spread", "coverage %"], &rows);
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &all).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
