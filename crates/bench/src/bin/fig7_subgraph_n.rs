//! Figures 7 and 11: impact of the subgraph size n on PrivIM* (ε = 3).
//! Quick mode covers LastFM and Gowalla; `--full` runs all six datasets.

use privim_bench::{
    bench_config, bench_graph, celf_reference, print_table, run_repeated, write_json_seeded,
    HarnessOpts, MethodRow,
};
use privim_core::pipeline::Method;
use privim_datasets::paper::Dataset;

fn main() {
    let opts = HarnessOpts::from_env();
    let datasets: Vec<Dataset> = if opts.full {
        Dataset::SIX.to_vec()
    } else {
        vec![Dataset::LastFm, Dataset::Gowalla]
    };
    let n_grid = [10usize, 20, 30, 40, 50, 60, 70, 80];

    let mut rows = Vec::new();
    let mut all: Vec<MethodRow> = Vec::new();
    for dataset in datasets {
        let g = bench_graph(dataset, &opts);
        let name = dataset.spec().name;
        eprintln!("[fig7] {name}: |V|={}", g.num_nodes());
        let k = bench_config(g.num_nodes(), None).seed_size;
        let celf = celf_reference(&g, k);
        for &n in &n_grid {
            let mut cfg = bench_config(g.num_nodes(), Some(3.0));
            cfg.subgraph_size = n;
            let r = run_repeated(
                &g,
                name,
                Method::PrivImStar,
                &cfg,
                celf,
                opts.repeats,
                opts.seed + n as u64,
            );
            rows.push(vec![
                name.to_string(),
                format!("{n}"),
                format!("{:.1} ± {:.1}", r.spread_mean, r.spread_std),
                format!("{:.1}", r.coverage_mean),
            ]);
            all.push(r);
        }
    }

    println!("Figure 7 / Figure 11 — impact of subgraph size n on PrivIM* (eps = 3)\n");
    print_table(&["dataset", "n", "spread", "coverage %"], &rows);
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &all).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
