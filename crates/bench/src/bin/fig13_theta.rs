//! Figure 13 (Appendix I): impact of the in-degree bound θ on the naive
//! PrivIM pipeline (ε = 3). Small θ destroys structure; large θ blows up
//! `N_g = Σ θⁱ` and hence the noise — θ = 10 is the paper's sweet spot.

use privim_bench::{
    bench_config, bench_graph, celf_reference, print_table, run_repeated, write_json_seeded,
    HarnessOpts, MethodRow,
};
use privim_core::pipeline::Method;
use privim_datasets::paper::Dataset;
use privim_dp::rdp::naive_occurrence_bound;

fn main() {
    let opts = HarnessOpts::from_env();
    let datasets: Vec<Dataset> = if opts.full {
        Dataset::SIX.to_vec()
    } else {
        vec![Dataset::Email, Dataset::Gowalla]
    };
    let theta_grid = [5usize, 10, 15, 20];

    let mut rows = Vec::new();
    let mut all: Vec<MethodRow> = Vec::new();
    for dataset in datasets {
        let g = bench_graph(dataset, &opts);
        let name = dataset.spec().name;
        eprintln!("[fig13] {name}: |V|={}", g.num_nodes());
        let k = bench_config(g.num_nodes(), None).seed_size;
        let celf = celf_reference(&g, k);
        for &theta in &theta_grid {
            let mut cfg = bench_config(g.num_nodes(), Some(3.0));
            cfg.theta = theta;
            let r = run_repeated(
                &g,
                name,
                Method::PrivIm,
                &cfg,
                celf,
                opts.repeats,
                opts.seed + theta as u64,
            );
            rows.push(vec![
                name.to_string(),
                format!("{theta}"),
                format!("{}", naive_occurrence_bound(theta, cfg.hops)),
                format!("{:.2} ± {:.2}", r.coverage_mean, r.coverage_std),
            ]);
            all.push(r);
        }
    }

    println!("Figure 13 — coverage ratio (%) of naive PrivIM vs theta (eps = 3)\n");
    print_table(&["dataset", "theta", "N_g", "coverage %"], &rows);
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &all).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
