//! Deterministic micro-benchmark for the privacy attack harness.
//!
//! Runs both attacks from `privim-audit` on seeded synthetic workloads
//! whose leak strength is known by construction, and emits the standard
//! `{seed, rows, telemetry}` envelope:
//!
//! * membership inference on score distributions at several
//!   member/non-member separations — AUC must rise from chance (0.5)
//!   towards 1.0 as the separation grows;
//! * topology inference on a ring graph at several structure-to-noise
//!   mixes — precision at `|E|` must rise as the scores become more
//!   structure-determined.
//!
//! No wall clock is read and the synthetic streams are splitmix64, so
//! two runs with the same seed produce **byte-identical** JSON — this
//! is what `BENCH_audit.json` at the repo root is and what CI's
//! bit-identity check relies on. The rows double as an end-to-end check
//! of the attack math: a regression that flattens the AUC-vs-separation
//! curve shows up as a quality diff in `bench_diff`.

use privim_audit::{membership, topology, AuditRow};
use privim_bench::print_table;
use privim_graph::{Graph, GraphBuilder};
use privim_obs::fault::splitmix64;

/// Seeded synthetic stream; splitmix64 (not `rand`) so the streams are
/// defined by this repo alone and stable across toolchains.
struct Stream(u64);

impl Stream {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }

    /// Uniform in [-1, 1).
    fn signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

const NODES_PER_CLASS: usize = 256;
const SEPARATIONS: &[f64] = &[0.0, 0.25, 0.5, 1.0, 2.0];

/// Membership inference on a synthetic score vector: members score
/// `+sep/2 + noise`, non-members `-sep/2 + noise`.
fn membership_row(sep: f64, seed: u64) -> AuditRow {
    let mut stream = Stream(seed ^ sep.to_bits());
    let n = NODES_PER_CLASS;
    let scores: Vec<f64> = (0..2 * n)
        .map(|i| {
            let shift = if i < n { sep / 2.0 } else { -sep / 2.0 };
            shift + stream.signed_unit()
        })
        .collect();
    let members: Vec<u32> = (0..n as u32).collect();
    let non_members: Vec<u32> = (n as u32..2 * n as u32).collect();
    let out = membership::membership_attack(&scores, &members, &non_members, 0.1);
    AuditRow {
        attack: "membership",
        mode: "synthetic",
        label: format!("sep{sep}"),
        digest: "synthetic".into(),
        epsilon: None,
        metrics: vec![
            ("attack_auc", out.attack_auc),
            ("tpr_at_low_fpr", out.tpr_at_low_fpr),
            ("flipped", if out.flipped { 1.0 } else { 0.0 }),
        ],
    }
}

const RING_NODES: usize = 96;
const STRUCTURE_MIXES: &[f64] = &[0.0, 0.5, 1.0];

fn ring(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        b.add_edge(i as u32, j as u32, 0.4);
        b.add_edge(j as u32, i as u32, 0.4);
    }
    b.build()
}

/// Topology inference on a ring whose node scores interpolate between
/// pure noise (`mix = 0`) and a pure position gradient (`mix = 1`);
/// adjacent nodes have near-identical gradient scores, so precision at
/// `|E|` must rise with `mix`.
fn topology_row(g: &Graph, mix: f64, seed: u64) -> AuditRow {
    let mut stream = Stream(seed ^ mix.to_bits() ^ 0x70B0);
    let n = g.num_nodes();
    let scores: Vec<f64> = (0..n)
        .map(|i| mix * (i as f64 / n as f64) + (1.0 - mix) * stream.signed_unit())
        .collect();
    let out = topology::topology_attack(&scores, g, 100_000, splitmix64(seed));
    AuditRow {
        attack: "topology",
        mode: "synthetic",
        label: format!("mix{mix}"),
        digest: "synthetic".into(),
        epsilon: None,
        metrics: vec![
            ("precision_at_e", out.precision_at_e),
            ("num_candidates", out.num_candidates as f64),
            ("num_true_edges", out.num_true_edges as f64),
        ],
    }
}

struct Opts {
    seed: u64,
    json: Option<String>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        seed: 42,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--json" => opts.json = Some(it.next().ok_or("--json needs a path")?),
            "--help" | "-h" => return Err("usage: auditbench [--seed u] [--json path]".into()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let mut rows = Vec::new();
    for &sep in SEPARATIONS {
        rows.push(membership_row(sep, opts.seed));
    }
    let g = ring(RING_NODES);
    for &mix in STRUCTURE_MIXES {
        rows.push(topology_row(&g, mix, opts.seed));
    }

    // The synthetic leak knobs must actually order the attack metrics;
    // a flat curve means the attack math regressed, and the benchmark
    // is the first place that should fail.
    for pair in rows[..SEPARATIONS.len()].windows(2) {
        assert!(
            pair[1].metrics[0].1 >= pair[0].metrics[0].1 - 0.05,
            "membership AUC must not fall as separation grows: {pair:?}"
        );
    }

    let headers = vec!["attack", "workload", "metric", "value"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .flat_map(|r| {
            r.metrics.iter().map(|(k, v)| {
                vec![
                    r.attack.to_string(),
                    r.label.clone(),
                    k.to_string(),
                    format!("{v:.4}"),
                ]
            })
        })
        .collect();
    print_table(&headers, &table);

    let counters = privim_obs::snapshot().counters;
    let envelope = privim_audit::render_envelope(opts.seed, &rows, &counters);
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, &envelope) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
