//! Figures 5 and 14: influence spread of all methods over the datasets,
//! varying the privacy budget ε (HepPh — Figure 14 in the paper's appendix
//! — is part of the same sweep here). Also includes the partitioned
//! Friendster replica from Figure 5's last panel.

use privim_bench::experiment::epsilon_grid;
use privim_bench::{
    bench_config, bench_graph, celf_reference, print_table, run_repeated, write_json_seeded,
    HarnessOpts, MethodRow,
};
use privim_core::pipeline::{run_method, Method};
use privim_datasets::paper::Dataset;

fn main() {
    let opts = HarnessOpts::from_env();
    let mut rows = Vec::new();
    let mut all: Vec<MethodRow> = Vec::new();

    for dataset in Dataset::SIX {
        let g = bench_graph(dataset, &opts);
        let name = dataset.spec().name;
        eprintln!("[fig5] {name}: |V|={} |E|={}", g.num_nodes(), g.num_edges());
        let k = bench_config(g.num_nodes(), None).seed_size;
        let celf = celf_reference(&g, k);
        rows.push(vec![
            name.to_string(),
            "CELF (ground truth)".into(),
            "-".into(),
            format!("{celf:.1}"),
            "100.0".into(),
        ]);
        // Non-private reference once per dataset.
        let cfg = bench_config(g.num_nodes(), None);
        let row = run_repeated(
            &g,
            name,
            Method::NonPrivate,
            &cfg,
            celf,
            opts.repeats,
            opts.seed,
        );
        rows.push(to_row(&row));
        all.push(row);
        for &eps in &epsilon_grid(opts.full) {
            for method in [
                Method::PrivImStar,
                Method::PrivIm,
                Method::HpGrat,
                Method::Hp,
                Method::Egn,
            ] {
                let cfg = bench_config(g.num_nodes(), Some(eps));
                let row = run_repeated(
                    &g,
                    name,
                    method,
                    &cfg,
                    celf,
                    opts.repeats,
                    opts.seed + eps as u64,
                );
                rows.push(to_row(&row));
                all.push(row);
            }
        }
    }

    // Friendster: partitioned processing (two partitions, spreads summed).
    eprintln!("[fig5] Friendster (partitioned)");
    let parts = Dataset::Friendster.generate_partitions(400, 2, opts.seed);
    let k = bench_config(400, None).seed_size;
    let celf_total: f64 = parts.iter().map(|p| celf_reference(p, k)).sum();
    for &eps in &epsilon_grid(opts.full) {
        for method in [
            Method::PrivImStar,
            Method::PrivIm,
            Method::HpGrat,
            Method::Egn,
        ] {
            let cfg = bench_config(400, Some(eps));
            let spread_total: f64 = parts
                .iter()
                .enumerate()
                .map(|(i, p)| run_method(p, method, &cfg, opts.seed + i as u64).spread)
                .sum();
            rows.push(vec![
                "Friendster".into(),
                method.name().into(),
                format!("{eps}"),
                format!("{spread_total:.1}"),
                format!("{:.1}", 100.0 * spread_total / celf_total),
            ]);
        }
    }

    println!("Figure 5 / Figure 14 — influence spread vs privacy budget\n");
    print_table(&["dataset", "method", "eps", "spread", "coverage %"], &rows);
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &all).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}

fn to_row(r: &MethodRow) -> Vec<String> {
    vec![
        r.dataset.clone(),
        r.method.clone(),
        r.epsilon.map_or("inf".into(), |e| format!("{e}")),
        format!("{:.1} ± {:.1}", r.spread_mean, r.spread_std),
        format!("{:.1} ± {:.1}", r.coverage_mean, r.coverage_std),
    ]
}
