//! Compares two harness result dumps and exits non-zero on regression.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json>
//!     [--runtime-tol f]     allowed relative slowdown       (default 0.25)
//!     [--quality-tol f]     allowed relative quality drop   (default 0.05)
//!     [--min-runtime f]     noise floor in seconds          (default 0.01)
//!     [--tol name=f]        per-metric tolerance override (repeatable;
//!                           `name` is a substring of the flattened metric)
//!     [--history path]      append a one-line JSON summary of this
//!                           comparison to `path` (a JSONL trend file)
//!     [--trend-window n]    with --history: judge the last n entries'
//!                           runtime_total for sustained growth (0 = off)
//!     [--trend-tol f]       allowed relative growth across the trend
//!                           window (default 0.15)
//!     [--strict]            any removed baseline metric also fails
//! ```
//!
//! Removed **quality** metrics (spread/coverage/gain) always fail, with
//! or without `--strict` — losing the metric hides regressions.
//!
//! The trend gate catches slow-boil regressions: runtimes that creep a
//! few percent per commit never trip the pairwise tolerance, but over
//! the trailing window the growth is visible. Monotone growth beyond
//! `--trend-tol` fails the run; non-monotone growth beyond it warns.
//!
//! Exit codes: 0 = no regression, 1 = regression detected (pairwise or
//! trend), 2 = usage or I/O error.

use std::io::Write as _;
use std::process::ExitCode;

use privim_bench::diff::{diff_json, trend_gate, DiffOptions, TrendVerdict};

const USAGE: &str = "usage: bench_diff <baseline.json> <candidate.json> \
[--runtime-tol f] [--quality-tol f] [--min-runtime f] [--tol name=f] \
[--history path] [--trend-window n] [--trend-tol f] [--strict]";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<bool, String> {
    let mut opts = DiffOptions::default();
    let mut history: Option<String> = None;
    let mut trend_window: usize = 0;
    let mut trend_tol: f64 = 0.15;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--runtime-tol" => opts.runtime_tol = next_f64(&mut it, "--runtime-tol")?,
            "--quality-tol" => opts.quality_tol = next_f64(&mut it, "--quality-tol")?,
            "--min-runtime" => opts.min_runtime = next_f64(&mut it, "--min-runtime")?,
            "--tol" => {
                let raw = it.next().ok_or("--tol needs name=value")?;
                let (name, value) = raw
                    .split_once('=')
                    .ok_or_else(|| format!("--tol expects name=value, got {raw}"))?;
                let tol: f64 = value
                    .parse()
                    .map_err(|e| format!("bad tolerance in --tol {raw}: {e}"))?;
                opts.overrides.push((name.to_string(), tol));
            }
            "--history" => history = Some(it.next().ok_or("--history needs a path")?),
            "--trend-window" => {
                let raw = it.next().ok_or("--trend-window needs a value")?;
                trend_window = raw
                    .parse()
                    .map_err(|e| format!("bad value for --trend-window: {e}"))?;
                if trend_window == 1 {
                    return Err("--trend-window needs at least 2 entries (or 0 to disable)".into());
                }
            }
            "--trend-tol" => trend_tol = next_f64(&mut it, "--trend-tol")?,
            "--strict" => opts.strict = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n{USAGE}"))
            }
            path => paths.push(path.to_string()),
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        return Err(USAGE.into());
    };
    let base_text = std::fs::read_to_string(baseline)
        .map_err(|e| format!("cannot read baseline {baseline}: {e}"))?;
    let cand_text = std::fs::read_to_string(candidate)
        .map_err(|e| format!("cannot read candidate {candidate}: {e}"))?;
    if trend_window > 0 && history.is_none() {
        return Err("--trend-window needs --history <path> to judge".into());
    }
    let report = diff_json(&base_text, &cand_text, &opts)?;
    print!("{}", report.render());
    let mut trend_failed = false;
    if let Some(path) = history {
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let line = report.history_record(&opts, baseline, candidate, unix_secs);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot open history file {path}: {e}"))?;
        writeln!(file, "{line}").map_err(|e| format!("cannot append to {path}: {e}"))?;
        // Judge the trend over the file as it now stands, this run
        // included.
        if trend_window > 0 {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot re-read history file {path}: {e}"))?;
            match trend_gate(&text, trend_window, trend_tol) {
                TrendVerdict::Insufficient { have, want } => {
                    println!("trend: insufficient history ({have} of {want} entries)");
                }
                TrendVerdict::Pass { growth } => {
                    println!(
                        "trend: ok ({:+.1}% runtime over last {trend_window} entries)",
                        100.0 * growth
                    );
                }
                TrendVerdict::Warn { growth } => {
                    println!(
                        "trend: WARN runtime grew {:+.1}% over last {trend_window} entries \
                         (tolerance {:.1}%), but not monotonically",
                        100.0 * growth,
                        100.0 * trend_tol
                    );
                }
                TrendVerdict::Fail { growth } => {
                    trend_failed = true;
                    println!(
                        "trend: FAIL runtime grew {:+.1}% monotonically over last \
                         {trend_window} entries (tolerance {:.1}%)",
                        100.0 * growth,
                        100.0 * trend_tol
                    );
                }
            }
        }
    }
    Ok(!report.has_regressions(&opts) && !trend_failed)
}

fn next_f64<I: Iterator<Item = String>>(it: &mut I, flag: &str) -> Result<f64, String> {
    let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|e| format!("bad value for {flag}: {e}"))
}
