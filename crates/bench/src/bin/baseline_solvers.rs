//! Non-private traditional IM solvers side by side: CELF lazy greedy
//! (simulation-based), RIS (sampling-based, TIM/IMM family), the degree
//! heuristic (proxy-based) and random selection — the three traditional
//! families from the paper's related-work taxonomy, plus the non-private
//! GNN for context. Reported on every dataset replica with wall-clock.

use std::time::Instant;

use privim_bench::{bench_config, bench_graph, print_table, write_json_seeded, HarnessOpts};
use privim_core::pipeline::{run_method, Method};
use privim_datasets::paper::Dataset;
use privim_im::greedy::{celf_coverage, degree_heuristic, random_seeds};
use privim_im::models::deterministic_one_step_coverage;
use privim_im::ris::ris_seed_selection;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = HarnessOpts::from_env();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for dataset in Dataset::SIX {
        let g = bench_graph(dataset, &opts);
        let name = dataset.spec().name;
        let k = bench_config(g.num_nodes(), None).seed_size;
        let mut rng = StdRng::seed_from_u64(opts.seed);

        let t = Instant::now();
        let (_, celf_spread) = celf_coverage(&g, k);
        let celf_time = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let (ris_seeds, _) = ris_seed_selection(&g, k, 0.3, Some(1), &mut rng);
        let ris_time = t.elapsed().as_secs_f64();
        let ris_spread = deterministic_one_step_coverage(&g, &ris_seeds) as f64;

        let t = Instant::now();
        let deg_seeds = degree_heuristic(&g, k);
        let deg_time = t.elapsed().as_secs_f64();
        let deg_spread = deterministic_one_step_coverage(&g, &deg_seeds) as f64;

        let rand_seeds_v = random_seeds(&g, k, &mut rng);
        let rand_spread = deterministic_one_step_coverage(&g, &rand_seeds_v) as f64;

        let t = Instant::now();
        let gnn = run_method(
            &g,
            Method::NonPrivate,
            &bench_config(g.num_nodes(), None),
            opts.seed,
        );
        let gnn_time = t.elapsed().as_secs_f64();

        for (method, spread, secs) in [
            ("CELF", celf_spread, celf_time),
            ("RIS (eps=0.3)", ris_spread, ris_time),
            ("GNN (non-private)", gnn.spread, gnn_time),
            ("degree", deg_spread, deg_time),
            ("random", rand_spread, 0.0),
        ] {
            rows.push(vec![
                name.to_string(),
                method.to_string(),
                format!("{spread:.1}"),
                format!("{:.1}", 100.0 * spread / celf_spread),
                format!("{secs:.3}s"),
            ]);
            json_rows.push((name, method, spread, secs));
        }
    }
    println!("Traditional IM solver families (non-private reference)\n");
    print_table(&["dataset", "method", "spread", "% of CELF", "time"], &rows);
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &json_rows).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
