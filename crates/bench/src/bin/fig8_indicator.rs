//! Figures 8 and 12: theoretical indicator values vs empirical influence
//! spread of PrivIM* (ε = 3). For each dataset the binary prints, per
//! (n, M) combination, the normalized indicator I(n, M) (Eq. 10, the
//! paper's curves) next to the measured spread (the paper's bars).
//!
//! The indicator's shape parameters are tied to the dataset's *real* node
//! count from Table I (the indicator models how optima shift with |V|),
//! while the empirical bars are measured on the harness replica.

use privim_bench::{
    bench_config, bench_graph, celf_reference, print_table, run_repeated, write_json_seeded,
    HarnessOpts,
};
use privim_core::indicator::Indicator;
use privim_core::pipeline::Method;
use privim_datasets::paper::Dataset;

fn main() {
    let opts = HarnessOpts::from_env();
    let datasets: Vec<Dataset> = if opts.full {
        Dataset::SIX.to_vec()
    } else {
        vec![Dataset::LastFm, Dataset::HepPh]
    };
    let indicator = Indicator::default();
    let n_grid = [20usize, 40, 60, 80];
    let m_grid = [2usize, 4, 6, 8];

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for dataset in datasets {
        let g = bench_graph(dataset, &opts);
        let spec = dataset.spec();
        eprintln!("[fig8] {}: |V|={}", spec.name, g.num_nodes());
        let k = bench_config(g.num_nodes(), None).seed_size;
        let celf = celf_reference(&g, k);
        let grid = indicator.values_on_grid(&n_grid, &m_grid, spec.num_nodes);
        for (i, &n) in n_grid.iter().enumerate() {
            for (j, &m) in m_grid.iter().enumerate() {
                let mut cfg = bench_config(g.num_nodes(), Some(3.0));
                cfg.subgraph_size = n;
                cfg.freq_threshold = m;
                let r = run_repeated(
                    &g,
                    spec.name,
                    Method::PrivImStar,
                    &cfg,
                    celf,
                    opts.repeats,
                    opts.seed + (n * 31 + m) as u64,
                );
                rows.push(vec![
                    spec.name.to_string(),
                    format!("{n}"),
                    format!("{m}"),
                    format!("{:.3}", grid[i][j]),
                    format!("{:.1}", r.spread_mean),
                    format!("{:.1}", r.coverage_mean),
                ]);
                json_rows.push((spec.name, n, m, grid[i][j], r.spread_mean));
            }
        }
        let (best_n, best_m) = indicator.best(&n_grid, &m_grid, spec.num_nodes);
        println!(
            "[fig8] {}: indicator recommends n = {best_n}, M = {best_m} \
             (continuous optimum n* = {:.1}, M* = {:.1})",
            spec.name,
            indicator.continuous_optimum(spec.num_nodes).0,
            indicator.continuous_optimum(spec.num_nodes).1,
        );
    }

    println!("\nFigure 8 / Figure 12 — indicator (theory) vs spread (empirical), eps = 3\n");
    print_table(
        &[
            "dataset",
            "n",
            "M",
            "indicator I(n,M)",
            "spread",
            "coverage %",
        ],
        &rows,
    );
    if let Some(path) = &opts.json {
        write_json_seeded(path, opts.seed, &json_rows).expect("write json");
        println!("\nwrote {path}");
    }
    opts.finish();
}
