//! Minimal CLI option parsing shared by all harness binaries (no external
//! argument-parsing dependency, per the workspace dependency policy).

/// Options common to every table/figure binary.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOpts {
    /// Multiplier on the default replica sizes.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Repetitions per configuration.
    pub repeats: usize,
    /// Run the paper-scale grids instead of the quick defaults.
    pub full: bool,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Optional JSONL telemetry path: every event the run emits, one JSON
    /// object per line (parseable by `privim_obs::RunTelemetry`).
    pub telemetry_out: Option<String>,
    /// Enable the scoped profiler; [`HarnessOpts::finish`] prints the
    /// call tree to stderr.
    pub profile: bool,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: 1.0,
            seed: 42,
            repeats: 3,
            full: false,
            json: None,
            telemetry_out: None,
            profile: false,
        }
    }
}

impl HarnessOpts {
    /// Parses `std::env::args()`-style arguments (the first element is
    /// skipped as the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = HarnessOpts::default();
        let mut it = args.into_iter().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => opts.scale = next_value(&mut it, "--scale")?,
                "--seed" => opts.seed = next_value(&mut it, "--seed")?,
                "--repeats" => opts.repeats = next_value(&mut it, "--repeats")?,
                "--full" => opts.full = true,
                "--json" => {
                    opts.json = Some(it.next().ok_or_else(|| "--json needs a path".to_string())?)
                }
                "--telemetry-out" => {
                    opts.telemetry_out = Some(
                        it.next()
                            .ok_or_else(|| "--telemetry-out needs a path".to_string())?,
                    )
                }
                "--profile" => opts.profile = true,
                "--help" | "-h" => {
                    return Err(
                        "usage: [--scale f] [--seed u] [--repeats n] [--full] [--json path] \
                         [--telemetry-out path] [--profile]"
                            .into(),
                    )
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        if opts.scale <= 0.0 {
            return Err("--scale must be positive".into());
        }
        if opts.repeats == 0 {
            return Err("--repeats must be at least 1".into());
        }
        Ok(opts)
    }

    /// Parses the real process arguments, exiting with a message on error.
    /// Also installs a stderr event sink when `PRIVIM_LOG` requests one
    /// (so every harness binary gets structured logging for free), a JSONL
    /// sink when `--telemetry-out` names a file, and enables the scoped
    /// profiler under `--profile`.
    pub fn from_env() -> Self {
        if let Some(sink) = privim_obs::StderrSink::from_env() {
            privim_obs::install_sink(std::sync::Arc::new(sink));
        }
        let opts = match Self::parse(std::env::args()) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        if let Some(path) = &opts.telemetry_out {
            match privim_obs::JsonlSink::create(path) {
                Ok(sink) => privim_obs::install_sink(std::sync::Arc::new(sink)),
                Err(e) => {
                    eprintln!("cannot create telemetry file {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        privim_obs::set_profiling(opts.profile);
        opts
    }

    /// End-of-run hook: flushes sinks, and under `--profile` prints the
    /// merged call tree to stderr. Harness binaries call this last.
    pub fn finish(&self) {
        if self.profile {
            let report = privim_obs::profile_report();
            if !report.is_empty() {
                eprintln!("\nprofile (self-time sorted within siblings):");
                eprint!("{}", report.render_table());
            }
        }
        privim_obs::flush_sinks();
    }
}

fn next_value<I, T>(it: &mut I, flag: &str) -> Result<T, String>
where
    I: Iterator<Item = String>,
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|e| format!("bad value for {flag}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessOpts, String> {
        let mut v = vec!["prog".to_string()];
        v.extend(args.iter().map(|s| s.to_string()));
        HarnessOpts::parse(v)
    }

    #[test]
    fn defaults_when_no_args() {
        assert_eq!(parse(&[]).unwrap(), HarnessOpts::default());
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--repeats",
            "5",
            "--full",
            "--json",
            "out.json",
            "--telemetry-out",
            "out.jsonl",
            "--profile",
        ])
        .unwrap();
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.seed, 7);
        assert_eq!(o.repeats, 5);
        assert!(o.full);
        assert_eq!(o.json.as_deref(), Some("out.json"));
        assert_eq!(o.telemetry_out.as_deref(), Some("out.jsonl"));
        assert!(o.profile);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--repeats", "0"]).is_err());
        assert!(parse(&["--telemetry-out"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
