//! Shared experiment plumbing: replica sizing, harness configuration,
//! repeated pipeline runs, and CELF references.

use serde::Serialize;

use privim_core::config::PrivImConfig;
use privim_core::pipeline::{run_method, Method, PipelineResult};
use privim_datasets::paper::Dataset;
use privim_graph::Graph;
use privim_im::greedy::celf_coverage;
use privim_im::metrics::mean_std;

use crate::opts::HarnessOpts;

/// Default replica node budget for quick runs. Small enough that a full
/// figure regenerates in minutes on a laptop while preserving each
/// dataset's degree structure.
const QUICK_TARGET_NODES: usize = 450;

/// Replica node budget under `--full` (still far below the real Gowalla;
/// the shape, not the absolute spread, is the reproduction target).
const FULL_TARGET_NODES: usize = 3_000;

/// Generates the benchmark replica of `dataset` for the given options.
pub fn bench_graph(dataset: Dataset, opts: &HarnessOpts) -> Graph {
    let spec = dataset.spec();
    let target = if opts.full {
        FULL_TARGET_NODES
    } else {
        QUICK_TARGET_NODES
    } as f64;
    let scale = ((target * opts.scale) / spec.num_nodes as f64).clamp(1e-6, 1.0);
    dataset.generate(scale, opts.seed)
}

/// The harness training configuration for a graph of `num_nodes` nodes.
///
/// Sized for CPU wall-clock: the paper's structure (GRAT, dual-stage
/// sampling, DP-SGD) with reduced depth/width/iterations. The seed size is
/// the paper's `k = 50` capped to ~2% of the replica, preserving the
/// paper's seeds-to-nodes ratio (50 out of thousands) so the coverage
/// objective stays discriminative on small replicas.
pub fn bench_config(num_nodes: usize, epsilon: Option<f64>) -> PrivImConfig {
    PrivImConfig {
        subgraph_size: 20,
        walk_length: 200,
        hops: 2,
        theta: 10,
        freq_threshold: 4,
        hidden: 16,
        feature_dim: 8,
        batch_size: 32,
        iterations: 60,
        learning_rate: 0.02,
        seed_size: 50.min((num_nodes / 45).max(5)),
        epsilon,
        ..PrivImConfig::default()
    }
}

/// CELF ground-truth spread for `k` seeds (the paper's evaluation setting:
/// IC, `w = 1`, one step → exact lazy greedy).
pub fn celf_reference(g: &Graph, k: usize) -> f64 {
    celf_coverage(g, k).1
}

/// One aggregated result row.
#[derive(Debug, Clone, Serialize)]
pub struct MethodRow {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Privacy budget (None = non-private).
    pub epsilon: Option<f64>,
    /// Mean influence spread over repeats.
    pub spread_mean: f64,
    /// Sample std of the spread.
    pub spread_std: f64,
    /// Mean coverage ratio vs CELF, in percent.
    pub coverage_mean: f64,
    /// Sample std of the coverage ratio.
    pub coverage_std: f64,
    /// Mean preprocessing seconds.
    pub preprocessing_secs: f64,
    /// Mean per-epoch training seconds.
    pub per_epoch_secs: f64,
}

/// Runs `method` `repeats` times with distinct seeds and aggregates the
/// spread against the provided CELF reference.
pub fn run_repeated(
    g: &Graph,
    dataset_name: &str,
    method: Method,
    config: &PrivImConfig,
    celf_spread: f64,
    repeats: usize,
    base_seed: u64,
) -> MethodRow {
    let results: Vec<PipelineResult> = (0..repeats)
        .map(|r| run_method(g, method, config, base_seed.wrapping_add(1 + r as u64)))
        .collect();
    let spreads: Vec<f64> = results.iter().map(|r| r.spread).collect();
    let coverages: Vec<f64> = spreads
        .iter()
        .map(|&s| 100.0 * s / celf_spread.max(1e-9))
        .collect();
    let (spread_mean, spread_std) = mean_std(&spreads);
    let (coverage_mean, coverage_std) = mean_std(&coverages);
    let (pre, _) = mean_std(
        &results
            .iter()
            .map(|r| r.preprocessing_secs)
            .collect::<Vec<_>>(),
    );
    let (epoch, _) = mean_std(&results.iter().map(|r| r.per_epoch_secs).collect::<Vec<_>>());
    MethodRow {
        dataset: dataset_name.to_string(),
        method: method.name().to_string(),
        epsilon: if method == Method::NonPrivate {
            None
        } else {
            config.epsilon
        },
        spread_mean,
        spread_std,
        coverage_mean,
        coverage_std,
        preprocessing_secs: pre,
        per_epoch_secs: epoch,
    }
}

/// The ε grid: the paper sweeps 1..=6; quick mode samples {1, 3, 6}.
pub fn epsilon_grid(full: bool) -> Vec<f64> {
    if full {
        (1..=6).map(f64::from).collect()
    } else {
        vec![1.0, 3.0, 6.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_graph_respects_target_sizes() {
        let opts = HarnessOpts::default();
        let g = bench_graph(Dataset::Gowalla, &opts);
        assert!((200..=500).contains(&g.num_nodes()), "{}", g.num_nodes());
        let g = bench_graph(Dataset::Email, &opts);
        assert!((200..=500).contains(&g.num_nodes()));
        let full = HarnessOpts {
            full: true,
            ..HarnessOpts::default()
        };
        let g = bench_graph(Dataset::Email, &full);
        assert_eq!(g.num_nodes(), 1_000, "full Email caps at its real size");
    }

    #[test]
    fn bench_config_is_valid_and_caps_seed_size() {
        let c = bench_config(450, Some(3.0));
        assert!(c.validate().is_ok());
        assert_eq!(c.seed_size, 10);
        let c = bench_config(10_000, Some(3.0));
        assert_eq!(c.seed_size, 50);
        let c = bench_config(30, None);
        assert_eq!(c.seed_size, 5);
    }

    #[test]
    fn epsilon_grids() {
        assert_eq!(epsilon_grid(false), vec![1.0, 3.0, 6.0]);
        assert_eq!(epsilon_grid(true), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn run_repeated_aggregates() {
        let opts = HarnessOpts {
            repeats: 2,
            ..HarnessOpts::default()
        };
        let g = bench_graph(Dataset::Email, &opts);
        let cfg = PrivImConfig {
            iterations: 4,
            batch_size: 4,
            hidden: 8,
            ..bench_config(g.num_nodes(), Some(4.0))
        };
        let celf = celf_reference(&g, cfg.seed_size);
        assert!(celf > 0.0);
        let row = run_repeated(&g, "Email", Method::PrivImStar, &cfg, celf, 2, 1);
        assert_eq!(row.method, "PrivIM*");
        assert!(row.spread_mean > 0.0);
        assert!(row.coverage_mean > 0.0 && row.coverage_mean <= 110.0);
        assert!(row.per_epoch_secs > 0.0);
    }
}
