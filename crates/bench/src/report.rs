//! Plain-text table rendering and JSON result dumps.

use std::io::Write;
use std::path::Path;

use privim_obs::MetricsSnapshot;
use serde::Serialize;

/// Prints an aligned text table with a header row and a separator.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("{h:<w$}  "));
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        line.clear();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:<w$}  "));
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    let _ = out.flush();
}

/// Formats `mean ± std` the way the paper's tables do.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.2} ± {std:.2}")
}

/// Writes `rows` as pretty JSON to `path`.
pub fn write_json<T: Serialize, P: AsRef<Path>>(path: P, rows: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(rows).expect("serializable rows");
    std::fs::write(path, json)
}

/// The envelope [`write_json_seeded`] emits: the base RNG seed the run
/// was launched with, the result rows, (when any metric was recorded) a
/// snapshot of the process-global telemetry metrics, and (when the
/// profiler is enabled) the merged call tree.
#[derive(Serialize)]
struct SeededReport<'a, T> {
    seed: u64,
    rows: &'a T,
    #[serde(skip_serializing_if = "MetricsSnapshot::is_empty")]
    telemetry: MetricsSnapshot,
    #[serde(skip_serializing_if = "Option::is_none")]
    profile: Option<privim_obs::ProfileReport>,
}

/// Writes `rows` wrapped in a `{seed, rows, telemetry}` envelope so every
/// harness dump records which `--seed` produced it and what the run's
/// metrics looked like. Under `--profile` the envelope also carries the
/// profiler's call tree.
pub fn write_json_seeded<T: Serialize, P: AsRef<Path>>(
    path: P,
    seed: u64,
    rows: &T,
) -> std::io::Result<()> {
    let profile = Some(privim_obs::profile_report()).filter(|r| !r.is_empty());
    let report = SeededReport {
        seed,
        rows,
        telemetry: privim_obs::snapshot(),
        profile,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable rows");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm_formats_two_decimals() {
        assert_eq!(pm(94.437, 1.3), "94.44 ± 1.30");
        assert_eq!(pm(100.0, 0.0), "100.00 ± 0.00");
    }

    #[test]
    fn write_json_round_trips() {
        let rows = vec![("a", 1.0), ("b", 2.0)];
        let path = std::env::temp_dir().join("privim-report-test.json");
        write_json(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Vec<(String, f64)> = serde_json::from_str(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].1, 2.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_json_seeded_echoes_the_seed() {
        let rows = vec![("a", 1.0)];
        let path = std::env::temp_dir().join("privim-report-seeded-test.json");
        write_json_seeded(&path, 1234, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["seed"], 1234);
        assert_eq!(back["rows"][0][1], 1.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_input() {
        print_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
