//! Property-based tests for diffusion and seed selection.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use privim_graph::{Graph, GraphBuilder, NodeId};
use privim_im::greedy::{celf_coverage, degree_heuristic, random_seeds};
use privim_im::metrics::top_k_seeds;
use privim_im::models::{
    deterministic_one_step_coverage, simulate_cascade, DiffusionConfig, DiffusionModel,
};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0.0f64..=1.0), 0..80).prop_map(
            move |es| {
                let mut b = GraphBuilder::new(n);
                for (s, d, w) in es {
                    if s != d {
                        b.add_edge(s, d, w);
                    }
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cascade_spread_is_bounded(g in arb_graph(), seed in 0u64..100, k in 1usize..5) {
        let seeds: Vec<NodeId> = (0..k.min(g.num_nodes()) as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for cfg in [
            DiffusionConfig::ic_with_steps(2),
            DiffusionConfig::ic_unbounded(),
            DiffusionConfig { model: DiffusionModel::LinearThreshold, max_steps: Some(3) },
            DiffusionConfig { model: DiffusionModel::Sis { recovery: 0.3 }, max_steps: Some(3) },
        ] {
            let spread = simulate_cascade(&g, &seeds, &cfg, &mut rng);
            prop_assert!(spread >= seeds.len());
            prop_assert!(spread <= g.num_nodes());
        }
    }

    #[test]
    fn coverage_is_monotone_in_seed_set(g in arb_graph()) {
        let mut seeds: Vec<NodeId> = Vec::new();
        let mut prev = 0usize;
        for v in g.nodes().take(6) {
            seeds.push(v);
            let c = deterministic_one_step_coverage(&g, &seeds);
            prop_assert!(c >= prev, "coverage shrank when adding a seed");
            prev = c;
        }
    }

    #[test]
    fn coverage_is_submodular_on_random_prefixes(g in arb_graph(), extra_raw in 0u32..30) {
        // Adding `extra` to a smaller set gains at least as much as adding
        // it to a superset.
        let extra = extra_raw % g.num_nodes() as u32;
        let all: Vec<NodeId> = g.nodes().take(5).filter(|&v| v != extra).collect();
        if all.len() < 2 { return Ok(()); }
        let small = &all[..1];
        let big = &all[..];
        let gain = |base: &[NodeId]| {
            let mut with: Vec<NodeId> = base.to_vec();
            with.push(extra);
            deterministic_one_step_coverage(&g, &with) as i64
                - deterministic_one_step_coverage(&g, base) as i64
        };
        prop_assert!(gain(small) >= gain(big), "submodularity violated");
    }

    #[test]
    fn celf_respects_approximation_vs_heuristics(g in arb_graph(), k in 1usize..6) {
        let k = k.min(g.num_nodes());
        let (seeds, spread) = celf_coverage(&g, k);
        prop_assert_eq!(seeds.len(), k);
        // CELF == greedy on coverage; greedy ≥ (1 − 1/e)·OPT ≥ (1 − 1/e)·heuristic.
        let deg = degree_heuristic(&g, k);
        let deg_spread = deterministic_one_step_coverage(&g, &deg) as f64;
        prop_assert!(spread >= (1.0 - 1.0 / std::f64::consts::E) * deg_spread - 1e-9);
        // Greedy's first pick is the single best node, so spread ≥ best single.
        let best_single = g
            .nodes()
            .map(|v| deterministic_one_step_coverage(&g, &[v]))
            .max()
            .unwrap_or(0) as f64;
        prop_assert!(spread >= best_single);
    }

    #[test]
    fn celf_spread_is_monotone_in_k(g in arb_graph()) {
        let mut prev = 0.0;
        for k in 1..=g.num_nodes().min(6) {
            let (_, spread) = celf_coverage(&g, k);
            prop_assert!(spread >= prev);
            prev = spread;
        }
    }

    #[test]
    fn top_k_returns_the_k_best(scores in proptest::collection::vec(0.0f64..1.0, 1..40), k in 1usize..10) {
        let k = k.min(scores.len());
        let picked = top_k_seeds(&scores, k);
        prop_assert_eq!(picked.len(), k);
        let min_picked = picked.iter().map(|&i| scores[i as usize]).fold(f64::MAX, f64::min);
        for (i, &s) in scores.iter().enumerate() {
            if !picked.contains(&(i as u32)) {
                prop_assert!(s <= min_picked + 1e-12, "unpicked score beats picked one");
            }
        }
    }

    #[test]
    fn random_seeds_are_a_valid_sample(g in arb_graph(), seed in 0u64..50, k in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds = random_seeds(&g, k, &mut rng);
        prop_assert_eq!(seeds.len(), k.min(g.num_nodes()));
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        prop_assert_eq!(set.len(), seeds.len());
    }
}
