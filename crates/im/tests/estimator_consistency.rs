//! Cross-estimator consistency: three independent estimators of the same
//! influence quantity (forward Monte Carlo cascades, reverse-reachable
//! sampling, and exact computation on tractable graphs) must agree.

use privim_graph::{Graph, GraphBuilder, NodeId};
use privim_im::models::DiffusionConfig;
use privim_im::ris::RrCollection;
use privim_im::spread::{influence_spread, influence_spread_with_ci};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hub with `k` spokes at probability `p`: E[1-step spread of {hub}] is
/// exactly `1 + k·p`.
fn star(k: usize, p: f64) -> Graph {
    let mut b = GraphBuilder::new(k + 1);
    for i in 1..=k {
        b.add_edge(0, i as NodeId, p);
    }
    b.build()
}

#[test]
fn forward_mc_matches_closed_form() {
    let g = star(8, 0.3);
    let truth = 1.0 + 8.0 * 0.3;
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = DiffusionConfig::ic_with_steps(1);
    let est = influence_spread(&g, &[0], &cfg, 80_000, &mut rng);
    assert!((est - truth).abs() < 0.03, "MC {est} vs truth {truth}");
}

#[test]
fn ris_matches_closed_form() {
    let g = star(8, 0.3);
    let truth = 1.0 + 8.0 * 0.3;
    let mut rng = StdRng::seed_from_u64(2);
    let rr = RrCollection::sample(&g, 80_000, Some(1), &mut rng);
    let est = rr.estimate_spread(&[0]);
    assert!((est - truth).abs() < 0.05, "RIS {est} vs truth {truth}");
}

#[test]
fn forward_and_reverse_agree_on_random_graph() {
    let mut rng = StdRng::seed_from_u64(3);
    let g =
        privim_datasets::generators::holme_kim(80, 3, 0.3, 1.0, &mut rng).with_uniform_weight(0.2);
    let seeds: Vec<NodeId> = vec![0, 13, 42];
    let cfg = DiffusionConfig::ic_with_steps(2);
    let mc = influence_spread(&g, &seeds, &cfg, 60_000, &mut rng);
    let rr = RrCollection::sample(&g, 60_000, Some(2), &mut rng);
    let ris = rr.estimate_spread(&seeds);
    assert!(
        (mc - ris).abs() / mc < 0.03,
        "forward MC {mc:.2} vs reverse sampling {ris:.2}"
    );
}

#[test]
fn multi_step_expectation_on_chain() {
    // 0 -> 1 -> 2 with p = 0.5 each: E[unbounded spread] = 1 + 0.5 + 0.25.
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1, 0.5);
    b.add_edge(1, 2, 0.5);
    let g = b.build();
    let mut rng = StdRng::seed_from_u64(4);
    let est = influence_spread_with_ci(
        &g,
        &[0],
        &DiffusionConfig::ic_unbounded(),
        50_000,
        3.3,
        &mut rng,
    );
    let (lo, hi) = est.interval();
    assert!(lo <= 1.75 && 1.75 <= hi, "[{lo}, {hi}]");
}

#[test]
fn unbounded_equals_large_step_cap() {
    let mut rng = StdRng::seed_from_u64(5);
    let g =
        privim_datasets::generators::holme_kim(60, 3, 0.2, 1.0, &mut rng).with_uniform_weight(0.3);
    let seeds = [0u32, 7];
    let unbounded = influence_spread(
        &g,
        &seeds,
        &DiffusionConfig::ic_unbounded(),
        40_000,
        &mut rng,
    );
    let capped = influence_spread(
        &g,
        &seeds,
        &DiffusionConfig::ic_with_steps(60),
        40_000,
        &mut rng,
    );
    assert!(
        (unbounded - capped).abs() / unbounded < 0.02,
        "unbounded {unbounded:.2} vs 60-step {capped:.2}"
    );
}
