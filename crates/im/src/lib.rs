//! Influence-maximization substrate: diffusion simulation, seed selection
//! and evaluation metrics.
//!
//! - [`models`] — Independent Cascade (Definition 6), Linear Threshold and
//!   SIS diffusion, plus the exact one-step coverage objective the paper
//!   evaluates (`w = 1`, `j = 1`).
//! - [`spread`] — Monte Carlo / exact spread estimation, optionally
//!   multi-threaded.
//! - [`greedy`] — CELF lazy greedy (the paper's ground truth with its
//!   `(1 − 1/e)` guarantee), degree and random heuristics.
//! - [`ris`] — Reverse Influence Sampling (TIM/IMM family), the
//!   sampling-based traditional approach from the paper's related work.
//! - [`metrics`] — top-k seed extraction, coverage ratio, mean ± std.
//!
//! # Example
//!
//! ```
//! use privim_graph::GraphBuilder;
//! use privim_im::greedy::celf_coverage;
//! use privim_im::metrics::coverage_ratio;
//!
//! let mut b = GraphBuilder::new(5);
//! for i in 1..5 {
//!     b.add_edge(0, i, 1.0);
//! }
//! let g = b.build();
//! let (seeds, spread) = celf_coverage(&g, 1);
//! assert_eq!(seeds, vec![0]);
//! assert_eq!(spread, 5.0);
//! assert_eq!(coverage_ratio(4.0, spread), 80.0);
//! ```

pub mod greedy;
pub mod metrics;
pub mod models;
pub mod monitoring;
pub mod ris;
pub mod spread;

pub use greedy::{
    celf_coverage, celf_monte_carlo, celf_monte_carlo_threaded, degree_heuristic, random_seeds,
};
pub use metrics::{coverage_ratio, mean_std, top_k_seeds};
pub use models::{DiffusionConfig, DiffusionModel};
pub use monitoring::detection_rate;
pub use ris::{ris_seed_selection, RrCollection};
pub use spread::{influence_spread, influence_spread_parallel, SpreadError};
