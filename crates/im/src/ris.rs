//! Reverse Influence Sampling (RIS / TIM / IMM family).
//!
//! The paper's related work singles out sampling-based IM methods [28] as
//! the traditional approach balancing effectiveness and efficiency; this
//! module implements that family as an additional non-private baseline and
//! as an independent estimator of influence spread.
//!
//! A *reverse-reachable (RR) set* is built by picking a uniform node `v`
//! and sampling the set of nodes that could have influenced `v` under a
//! random realization of the IC model (follow in-edges, keeping each with
//! its influence probability). The classic identity
//! `E[spread(S)] = n · Pr[S hits a random RR set]` turns influence
//! maximization into maximum coverage over RR sets, solved greedily with
//! the `(1 − 1/e − ε)` guarantee.

use rand::Rng;

use privim_graph::{Graph, NodeId};

/// One reverse-reachable set.
pub type RrSet = Vec<NodeId>;

/// Samples one RR set for target `v` under the IC model, optionally
/// bounded to `max_steps` reverse hops (matching the paper's `j`-step
/// evaluation horizon).
pub fn sample_rr_set<R: Rng + ?Sized>(
    g: &Graph,
    v: NodeId,
    max_steps: Option<usize>,
    rng: &mut R,
) -> RrSet {
    let mut visited = vec![false; g.num_nodes()];
    visited[v as usize] = true;
    let mut set = vec![v];
    let mut frontier = vec![v];
    let mut next = Vec::new();
    let mut step = 0usize;
    while !frontier.is_empty() && max_steps.is_none_or(|m| step < m) {
        next.clear();
        for &u in &frontier {
            for (&s, &w) in g.in_neighbors(u).iter().zip(g.in_weights(u)) {
                if !visited[s as usize] && (w >= 1.0 || rng.gen::<f64>() < w) {
                    visited[s as usize] = true;
                    set.push(s);
                    next.push(s);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        step += 1;
    }
    set
}

/// A collection of RR sets with the inverted index needed for greedy
/// maximum coverage.
pub struct RrCollection {
    num_nodes: usize,
    sets: Vec<RrSet>,
    /// For each node, the indices of RR sets containing it.
    membership: Vec<Vec<u32>>,
}

impl RrCollection {
    /// Samples `count` RR sets with uniformly random targets.
    pub fn sample<R: Rng + ?Sized>(
        g: &Graph,
        count: usize,
        max_steps: Option<usize>,
        rng: &mut R,
    ) -> Self {
        assert!(g.num_nodes() > 0, "graph must be non-empty");
        let mut sets = Vec::with_capacity(count);
        let mut membership = vec![Vec::new(); g.num_nodes()];
        for i in 0..count {
            let target = rng.gen_range(0..g.num_nodes() as NodeId);
            let set = sample_rr_set(g, target, max_steps, rng);
            for &node in &set {
                membership[node as usize].push(i as u32);
            }
            sets.push(set);
        }
        RrCollection {
            num_nodes: g.num_nodes(),
            sets,
            membership,
        }
    }

    /// Number of RR sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True if no RR sets were sampled.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Estimated spread of `seeds`: `n · (covered sets / total sets)`.
    pub fn estimate_spread(&self, seeds: &[NodeId]) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        let mut covered = vec![false; self.sets.len()];
        let mut count = 0usize;
        for &s in seeds {
            for &idx in &self.membership[s as usize] {
                if !covered[idx as usize] {
                    covered[idx as usize] = true;
                    count += 1;
                }
            }
        }
        self.num_nodes as f64 * count as f64 / self.sets.len() as f64
    }

    /// Greedy maximum coverage over the RR sets: returns `(seeds,
    /// estimated_spread)` with the standard `(1 − 1/e)` guarantee relative
    /// to the sampled coverage objective.
    pub fn select_seeds(&self, k: usize) -> (Vec<NodeId>, f64) {
        let k = k.min(self.num_nodes);
        let mut gain: Vec<i64> = self.membership.iter().map(|m| m.len() as i64).collect();
        let mut covered = vec![false; self.sets.len()];
        let mut chosen = vec![false; self.num_nodes];
        let mut seeds = Vec::with_capacity(k);
        let mut covered_count = 0usize;
        for _ in 0..k {
            // Lazy-free exact greedy: recompute argmax each round (gain
            // updates below keep this O(k · n + total set size)).
            let best = (0..self.num_nodes)
                .filter(|&v| !chosen[v])
                .max_by_key(|&v| (gain[v], std::cmp::Reverse(v)))
                .expect("k <= num_nodes");
            chosen[best] = true;
            seeds.push(best as NodeId);
            for &idx in &self.membership[best] {
                if !covered[idx as usize] {
                    covered[idx as usize] = true;
                    covered_count += 1;
                    // Every other member of this set loses one unit of gain.
                    for &member in &self.sets[idx as usize] {
                        gain[member as usize] -= 1;
                    }
                }
            }
        }
        let spread = self.num_nodes as f64 * covered_count as f64 / self.sets.len().max(1) as f64;
        (seeds, spread)
    }
}

/// The number of RR sets for an `(ε, ℓ)`-style guarantee, following the
/// simplified TIM bound `R = (8 + 2ε) n (ln n + ln 2) / (OPT_lb ε²)` with
/// the trivial lower bound `OPT_lb = k`. Conservatively capped so harness
/// runs stay bounded.
pub fn recommended_rr_count(num_nodes: usize, k: usize, epsilon: f64) -> usize {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let n = num_nodes as f64;
    let raw = (8.0 + 2.0 * epsilon) * n * (n.ln() + std::f64::consts::LN_2)
        / (k.max(1) as f64 * epsilon * epsilon);
    (raw.ceil() as usize).clamp(100, 2_000_000)
}

/// End-to-end RIS seed selection: samples [`recommended_rr_count`] RR sets
/// and runs greedy coverage. Returns `(seeds, estimated_spread)`.
pub fn ris_seed_selection<R: Rng + ?Sized>(
    g: &Graph,
    k: usize,
    epsilon: f64,
    max_steps: Option<usize>,
    rng: &mut R,
) -> (Vec<NodeId>, f64) {
    let count = recommended_rr_count(g.num_nodes(), k, epsilon);
    let collection = RrCollection::sample(g, count, max_steps, rng);
    collection.select_seeds(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::greedy::celf_coverage;
    use crate::models::deterministic_one_step_coverage;

    fn two_stars() -> Graph {
        let mut b = GraphBuilder::new(11);
        for i in 1..=5 {
            b.add_edge(0, i, 1.0);
        }
        for i in 7..=9 {
            b.add_edge(6, i, 1.0);
        }
        b.build()
    }

    #[test]
    fn rr_sets_contain_their_target() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(1);
        for v in g.nodes() {
            let set = sample_rr_set(&g, v, None, &mut rng);
            assert!(set.contains(&v));
        }
    }

    #[test]
    fn rr_set_of_spoke_contains_hub_at_unit_weights() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(2);
        let set = sample_rr_set(&g, 3, None, &mut rng);
        assert!(
            set.contains(&0),
            "w = 1 makes reverse reachability deterministic"
        );
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn step_bound_limits_reverse_depth() {
        // Chain 0 -> 1 -> 2 -> 3.
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, i + 1, 1.0);
        }
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(3);
        let bounded = sample_rr_set(&g, 3, Some(1), &mut rng);
        assert_eq!(bounded.len(), 2); // {3, 2}
        let full = sample_rr_set(&g, 3, None, &mut rng);
        assert_eq!(full.len(), 4);
    }

    #[test]
    fn ris_matches_celf_on_deterministic_coverage() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(4);
        let (seeds, _) = ris_seed_selection(&g, 2, 0.3, Some(1), &mut rng);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 6], "RIS must find both hubs");
        let (celf_seeds, celf_spread) = celf_coverage(&g, 2);
        assert_eq!(
            deterministic_one_step_coverage(&g, &seeds) as f64,
            celf_spread,
            "coverage parity with CELF; CELF seeds {celf_seeds:?}"
        );
    }

    #[test]
    fn spread_estimate_converges() {
        // Probabilistic graph: hub 0 reaches 4 spokes with p = 0.5; true
        // 1-step spread of {0} is 1 + 4·0.5 = 3.
        let mut b = GraphBuilder::new(5);
        for i in 1..5 {
            b.add_edge(0, i, 0.5);
        }
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(5);
        let collection = RrCollection::sample(&g, 60_000, Some(1), &mut rng);
        let estimate = collection.estimate_spread(&[0]);
        assert!((estimate - 3.0).abs() < 0.1, "estimate {estimate}");
    }

    #[test]
    fn estimate_is_monotone_in_seed_set() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(6);
        let c = RrCollection::sample(&g, 5_000, None, &mut rng);
        let single = c.estimate_spread(&[0]);
        let both = c.estimate_spread(&[0, 6]);
        assert!(both >= single);
        assert!(c.estimate_spread(&[]) == 0.0);
    }

    #[test]
    fn recommended_count_scales_sensibly() {
        let base = recommended_rr_count(1_000, 10, 0.5);
        assert!(
            recommended_rr_count(10_000, 10, 0.5) > base,
            "more nodes need more sets"
        );
        assert!(
            recommended_rr_count(1_000, 50, 0.5) < base,
            "larger k needs fewer"
        );
        assert!(
            recommended_rr_count(1_000, 10, 0.1) > base,
            "tighter eps needs more"
        );
        assert!(recommended_rr_count(10, 1, 10.0) >= 100, "floor applies");
    }

    #[test]
    fn select_seeds_handles_k_geq_n() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(7);
        let c = RrCollection::sample(&g, 500, None, &mut rng);
        let (seeds, spread) = c.select_seeds(100);
        assert_eq!(seeds.len(), g.num_nodes());
        assert!((spread - g.num_nodes() as f64).abs() < 1e-9);
    }
}
