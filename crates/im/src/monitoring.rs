//! Cascade monitoring: the rumor-blocking application family the paper
//! motivates (Section I, Section VII).
//!
//! A *monitor placement* is a set of nodes observed for activation; a
//! cascade is *detected* if it activates at least one monitor within the
//! horizon. Good monitor sets are exactly influential sets on the
//! transpose graph — reachable-from-many rather than reaching-many — so
//! any IM solver (including a DP-trained PrivIM model) doubles as a
//! monitor-placement engine via [`Graph::transpose`].

use rand::{Rng, SeedableRng};

use privim_graph::{Graph, NodeId};

use crate::models::{simulate_cascade_mask, DiffusionConfig};

/// Estimated probability that a cascade from a uniformly random single
/// source activates at least one of `monitors` within `config`'s horizon,
/// over `trials` simulations.
pub fn detection_rate<R: Rng + ?Sized>(
    g: &Graph,
    monitors: &[NodeId],
    config: &DiffusionConfig,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    assert!(g.num_nodes() > 0, "graph must be non-empty");
    let mut is_monitor = vec![false; g.num_nodes()];
    for &m in monitors {
        is_monitor[m as usize] = true;
    }
    let mut detected = 0usize;
    for _ in 0..trials {
        let source = rng.gen_range(0..g.num_nodes() as NodeId);
        let reached = simulate_cascade_mask(g, &[source], config, rng);
        if reached.iter().zip(&is_monitor).any(|(&r, &m)| r && m) {
            detected += 1;
        }
    }
    detected as f64 / trials as f64
}

/// Mean number of diffusion steps until first detection, over detected
/// cascades only; `None` if no cascade was detected. Earlier is better
/// (rumor *blocking* needs time to react).
pub fn mean_detection_step<R: Rng + ?Sized>(
    g: &Graph,
    monitors: &[NodeId],
    config: &DiffusionConfig,
    trials: usize,
    rng: &mut R,
) -> Option<f64> {
    assert!(g.num_nodes() > 0, "graph must be non-empty");
    let max_steps = config.max_steps.unwrap_or(16);
    let mut is_monitor = vec![false; g.num_nodes()];
    for &m in monitors {
        is_monitor[m as usize] = true;
    }
    let mut total = 0usize;
    let mut detected = 0usize;
    for _ in 0..trials {
        let source = rng.gen_range(0..g.num_nodes() as NodeId);
        // Step-by-step: re-run with increasing horizons would re-sample the
        // randomness, so walk the horizon within one cascade manually.
        if is_monitor[source as usize] {
            detected += 1;
            continue; // step 0
        }
        for step in 1..=max_steps {
            let cfg = DiffusionConfig {
                max_steps: Some(step),
                ..*config
            };
            let mut probe_rng = rand::rngs::StdRng::seed_from_u64(rng.r#gen());
            let reached = simulate_cascade_mask(g, &[source], &cfg, &mut probe_rng);
            if reached.iter().zip(&is_monitor).any(|(&r, &m)| r && m) {
                total += step;
                detected += 1;
                break;
            }
        }
    }
    if detected == 0 {
        None
    } else {
        Some(total as f64 / detected as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::DiffusionModel;
    use privim_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star_in(hub: NodeId, spokes: usize) -> Graph {
        let mut b = GraphBuilder::new(spokes + 1);
        for i in 0..spokes as NodeId {
            let v = if i < hub { i } else { i + 1 };
            b.add_edge(v, hub, 1.0);
        }
        b.build()
    }

    #[test]
    fn hub_monitor_detects_everything_on_in_star() {
        // Every node points at the hub with w = 1: any cascade reaches it
        // in one step.
        let g = star_in(0, 6);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = DiffusionConfig::ic_with_steps(1);
        let rate = detection_rate(&g, &[0], &cfg, 2_000, &mut rng);
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn spoke_monitor_detects_only_itself() {
        let g = star_in(0, 6);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = DiffusionConfig::ic_with_steps(1);
        // Monitor at spoke 3: only cascades starting at 3 hit it
        // (nothing points at a spoke).
        let rate = detection_rate(&g, &[3], &cfg, 20_000, &mut rng);
        assert!((rate - 1.0 / 7.0).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn more_monitors_never_detect_less() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = privim_datasets::generators::holme_kim(100, 3, 0.3, 1.0, &mut rng)
            .with_uniform_weight(0.2);
        let cfg = DiffusionConfig {
            model: DiffusionModel::IndependentCascade,
            max_steps: Some(3),
        };
        let small = detection_rate(&g, &[0, 1], &cfg, 4_000, &mut StdRng::seed_from_u64(4));
        let large = detection_rate(
            &g,
            &[0, 1, 2, 3, 4, 5],
            &cfg,
            4_000,
            &mut StdRng::seed_from_u64(4),
        );
        assert!(large >= small - 0.02, "{large} < {small}");
    }

    #[test]
    fn detection_step_zero_when_monitoring_everything() {
        let g = star_in(0, 3);
        let all: Vec<NodeId> = g.nodes().collect();
        let cfg = DiffusionConfig::ic_with_steps(2);
        let mut rng = StdRng::seed_from_u64(5);
        let mean = mean_detection_step(&g, &all, &cfg, 200, &mut rng);
        assert_eq!(mean, Some(0.0), "source is always a monitor");
    }

    #[test]
    fn undetectable_monitors_return_none() {
        // Disconnected monitor that nothing reaches, and sources that never
        // coincide with it... with uniform random sources the monitor node
        // itself can be the source, so use an empty monitor set instead.
        let g = star_in(0, 3);
        let cfg = DiffusionConfig::ic_with_steps(1);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(mean_detection_step(&g, &[], &cfg, 100, &mut rng), None);
        assert_eq!(detection_rate(&g, &[], &cfg, 100, &mut rng), 0.0);
    }
}
