//! Influence diffusion models.
//!
//! The paper's experiments use the Independent Cascade (IC) model
//! (Definition 6) with uniform influence probability `w = 1` and a one-step
//! horizon; [`DiffusionModel`] also provides the Linear Threshold (LT) and
//! SIS models named as future work in Section VII.

use rand::Rng;
use serde::{Deserialize, Serialize};

use privim_graph::{Graph, NodeId};

/// Which diffusion process to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DiffusionModel {
    /// Independent Cascade: each newly activated `u` gets one chance to
    /// activate each inactive out-neighbor `v` with probability `w_uv`.
    IndependentCascade,
    /// Linear Threshold: node `v` activates once the total weight of its
    /// active in-neighbors reaches a uniform random threshold `θ_v`.
    LinearThreshold,
    /// SIS epidemic: infected nodes infect out-neighbors with probability
    /// `w_uv` each step and recover (back to susceptible) with probability
    /// `recovery`. Spread counts nodes *ever* infected.
    Sis {
        /// Per-step recovery probability.
        recovery: f64,
    },
}

/// Diffusion run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffusionConfig {
    /// The model to run.
    pub model: DiffusionModel,
    /// Maximum number of diffusion steps (`None` = until quiescence). The
    /// paper's evaluation uses `Some(1)`.
    pub max_steps: Option<usize>,
}

impl DiffusionConfig {
    /// The paper's evaluation setting: IC with a `j`-step horizon.
    pub fn ic_with_steps(steps: usize) -> Self {
        DiffusionConfig {
            model: DiffusionModel::IndependentCascade,
            max_steps: Some(steps),
        }
    }

    /// IC run to quiescence.
    pub fn ic_unbounded() -> Self {
        DiffusionConfig {
            model: DiffusionModel::IndependentCascade,
            max_steps: None,
        }
    }
}

/// Runs a single stochastic cascade from `seeds`; returns the number of
/// activated nodes (including the seeds).
pub fn simulate_cascade<R: Rng + ?Sized>(
    g: &Graph,
    seeds: &[NodeId],
    config: &DiffusionConfig,
    rng: &mut R,
) -> usize {
    match config.model {
        DiffusionModel::IndependentCascade => simulate_ic(g, seeds, config.max_steps, rng),
        DiffusionModel::LinearThreshold => simulate_lt(g, seeds, config.max_steps, rng),
        DiffusionModel::Sis { recovery } => {
            simulate_sis(g, seeds, config.max_steps.unwrap_or(10), recovery, rng)
        }
    }
}

fn simulate_ic<R: Rng + ?Sized>(
    g: &Graph,
    seeds: &[NodeId],
    max_steps: Option<usize>,
    rng: &mut R,
) -> usize {
    let mut active = vec![false; g.num_nodes()];
    let mut frontier: Vec<NodeId> = Vec::with_capacity(seeds.len());
    let mut count = 0usize;
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            frontier.push(s);
            count += 1;
        }
    }
    let mut next = Vec::new();
    let mut step = 0usize;
    while !frontier.is_empty() && max_steps.is_none_or(|m| step < m) {
        next.clear();
        for &u in &frontier {
            for (&v, &w) in g.out_neighbors(u).iter().zip(g.out_weights(u)) {
                if !active[v as usize] && (w >= 1.0 || rng.gen::<f64>() < w) {
                    active[v as usize] = true;
                    next.push(v);
                    count += 1;
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        step += 1;
    }
    count
}

fn simulate_lt<R: Rng + ?Sized>(
    g: &Graph,
    seeds: &[NodeId],
    max_steps: Option<usize>,
    rng: &mut R,
) -> usize {
    let n = g.num_nodes();
    let thresholds: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let mut active = vec![false; n];
    let mut weight_in = vec![0.0f64; n];
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut count = 0usize;
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            frontier.push(s);
            count += 1;
        }
    }
    let mut next = Vec::new();
    let mut step = 0usize;
    while !frontier.is_empty() && max_steps.is_none_or(|m| step < m) {
        next.clear();
        for &u in &frontier {
            for (&v, &w) in g.out_neighbors(u).iter().zip(g.out_weights(u)) {
                if active[v as usize] {
                    continue;
                }
                weight_in[v as usize] += w;
                if weight_in[v as usize] >= thresholds[v as usize] {
                    active[v as usize] = true;
                    next.push(v);
                    count += 1;
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        step += 1;
    }
    count
}

fn simulate_sis<R: Rng + ?Sized>(
    g: &Graph,
    seeds: &[NodeId],
    steps: usize,
    recovery: f64,
    rng: &mut R,
) -> usize {
    let n = g.num_nodes();
    let mut infected = vec![false; n];
    let mut ever = vec![false; n];
    let mut count = 0usize;
    for &s in seeds {
        infected[s as usize] = true;
        if !ever[s as usize] {
            ever[s as usize] = true;
            count += 1;
        }
    }
    for _ in 0..steps {
        let snapshot = infected.clone();
        for u in 0..n as NodeId {
            if !snapshot[u as usize] {
                continue;
            }
            for (&v, &w) in g.out_neighbors(u).iter().zip(g.out_weights(u)) {
                if !snapshot[v as usize] && (w >= 1.0 || rng.gen::<f64>() < w) {
                    infected[v as usize] = true;
                    if !ever[v as usize] {
                        ever[v as usize] = true;
                        count += 1;
                    }
                }
            }
            if rng.gen::<f64>() < recovery {
                infected[u as usize] = false;
            }
        }
    }
    count
}

/// Like [`simulate_cascade`] but returns the activation mask (`true` for
/// every node that was activated at any point) instead of only the count.
/// Needed by monitor-placement and blocking applications that ask *which*
/// nodes a cascade reached.
pub fn simulate_cascade_mask<R: Rng + ?Sized>(
    g: &Graph,
    seeds: &[NodeId],
    config: &DiffusionConfig,
    rng: &mut R,
) -> Vec<bool> {
    match config.model {
        DiffusionModel::IndependentCascade => {
            let mut active = vec![false; g.num_nodes()];
            let mut frontier: Vec<NodeId> = Vec::new();
            for &s in seeds {
                if !active[s as usize] {
                    active[s as usize] = true;
                    frontier.push(s);
                }
            }
            let mut next = Vec::new();
            let mut step = 0usize;
            while !frontier.is_empty() && config.max_steps.is_none_or(|m| step < m) {
                next.clear();
                for &u in &frontier {
                    for (&v, &w) in g.out_neighbors(u).iter().zip(g.out_weights(u)) {
                        if !active[v as usize] && (w >= 1.0 || rng.gen::<f64>() < w) {
                            active[v as usize] = true;
                            next.push(v);
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
                step += 1;
            }
            active
        }
        DiffusionModel::LinearThreshold => {
            let n = g.num_nodes();
            let thresholds: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            let mut active = vec![false; n];
            let mut weight_in = vec![0.0f64; n];
            let mut frontier: Vec<NodeId> = Vec::new();
            for &s in seeds {
                if !active[s as usize] {
                    active[s as usize] = true;
                    frontier.push(s);
                }
            }
            let mut next = Vec::new();
            let mut step = 0usize;
            while !frontier.is_empty() && config.max_steps.is_none_or(|m| step < m) {
                next.clear();
                for &u in &frontier {
                    for (&v, &w) in g.out_neighbors(u).iter().zip(g.out_weights(u)) {
                        if active[v as usize] {
                            continue;
                        }
                        weight_in[v as usize] += w;
                        if weight_in[v as usize] >= thresholds[v as usize] {
                            active[v as usize] = true;
                            next.push(v);
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
                step += 1;
            }
            active
        }
        DiffusionModel::Sis { recovery } => {
            let n = g.num_nodes();
            let steps = config.max_steps.unwrap_or(10);
            let mut infected = vec![false; n];
            let mut ever = vec![false; n];
            for &s in seeds {
                infected[s as usize] = true;
                ever[s as usize] = true;
            }
            for _ in 0..steps {
                let snapshot = infected.clone();
                for u in 0..n as NodeId {
                    if !snapshot[u as usize] {
                        continue;
                    }
                    for (&v, &w) in g.out_neighbors(u).iter().zip(g.out_weights(u)) {
                        if !snapshot[v as usize] && (w >= 1.0 || rng.gen::<f64>() < w) {
                            infected[v as usize] = true;
                            ever[v as usize] = true;
                        }
                    }
                    if rng.gen::<f64>() < recovery {
                        infected[u as usize] = false;
                    }
                }
            }
            ever
        }
    }
}

/// Exact 1-step IC spread under deterministic weights (`w = 1`):
/// `|S ∪ N_out(S)|`. This is the paper's evaluation objective, which makes
/// the spread an exact coverage function (and CELF exact lazy greedy).
pub fn deterministic_one_step_coverage(g: &Graph, seeds: &[NodeId]) -> usize {
    let mut covered = vec![false; g.num_nodes()];
    let mut count = 0usize;
    for &s in seeds {
        if !covered[s as usize] {
            covered[s as usize] = true;
            count += 1;
        }
        for &v in g.out_neighbors(s) {
            if !covered[v as usize] {
                covered[v as usize] = true;
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star_out(spokes: usize) -> Graph {
        let mut b = GraphBuilder::new(spokes + 1);
        for i in 1..=spokes {
            b.add_edge(0, i as NodeId, 1.0);
        }
        b.build()
    }

    fn path(n: usize, w: f64) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, (i + 1) as NodeId, w);
        }
        b.build()
    }

    #[test]
    fn ic_with_unit_weights_is_deterministic() {
        let g = star_out(5);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = DiffusionConfig::ic_with_steps(1);
        assert_eq!(simulate_cascade(&g, &[0], &cfg, &mut rng), 6);
        // From a spoke, nothing spreads.
        assert_eq!(simulate_cascade(&g, &[3], &cfg, &mut rng), 1);
    }

    #[test]
    fn ic_step_cap_limits_reach() {
        let g = path(10, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for steps in 0..5 {
            let cfg = DiffusionConfig::ic_with_steps(steps);
            assert_eq!(simulate_cascade(&g, &[0], &cfg, &mut rng), steps + 1);
        }
        let unbounded = DiffusionConfig::ic_unbounded();
        assert_eq!(simulate_cascade(&g, &[0], &unbounded, &mut rng), 10);
    }

    #[test]
    fn ic_zero_weight_never_spreads() {
        let g = path(5, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = DiffusionConfig::ic_unbounded();
        assert_eq!(simulate_cascade(&g, &[0], &cfg, &mut rng), 1);
    }

    #[test]
    fn ic_probability_half_matches_expectation_on_single_edge() {
        let g = path(2, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = DiffusionConfig::ic_with_steps(1);
        let trials = 40_000;
        let total: usize = (0..trials)
            .map(|_| simulate_cascade(&g, &[0], &cfg, &mut rng))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 1.5).abs() < 0.02, "mean spread {mean}");
    }

    #[test]
    fn duplicate_seeds_count_once() {
        let g = star_out(3);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = DiffusionConfig::ic_with_steps(1);
        assert_eq!(simulate_cascade(&g, &[0, 0, 0], &cfg, &mut rng), 4);
    }

    #[test]
    fn lt_full_weight_acts_like_bfs() {
        // With w = 1, every threshold θ ∈ (0,1] is met by a single active
        // in-neighbor, so LT spreads like deterministic BFS.
        let g = path(6, 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = DiffusionConfig {
            model: DiffusionModel::LinearThreshold,
            max_steps: None,
        };
        assert_eq!(simulate_cascade(&g, &[0], &cfg, &mut rng), 6);
    }

    #[test]
    fn lt_sub_threshold_weights_stall() {
        // One in-edge of weight 0.3 activates v only if θ_v ≤ 0.3.
        let g = path(2, 0.3);
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = DiffusionConfig {
            model: DiffusionModel::LinearThreshold,
            max_steps: None,
        };
        let trials = 40_000;
        let total: usize = (0..trials)
            .map(|_| simulate_cascade(&g, &[0], &cfg, &mut rng))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 1.3).abs() < 0.02, "mean spread {mean}");
    }

    #[test]
    fn sis_counts_ever_infected() {
        let g = star_out(4);
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = DiffusionConfig {
            model: DiffusionModel::Sis { recovery: 1.0 },
            max_steps: Some(3),
        };
        // Recovery of 1 means the hub recovers immediately after step 1,
        // but all spokes were infected in step 1.
        assert_eq!(simulate_cascade(&g, &[0], &cfg, &mut rng), 5);
    }

    #[test]
    fn coverage_matches_ic_one_step_with_unit_weights() {
        let g = star_out(7);
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = DiffusionConfig::ic_with_steps(1);
        for seeds in [vec![0], vec![1, 2], vec![0, 5]] {
            assert_eq!(
                deterministic_one_step_coverage(&g, &seeds),
                simulate_cascade(&g, &seeds, &cfg, &mut rng),
                "seeds {seeds:?}"
            );
        }
    }

    #[test]
    fn coverage_is_monotone_and_bounded() {
        let g = path(8, 1.0);
        let mut seeds = Vec::new();
        let mut prev = 0;
        for s in [0u32, 3, 6, 7] {
            seeds.push(s);
            let c = deterministic_one_step_coverage(&g, &seeds);
            assert!(c >= prev);
            assert!(c <= 8);
            prev = c;
        }
    }
}
