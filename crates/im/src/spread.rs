//! Influence-spread estimation.
//!
//! [`influence_spread`] dispatches between exact evaluation (the paper's
//! deterministic `w = 1`, `j = 1` setting) and Monte Carlo estimation, with
//! an optional multi-threaded estimator for large trial counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use privim_graph::{Graph, NodeId};

use crate::models::{
    deterministic_one_step_coverage, simulate_cascade, DiffusionConfig, DiffusionModel,
};

/// True if every edge weight is (at least) 1, making IC deterministic.
fn all_weights_saturated(g: &Graph) -> bool {
    g.nodes()
        .all(|v| g.out_weights(v).iter().all(|&w| w >= 1.0))
}

/// Estimates the expected influence spread `I(S, G)` of `seeds` under
/// `config`, averaging `trials` Monte Carlo cascades.
///
/// When the configuration is exactly the paper's evaluation setting
/// (IC, one step, all weights ≥ 1) the spread is computed exactly in a
/// single pass instead.
pub fn influence_spread<R: Rng + ?Sized>(
    g: &Graph,
    seeds: &[NodeId],
    config: &DiffusionConfig,
    trials: usize,
    rng: &mut R,
) -> f64 {
    if is_deterministic_one_step(g, config) {
        return deterministic_one_step_coverage(g, seeds) as f64;
    }
    assert!(trials > 0, "need at least one trial");
    let prof = privim_obs::ProfScope::enter("im.monte_carlo");
    // Work = trials simulated; cascade cost is data-dependent, so the
    // item counter (not flops/bytes) is the unit of throughput here.
    prof.add_work(0, 0, trials as u64);
    let started = std::time::Instant::now();
    let total: usize = (0..trials)
        .map(|_| {
            let trial = timed_trial_start();
            let n = simulate_cascade(g, seeds, config, rng);
            timed_trial_end(trial);
            n
        })
        .sum();
    record_mc_telemetry(trials, started.elapsed().as_secs_f64(), None);
    total as f64 / trials as f64
}

/// Starts a per-trial timer, but only while profiling is enabled — the
/// clock read would otherwise dominate microsecond-scale cascades.
fn timed_trial_start() -> Option<std::time::Instant> {
    privim_obs::profiling_enabled().then(std::time::Instant::now)
}

/// Records one Monte-Carlo trial's wall time into `im.trial_secs`.
fn timed_trial_end(started: Option<std::time::Instant>) {
    if let Some(t) = started {
        privim_obs::histogram("im.trial_secs").record(t.elapsed().as_secs_f64());
    }
}

/// Shared Monte-Carlo telemetry: throughput metrics always (a few relaxed
/// atomics), a `im`/`monte_carlo` event when a Debug sink listens. Never
/// touches the caller's RNG.
fn record_mc_telemetry(trials: usize, secs: f64, variance: Option<f64>) {
    privim_obs::counter("im.mc_trials").add(trials as u64);
    let sims_per_sec = if secs > 0.0 {
        trials as f64 / secs
    } else {
        f64::INFINITY
    };
    if sims_per_sec.is_finite() {
        privim_obs::histogram("im.sims_per_sec").record(sims_per_sec);
    }
    privim_obs::debug!(
        "im",
        "monte_carlo",
        trials = trials,
        secs = secs,
        sims_per_sec = sims_per_sec,
        variance = variance,
    );
}

pub(crate) fn is_deterministic_one_step(g: &Graph, config: &DiffusionConfig) -> bool {
    matches!(config.model, DiffusionModel::IndependentCascade)
        && config.max_steps == Some(1)
        && all_weights_saturated(g)
}

/// A Monte Carlo spread estimate with a normal-approximation confidence
/// interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpreadEstimate {
    /// Sample mean spread.
    pub mean: f64,
    /// Half-width of the confidence interval (`z · s / √trials`).
    pub half_width: f64,
    /// Trials used.
    pub trials: usize,
}

impl SpreadEstimate {
    /// `[mean − hw, mean + hw]`.
    pub fn interval(&self) -> (f64, f64) {
        (self.mean - self.half_width, self.mean + self.half_width)
    }
}

/// Monte Carlo spread with a CLT confidence interval at confidence `z`
/// standard errors (1.96 ≈ 95%). Exact configurations return a zero-width
/// interval.
pub fn influence_spread_with_ci<R: Rng + ?Sized>(
    g: &Graph,
    seeds: &[NodeId],
    config: &DiffusionConfig,
    trials: usize,
    z: f64,
    rng: &mut R,
) -> SpreadEstimate {
    if is_deterministic_one_step(g, config) {
        let exact = deterministic_one_step_coverage(g, seeds) as f64;
        return SpreadEstimate {
            mean: exact,
            half_width: 0.0,
            trials: 1,
        };
    }
    assert!(trials >= 2, "need at least two trials for a CI");
    let prof = privim_obs::ProfScope::enter("im.monte_carlo");
    // Work = trials simulated; cascade cost is data-dependent, so the
    // item counter (not flops/bytes) is the unit of throughput here.
    prof.add_work(0, 0, trials as u64);
    let started = std::time::Instant::now();
    let samples: Vec<f64> = (0..trials)
        .map(|_| {
            let trial = timed_trial_start();
            let n = simulate_cascade(g, seeds, config, rng);
            timed_trial_end(trial);
            n as f64
        })
        .collect();
    let mean = samples.iter().sum::<f64>() / trials as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (trials as f64 - 1.0);
    record_mc_telemetry(trials, started.elapsed().as_secs_f64(), Some(var));
    SpreadEstimate {
        mean,
        half_width: z * (var / trials as f64).sqrt(),
        trials,
    }
}

/// Trials per deterministic work block: block `b` always simulates the
/// same cascades with the same derived RNG, no matter which thread runs
/// it, so the parallel estimate is invariant to the thread count.
const TRIAL_BLOCK: usize = 256;

/// Why a spread request could not be evaluated. These are
/// caller-controlled conditions (e.g. a malformed `/v1/spread` request),
/// so they surface as values instead of panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpreadError {
    /// `trials == 0` on a stochastic configuration.
    ZeroTrials,
    /// `n_threads == 0`.
    ZeroThreads,
    /// A seed node id is not in the graph.
    SeedOutOfRange {
        /// The offending node id.
        seed: NodeId,
        /// The graph's node count.
        num_nodes: usize,
    },
}

impl std::fmt::Display for SpreadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpreadError::ZeroTrials => f.write_str("need at least one trial"),
            SpreadError::ZeroThreads => f.write_str("need at least one thread"),
            SpreadError::SeedOutOfRange { seed, num_nodes } => {
                write!(f, "seed {seed} out of range (graph has {num_nodes} nodes)")
            }
        }
    }
}

impl std::error::Error for SpreadError {}

/// Derives the RNG seed for work block `stream` (splitmix64 finalizer, so
/// nearby block indices get well-separated streams).
pub(crate) fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn check_seeds_in_range(g: &Graph, seeds: &[NodeId]) -> Result<(), SpreadError> {
    match seeds.iter().find(|&&s| s as usize >= g.num_nodes()) {
        Some(&seed) => Err(SpreadError::SeedOutOfRange {
            seed,
            num_nodes: g.num_nodes(),
        }),
        None => Ok(()),
    }
}

/// Multi-threaded Monte Carlo spread estimate; deterministic for a given
/// `seed` regardless of thread count.
///
/// Trials are partitioned into fixed [`TRIAL_BLOCK`]-sized blocks; block
/// `b` always runs with the RNG derived from `(seed, b)`, and threads
/// claim blocks from a shared counter. The per-block sums are integers,
/// so the total is independent of which thread ran which block.
///
/// Unlike the panicking estimators above, every caller-controlled
/// precondition surfaces as a [`SpreadError`] — this is the entry point
/// network-facing code (the `/v1/spread` endpoint) calls with
/// client-supplied values.
pub fn influence_spread_parallel(
    g: &Graph,
    seeds: &[NodeId],
    config: &DiffusionConfig,
    trials: usize,
    n_threads: usize,
    seed: u64,
) -> Result<f64, SpreadError> {
    check_seeds_in_range(g, seeds)?;
    if is_deterministic_one_step(g, config) {
        return Ok(deterministic_one_step_coverage(g, seeds) as f64);
    }
    if trials == 0 {
        return Err(SpreadError::ZeroTrials);
    }
    if n_threads == 0 {
        return Err(SpreadError::ZeroThreads);
    }
    let prof = privim_obs::ProfScope::enter("im.monte_carlo");
    // Work = trials simulated; cascade cost is data-dependent, so the
    // item counter (not flops/bytes) is the unit of throughput here.
    prof.add_work(0, 0, trials as u64);
    let started = std::time::Instant::now();
    // Trace contexts are thread-local and not inherited by spawned
    // workers; capture the caller's and re-enter it on each worker so
    // per-request correlation survives the fan-out. Pure bookkeeping —
    // no RNG is consumed, so estimates stay bit-identical.
    let caller_trace = privim_obs::current_trace();
    let n_blocks = trials.div_ceil(TRIAL_BLOCK);
    let n_threads = n_threads.min(n_blocks);
    let next_block = std::sync::atomic::AtomicUsize::new(0);
    let totals: Vec<usize> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let next_block = &next_block;
                scope.spawn(move |_| {
                    let worker = move || {
                        let mut local = 0usize;
                        let mut blocks = 0usize;
                        loop {
                            let b = next_block.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if b >= n_blocks {
                                // One event per worker, stamped with the
                                // adopted request trace (if any), so the
                                // fan-out is visible in dumps.
                                privim_obs::debug!(
                                    "im",
                                    "worker_done",
                                    blocks = blocks,
                                    infected = local,
                                );
                                return local;
                            }
                            blocks += 1;
                            let quota = TRIAL_BLOCK.min(trials - b * TRIAL_BLOCK);
                            let mut rng = StdRng::seed_from_u64(mix_seed(seed, b as u64));
                            local += (0..quota)
                                .map(|_| simulate_cascade(g, seeds, config, &mut rng))
                                .sum::<usize>();
                        }
                    };
                    match caller_trace {
                        Some(ctx) => privim_obs::with_trace(ctx, worker),
                        None => worker(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("spread worker panicked"))
            .collect()
    })
    .expect("spread thread scope failed");
    record_mc_telemetry(trials, started.elapsed().as_secs_f64(), None);
    Ok(totals.iter().sum::<usize>() as f64 / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::GraphBuilder;

    fn two_hop_chain() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 2, 0.5);
        b.build()
    }

    #[test]
    fn exact_path_taken_for_paper_setting() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = DiffusionConfig::ic_with_steps(1);
        // trials = 1 would be noisy for MC; exactness proves the fast path.
        let s = influence_spread(&g, &[0], &cfg, 1, &mut rng);
        assert_eq!(s, 3.0);
    }

    #[test]
    fn monte_carlo_converges_to_expectation() {
        // E[spread from 0] = 1 + 0.5 + 0.25 = 1.75 on the 0.5-weight chain.
        let g = two_hop_chain();
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = DiffusionConfig::ic_unbounded();
        let s = influence_spread(&g, &[0], &cfg, 60_000, &mut rng);
        assert!((s - 1.75).abs() < 0.02, "spread {s}");
    }

    #[test]
    fn parallel_matches_serial_expectation() {
        let g = two_hop_chain();
        let cfg = DiffusionConfig::ic_unbounded();
        let s = influence_spread_parallel(&g, &[0], &cfg, 60_000, 4, 7).unwrap();
        assert!((s - 1.75).abs() < 0.02, "spread {s}");
    }

    #[test]
    fn parallel_is_deterministic_given_seed() {
        let g = two_hop_chain();
        let cfg = DiffusionConfig::ic_unbounded();
        let a = influence_spread_parallel(&g, &[0], &cfg, 5_000, 4, 9).unwrap();
        let b = influence_spread_parallel(&g, &[0], &cfg, 5_000, 4, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_is_invariant_to_thread_count() {
        // 1000 trials span four blocks; every thread count must produce
        // the identical estimate because blocks, not threads, own RNGs.
        let g = two_hop_chain();
        let cfg = DiffusionConfig::ic_unbounded();
        let reference = influence_spread_parallel(&g, &[0], &cfg, 1_000, 1, 13).unwrap();
        for n_threads in [2, 3, 4, 64] {
            let s = influence_spread_parallel(&g, &[0], &cfg, 1_000, n_threads, 13).unwrap();
            assert_eq!(s, reference, "n_threads = {n_threads}");
        }
    }

    #[test]
    fn parallel_rejects_bad_input_instead_of_panicking() {
        let g = two_hop_chain();
        let cfg = DiffusionConfig::ic_unbounded();
        assert_eq!(
            influence_spread_parallel(&g, &[0], &cfg, 0, 4, 1),
            Err(SpreadError::ZeroTrials)
        );
        assert_eq!(
            influence_spread_parallel(&g, &[0], &cfg, 10, 0, 1),
            Err(SpreadError::ZeroThreads)
        );
        assert_eq!(
            influence_spread_parallel(&g, &[99], &cfg, 10, 1, 1),
            Err(SpreadError::SeedOutOfRange {
                seed: 99,
                num_nodes: 3
            })
        );
        let msg = SpreadError::SeedOutOfRange {
            seed: 99,
            num_nodes: 3,
        }
        .to_string();
        assert!(msg.contains("99") && msg.contains("3"), "{msg}");
    }

    #[test]
    fn exact_configurations_ignore_trial_and_thread_counts() {
        // The deterministic fast path needs no Monte Carlo, so zero
        // trials is not an error there.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let cfg = DiffusionConfig::ic_with_steps(1);
        assert_eq!(influence_spread_parallel(&g, &[0], &cfg, 0, 0, 1), Ok(2.0));
    }

    #[test]
    fn spread_bounds_hold() {
        let g = two_hop_chain();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = DiffusionConfig::ic_unbounded();
        let s = influence_spread(&g, &[0, 2], &cfg, 500, &mut rng);
        assert!((2.0..=3.0).contains(&s), "spread {s}");
    }

    #[test]
    fn confidence_interval_contains_truth() {
        // E[spread] = 1.75 on the 0.5-weight chain; a 99.9%-z interval from
        // 20k trials should cover it.
        let g = two_hop_chain();
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = DiffusionConfig::ic_unbounded();
        let est = influence_spread_with_ci(&g, &[0], &cfg, 20_000, 3.3, &mut rng);
        let (lo, hi) = est.interval();
        assert!(lo <= 1.75 && 1.75 <= hi, "[{lo}, {hi}] misses 1.75");
        assert!(est.half_width > 0.0 && est.half_width < 0.05);
    }

    #[test]
    fn confidence_interval_shrinks_with_trials() {
        let g = two_hop_chain();
        let cfg = DiffusionConfig::ic_unbounded();
        let mut rng = StdRng::seed_from_u64(12);
        let small = influence_spread_with_ci(&g, &[0], &cfg, 500, 1.96, &mut rng);
        let large = influence_spread_with_ci(&g, &[0], &cfg, 50_000, 1.96, &mut rng);
        assert!(large.half_width < small.half_width / 5.0);
    }

    #[test]
    fn exact_configurations_have_zero_width() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = DiffusionConfig::ic_with_steps(1);
        let est = influence_spread_with_ci(&g, &[0], &cfg, 100, 1.96, &mut rng);
        assert_eq!(est.mean, 2.0);
        assert_eq!(est.half_width, 0.0);
    }

    #[test]
    fn workers_adopt_the_callers_trace_and_results_stay_identical() {
        let g = two_hop_chain();
        let cfg = DiffusionConfig::ic_unbounded();
        let untraced = influence_spread_parallel(&g, &[0], &cfg, 2_000, 4, 17).unwrap();

        let ctx = privim_obs::TraceContext::from_seed(55);
        privim_obs::FlightRecorder::reset();
        privim_obs::FlightRecorder::arm();
        let traced = privim_obs::with_trace(ctx, || {
            influence_spread_parallel(&g, &[0], &cfg, 2_000, 4, 17).unwrap()
        });
        privim_obs::FlightRecorder::disarm();
        assert_eq!(
            traced.to_bits(),
            untraced.to_bits(),
            "trace propagation must not perturb the estimate"
        );
        // Other tests may run spreads concurrently (untraced), so count
        // only events carrying OUR trace: if propagation were broken the
        // workers would have emitted with no trace and none would match.
        let dump = privim_obs::FlightRecorder::dump();
        let adopted = dump
            .iter()
            .filter(|e| e.message == "worker_done" && e.trace_id == ctx.trace_id)
            .count();
        assert!(adopted >= 1, "no worker event carried the caller's trace");
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let g = two_hop_chain();
        let cfg = DiffusionConfig::ic_unbounded();
        let s = influence_spread_parallel(&g, &[0], &cfg, 3, 64, 1).unwrap();
        assert!((1.0..=3.0).contains(&s));
    }
}
