//! Evaluation metrics: top-k seed extraction from model scores, influence
//! spread (via [`crate::spread`]) and the paper's coverage ratio
//! `|V_method| / |V_CELF|`.

use privim_graph::NodeId;

/// Selects the indices of the `k` largest scores (the paper's "top-k nodes
/// are chosen as seed nodes"). Ties break toward the smaller node id so
/// results are deterministic.
pub fn top_k_seeds(scores: &[f64], k: usize) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..scores.len() as NodeId).collect();
    order.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    order.truncate(k.min(scores.len()));
    order
}

/// Coverage ratio in percent: `100 · spread_method / spread_celf`.
pub fn coverage_ratio(method_spread: f64, celf_spread: f64) -> f64 {
    if celf_spread <= 0.0 {
        return 0.0;
    }
    100.0 * method_spread / celf_spread
}

/// Mean and sample standard deviation of repeated measurements, as the
/// paper reports (`mean ± std` over 5 repetitions).
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "mean_std of empty slice");
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() == 1 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_score() {
        let scores = [0.1, 0.9, 0.5, 0.9, 0.2];
        assert_eq!(top_k_seeds(&scores, 3), vec![1, 3, 2]);
        assert_eq!(top_k_seeds(&scores, 0), Vec::<NodeId>::new());
        assert_eq!(top_k_seeds(&scores, 10).len(), 5);
    }

    #[test]
    fn top_k_ties_break_by_id() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(top_k_seeds(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn coverage_ratio_basics() {
        assert_eq!(coverage_ratio(50.0, 100.0), 50.0);
        assert_eq!(coverage_ratio(100.0, 100.0), 100.0);
        assert_eq!(coverage_ratio(10.0, 0.0), 0.0);
    }

    #[test]
    fn mean_std_matches_hand_computation() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        // Sample std of this classic dataset is sqrt(32/7).
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        let (m1, s1) = mean_std(&[3.25]);
        assert_eq!((m1, s1), (3.25, 0.0));
    }
}
