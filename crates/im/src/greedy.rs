//! Seed-selection algorithms: CELF lazy greedy (the paper's ground truth),
//! plus degree and random heuristics used as sanity baselines.
//!
//! Under the paper's evaluation setting (IC, `w = 1`, one step) the spread
//! is an exact monotone submodular coverage function, so CELF returns the
//! classic greedy solution with its `(1 − 1/e)` guarantee — exactly the
//! "ground truth" the paper compares against.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::seq::SliceRandom;
use rand::Rng;

use privim_graph::{Graph, NodeId};

use crate::models::{simulate_cascade, DiffusionConfig};
use crate::spread::{influence_spread_parallel, is_deterministic_one_step, mix_seed, SpreadError};

/// Max-heap entry for CELF's lazy evaluation.
#[derive(Debug, PartialEq)]
struct Candidate {
    gain: f64,
    node: NodeId,
    round: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// CELF lazy greedy for the deterministic one-step coverage objective
/// (`w = 1`, `j = 1`). Exact marginal gains, no simulation needed.
///
/// Returns `(seeds, spread)` where `spread = |S ∪ N_out(S)|`.
pub fn celf_coverage(g: &Graph, k: usize) -> (Vec<NodeId>, f64) {
    let n = g.num_nodes();
    let k = k.min(n);
    let mut covered = vec![false; n];
    let marginal = |v: NodeId, covered: &[bool]| -> f64 {
        let mut gain = usize::from(!covered[v as usize]);
        for &u in g.out_neighbors(v) {
            if !covered[u as usize] && u != v {
                gain += 1;
            }
        }
        gain as f64
    };

    let mut heap: BinaryHeap<Candidate> = g
        .nodes()
        .map(|v| Candidate {
            gain: marginal(v, &covered),
            node: v,
            round: 0,
        })
        .collect();

    let mut seeds = Vec::with_capacity(k);
    let mut spread = 0.0;
    while seeds.len() < k {
        let Some(top) = heap.pop() else { break };
        if top.round == seeds.len() {
            // Gain is current: accept.
            spread += top.gain;
            let v = top.node;
            covered[v as usize] = true;
            for &u in g.out_neighbors(v) {
                covered[u as usize] = true;
            }
            seeds.push(v);
        } else {
            // Stale: re-evaluate lazily (submodularity ⇒ gain only drops).
            let gain = marginal(top.node, &covered);
            heap.push(Candidate {
                gain,
                node: top.node,
                round: seeds.len(),
            });
        }
    }
    (seeds, spread)
}

/// The CELF lazy-greedy skeleton, parameterized over the spread
/// estimator: `estimate(seeds, v)` returns the (estimated) spread of
/// `seeds ∪ {v}`. Both the serial and the multi-threaded Monte-Carlo
/// variants run this exact control flow, so for estimators that agree
/// evaluation-by-evaluation the picked seed sets agree too.
///
/// The stochastic objective is only approximately submodular in its
/// estimates, so lazy evaluations cap at two refreshes per round to bound
/// cost; this matches common CELF practice.
fn celf_lazy<E>(g: &Graph, k: usize, mut estimate: E) -> (Vec<NodeId>, f64)
where
    E: FnMut(&[NodeId], NodeId) -> f64,
{
    let n = g.num_nodes();
    let k = k.min(n);
    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut base = 0.0f64;
    let mut heap: BinaryHeap<Candidate> = g
        .nodes()
        .map(|v| Candidate {
            gain: estimate(&seeds, v),
            node: v,
            round: 0,
        })
        .collect();
    while seeds.len() < k {
        let mut refreshes = 0;
        loop {
            let Some(top) = heap.pop() else {
                return (seeds, base);
            };
            if top.round == seeds.len() || refreshes >= 2 {
                base = estimate(&seeds, top.node).max(base);
                seeds.push(top.node);
                break;
            }
            let gain = (estimate(&seeds, top.node) - base).max(0.0);
            heap.push(Candidate {
                gain,
                node: top.node,
                round: seeds.len(),
            });
            refreshes += 1;
        }
    }
    (seeds, base)
}

/// CELF lazy greedy under an arbitrary diffusion config, with serial
/// Monte Carlo marginal gains (`trials` cascades per evaluation) drawn
/// from the caller's RNG.
pub fn celf_monte_carlo<R: Rng + ?Sized>(
    g: &Graph,
    k: usize,
    config: &DiffusionConfig,
    trials: usize,
    rng: &mut R,
) -> (Vec<NodeId>, f64) {
    if is_deterministic_one_step(g, config) {
        return celf_coverage(g, k);
    }
    let mut scratch: Vec<NodeId> = Vec::with_capacity(k.min(g.num_nodes()) + 1);
    celf_lazy(g, k, |seeds, v| {
        scratch.clear();
        scratch.extend_from_slice(seeds);
        scratch.push(v);
        let total: usize = (0..trials)
            .map(|_| simulate_cascade(g, &scratch, config, rng))
            .sum();
        total as f64 / trials as f64
    })
}

/// [`celf_monte_carlo`] with multi-threaded marginal-gain evaluations:
/// each candidate evaluation runs `trials` cascades through
/// [`influence_spread_parallel`] on `n_threads` threads.
///
/// Evaluation `i` uses the RNG stream derived from `(seed, i)`, and the
/// parallel estimator is invariant to its thread count, so the picked
/// seed set and spread depend only on `(g, k, config, trials, seed)` —
/// `celf_monte_carlo_threaded(.., 1, seed)` and
/// `celf_monte_carlo_threaded(.., 8, seed)` return identical results.
pub fn celf_monte_carlo_threaded(
    g: &Graph,
    k: usize,
    config: &DiffusionConfig,
    trials: usize,
    n_threads: usize,
    seed: u64,
) -> Result<(Vec<NodeId>, f64), SpreadError> {
    if is_deterministic_one_step(g, config) {
        return Ok(celf_coverage(g, k));
    }
    if trials == 0 {
        return Err(SpreadError::ZeroTrials);
    }
    if n_threads == 0 {
        return Err(SpreadError::ZeroThreads);
    }
    let mut scratch: Vec<NodeId> = Vec::with_capacity(k.min(g.num_nodes()) + 1);
    let mut evals: u64 = 0;
    Ok(celf_lazy(g, k, |seeds, v| {
        scratch.clear();
        scratch.extend_from_slice(seeds);
        scratch.push(v);
        evals += 1;
        influence_spread_parallel(
            g,
            &scratch,
            config,
            trials,
            n_threads,
            mix_seed(seed, evals),
        )
        .expect("preconditions validated above; candidate nodes come from the graph")
    }))
}

/// Highest out-degree heuristic.
pub fn degree_heuristic(g: &Graph, k: usize) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.out_degree(v)), v));
    nodes.truncate(k.min(g.num_nodes()));
    nodes
}

/// Uniform random seed set.
pub fn random_seeds<R: Rng + ?Sized>(g: &Graph, k: usize, rng: &mut R) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.shuffle(rng);
    nodes.truncate(k.min(g.num_nodes()));
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::models::deterministic_one_step_coverage;

    /// Two disjoint out-stars with hubs 0 (5 spokes) and 6 (3 spokes),
    /// plus isolated node 10.
    fn two_stars() -> Graph {
        let mut b = GraphBuilder::new(11);
        for i in 1..=5 {
            b.add_edge(0, i, 1.0);
        }
        for i in 7..=9 {
            b.add_edge(6, i, 1.0);
        }
        b.build()
    }

    #[test]
    fn celf_picks_hubs_first() {
        let g = two_stars();
        let (seeds, spread) = celf_coverage(&g, 2);
        assert_eq!(seeds, vec![0, 6]);
        assert_eq!(spread, 10.0);
    }

    #[test]
    fn celf_spread_matches_objective() {
        let g = two_stars();
        for k in 1..=4 {
            let (seeds, spread) = celf_coverage(&g, k);
            assert_eq!(
                spread,
                deterministic_one_step_coverage(&g, &seeds) as f64,
                "k={k}"
            );
        }
    }

    #[test]
    fn celf_is_optimal_on_coverage_toy() {
        // Greedy = optimal here: spread(k=2) must be 10.
        let g = two_stars();
        let (_, spread) = celf_coverage(&g, 2);
        assert_eq!(spread, 10.0);
    }

    #[test]
    fn celf_handles_k_geq_n() {
        let g = two_stars();
        let (seeds, spread) = celf_coverage(&g, 100);
        assert_eq!(seeds.len(), 11);
        assert_eq!(spread, 11.0);
    }

    #[test]
    fn celf_gains_are_monotone_decreasing() {
        let g = two_stars();
        // Spread increments: hub0 (+6), hub6 (+4), then +1 each.
        let (seeds, _) = celf_coverage(&g, 5);
        let mut prev_gain = f64::INFINITY;
        let mut covered_spread = 0.0;
        for i in 0..seeds.len() {
            let s = deterministic_one_step_coverage(&g, &seeds[..=i]) as f64;
            let gain = s - covered_spread;
            assert!(gain <= prev_gain + 1e-9, "gain sequence not decreasing");
            prev_gain = gain;
            covered_spread = s;
        }
    }

    #[test]
    fn monte_carlo_celf_reduces_to_exact_for_unit_weights() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = DiffusionConfig::ic_with_steps(1);
        let (seeds, spread) = celf_monte_carlo(&g, 2, &cfg, 10, &mut rng);
        assert_eq!(seeds, vec![0, 6]);
        assert_eq!(spread, 10.0);
    }

    #[test]
    fn monte_carlo_celf_prefers_strong_hub() {
        // Probabilistic graph: node 0 reaches 4 nodes with p=0.9; node 5
        // reaches 1 node with p=0.1. CELF(k=1) should pick 0.
        let mut b = GraphBuilder::new(7);
        for i in 1..=4 {
            b.add_edge(0, i, 0.9);
        }
        b.add_edge(5, 6, 0.1);
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = DiffusionConfig::ic_unbounded();
        let (seeds, _) = celf_monte_carlo(&g, 1, &cfg, 300, &mut rng);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn threaded_celf_matches_single_threaded_path() {
        // Same (g, k, config, trials, seed): every thread count must pick
        // the identical seed set with the identical spread estimate.
        let mut b = GraphBuilder::new(8);
        for i in 1..=4 {
            b.add_edge(0, i, 0.7);
        }
        b.add_edge(5, 6, 0.4);
        b.add_edge(6, 7, 0.4);
        let g = b.build();
        let cfg = DiffusionConfig::ic_unbounded();
        let (seeds_1, spread_1) = celf_monte_carlo_threaded(&g, 3, &cfg, 600, 1, 17).unwrap();
        for n_threads in [2, 4] {
            let (seeds_n, spread_n) =
                celf_monte_carlo_threaded(&g, 3, &cfg, 600, n_threads, 17).unwrap();
            assert_eq!(seeds_n, seeds_1, "n_threads = {n_threads}");
            assert_eq!(spread_n, spread_1, "n_threads = {n_threads}");
        }
        assert_eq!(seeds_1[0], 0, "the strong hub must come first");
    }

    #[test]
    fn threaded_celf_reduces_to_exact_for_unit_weights() {
        let g = two_stars();
        let cfg = DiffusionConfig::ic_with_steps(1);
        let (seeds, spread) = celf_monte_carlo_threaded(&g, 2, &cfg, 10, 4, 0).unwrap();
        assert_eq!(seeds, vec![0, 6]);
        assert_eq!(spread, 10.0);
    }

    #[test]
    fn threaded_celf_rejects_bad_input() {
        use crate::spread::SpreadError;
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5);
        let g = b.build();
        let cfg = DiffusionConfig::ic_unbounded();
        assert_eq!(
            celf_monte_carlo_threaded(&g, 2, &cfg, 0, 4, 0).unwrap_err(),
            SpreadError::ZeroTrials
        );
        assert_eq!(
            celf_monte_carlo_threaded(&g, 2, &cfg, 10, 0, 0).unwrap_err(),
            SpreadError::ZeroThreads
        );
    }

    #[test]
    fn degree_heuristic_orders_by_out_degree() {
        let g = two_stars();
        assert_eq!(degree_heuristic(&g, 2), vec![0, 6]);
        // Deterministic tiebreak by id among degree-0 nodes.
        let rest = degree_heuristic(&g, 4);
        assert_eq!(&rest[..2], &[0, 6]);
        assert!(rest[2] < rest[3]);
    }

    #[test]
    fn random_seeds_are_distinct_and_in_range() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(2);
        let seeds = random_seeds(&g, 5, &mut rng);
        assert_eq!(seeds.len(), 5);
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), 5);
        assert!(seeds.iter().all(|&s| (s as usize) < g.num_nodes()));
    }
}
