//! Random graph generators.
//!
//! Used to synthesize stand-ins for the paper's SNAP datasets (see
//! DESIGN.md §3): Erdős–Rényi for homogeneous baselines, Barabási–Albert
//! for heavy-tailed degree distributions, Holme–Kim (BA + triad closure)
//! for the combination of heavy tails and high clustering that social
//! networks exhibit, and Watts–Strogatz for small-world rewiring tests.

use rand::seq::SliceRandom;
use rand::Rng;

use privim_graph::{Graph, GraphBuilder, NodeId};

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct undirected edges chosen
/// uniformly (no self-loops). Stored as both directions with weight `w`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, m: usize, w: f64, rng: &mut R) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, 2 * m);
    while chosen.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            b.add_undirected_edge(u, v, w);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m_attach + 1` nodes; each new node attaches to `m_attach` distinct
/// existing nodes with probability proportional to degree.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_attach: usize, w: f64, rng: &mut R) -> Graph {
    holme_kim(n, m_attach, 0.0, w, rng)
}

/// Holme–Kim "powerlaw cluster" graph: Barabási–Albert attachment where
/// each subsequent link after the first closes a triangle with probability
/// `p_triad`, producing both a heavy-tailed degree distribution and
/// realistic clustering. `p_triad = 0` recovers plain BA.
pub fn holme_kim<R: Rng + ?Sized>(
    n: usize,
    m_attach: usize,
    p_triad: f64,
    w: f64,
    rng: &mut R,
) -> Graph {
    let m_attach = m_attach.max(1);
    assert!(n > m_attach, "need n > m_attach");
    assert!(
        (0.0..=1.0).contains(&p_triad),
        "p_triad must be a probability"
    );
    // `endpoint_pool` holds one entry per edge endpoint: sampling uniformly
    // from it is degree-proportional sampling. `adj` mirrors the edge set
    // for O(1) triad steps.
    let mut endpoint_pool: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * m_attach);
    let link = |edges: &mut Vec<(NodeId, NodeId)>,
                adj: &mut Vec<Vec<NodeId>>,
                pool: &mut Vec<NodeId>,
                u: NodeId,
                v: NodeId| {
        edges.push((u, v));
        adj[u as usize].push(v);
        adj[v as usize].push(u);
        pool.push(u);
        pool.push(v);
    };
    let core = m_attach + 1;
    for u in 0..core as NodeId {
        for v in (u + 1)..core as NodeId {
            link(&mut edges, &mut adj, &mut endpoint_pool, u, v);
        }
    }
    let mut picked: Vec<NodeId> = Vec::with_capacity(m_attach);
    for new in core as NodeId..n as NodeId {
        picked.clear();
        let mut last: Option<NodeId> = None;
        let mut attempts = 0usize;
        while picked.len() < m_attach {
            attempts += 1;
            let candidate = if let (Some(prev), true) = (last, rng.gen::<f64>() < p_triad) {
                // Triad step: link to a random neighbor of the previous
                // target, closing a triangle.
                *adj[prev as usize]
                    .choose(rng)
                    .unwrap_or_else(|| endpoint_pool.choose(rng).expect("pool never empty"))
            } else {
                *endpoint_pool.choose(rng).expect("pool never empty")
            };
            if candidate != new && !picked.contains(&candidate) {
                picked.push(candidate);
                last = Some(candidate);
            } else if attempts > 64 * m_attach {
                // Degenerate corner (tiny graphs): fall back to any unused id.
                if let Some(c) = (0..new).find(|c| !picked.contains(c)) {
                    picked.push(c);
                    last = Some(c);
                }
            }
        }
        for &t in &picked {
            link(&mut edges, &mut adj, &mut endpoint_pool, new, t);
        }
    }
    let mut b = GraphBuilder::with_capacity(n, 2 * edges.len());
    for (u, v) in edges {
        b.add_undirected_edge(u, v, w);
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where each node links
/// to its `k/2` clockwise neighbors, with each edge rewired to a uniform
/// target with probability `beta`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    w: f64,
    rng: &mut R,
) -> Graph {
    assert!(k >= 2 && k < n, "need 2 <= k < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let half = k / 2;
    let mut chosen = std::collections::HashSet::new();
    for u in 0..n as NodeId {
        for j in 1..=half as NodeId {
            let mut v = (u + j) % n as NodeId;
            if rng.gen::<f64>() < beta {
                // Rewire to a uniform non-self, non-duplicate target.
                for _ in 0..16 {
                    let cand = rng.gen_range(0..n as NodeId);
                    if cand != u && !chosen.contains(&(u.min(cand), u.max(cand))) {
                        v = cand;
                        break;
                    }
                }
            }
            chosen.insert((u.min(v), u.max(v)));
        }
    }
    let mut b = GraphBuilder::with_capacity(n, 2 * chosen.len());
    for (u, v) in chosen {
        if u != v {
            b.add_undirected_edge(u, v, w);
        }
    }
    b.build()
}

/// Stochastic block model: `sizes[i]` nodes per community, undirected edge
/// probability `p_in` inside a community and `p_out` across communities.
/// Returns the graph plus each node's community label. Used to test the
/// samplers' behavior on strongly clustered graphs — the regime
/// Boundary-Enhanced Sampling targets (small boundary clusters).
pub fn stochastic_block_model<R: Rng + ?Sized>(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    w: f64,
    rng: &mut R,
) -> (Graph, Vec<u32>) {
    assert!(!sizes.is_empty(), "need at least one community");
    assert!(
        (0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out),
        "probabilities"
    );
    let n: usize = sizes.iter().sum();
    let mut community = Vec::with_capacity(n);
    for (c, &size) in sizes.iter().enumerate() {
        community.extend(std::iter::repeat_n(c as u32, size));
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if community[u] == community[v] {
                p_in
            } else {
                p_out
            };
            if rng.gen::<f64>() < p {
                b.add_undirected_edge(u as NodeId, v as NodeId, w);
            }
        }
    }
    (b.build(), community)
}

/// Orients every undirected edge pair of `g` in a single random direction,
/// turning an undirected graph into a directed one with half the directed
/// edge count. Used to synthesize the paper's directed datasets.
pub fn orient_randomly<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges() / 2);
    for (u, v, w) in g.edges() {
        if u < v {
            // Each undirected pair appears twice; orient once.
            if rng.gen::<bool>() {
                b.add_edge(u, v, w);
            } else {
                b.add_edge(v, u, w);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::ops::weakly_connected_components;
    use privim_graph::stats::graph_stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_has_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(100, 250, 1.0, &mut rng);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 500); // both directions
    }

    #[test]
    fn erdos_renyi_caps_at_complete_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi(5, 1000, 1.0, &mut rng);
        assert_eq!(g.num_edges(), 20); // K5 both directions
    }

    #[test]
    fn barabasi_albert_degree_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(2000, 3, 1.0, &mut rng);
        let s = graph_stats(&g);
        // Average degree ≈ 2m; max degree far above average (hubs).
        assert!((s.avg_degree - 6.0).abs() < 1.0, "avg {}", s.avg_degree);
        assert!(
            s.max_out_degree > 40,
            "max degree {} lacks a hub",
            s.max_out_degree
        );
    }

    #[test]
    fn barabasi_albert_is_connected() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(500, 2, 1.0, &mut rng);
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn holme_kim_increases_clustering_over_ba() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let ba = barabasi_albert(1500, 3, 1.0, &mut r1);
        let hk = holme_kim(1500, 3, 0.8, 1.0, &mut r2);
        let c_ba = graph_stats(&ba).avg_clustering;
        let c_hk = graph_stats(&hk).avg_clustering;
        assert!(c_hk > c_ba * 1.5, "HK clustering {c_hk} vs BA {c_ba}");
    }

    #[test]
    fn watts_strogatz_zero_beta_is_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = watts_strogatz(20, 4, 0.0, 1.0, &mut rng);
        // Every node has degree 4 (2 out each side, stored undirected).
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 4, "node {v}");
        }
    }

    #[test]
    fn watts_strogatz_rewiring_keeps_edge_budget_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = watts_strogatz(200, 6, 0.3, 1.0, &mut rng);
        let expected = 200 * 3 * 2;
        let got = g.num_edges();
        assert!(got as f64 > expected as f64 * 0.9, "{got} vs {expected}");
        assert!(got <= expected, "{got} vs {expected}");
    }

    #[test]
    fn sbm_respects_community_structure() {
        let mut rng = StdRng::seed_from_u64(21);
        let (g, labels) = stochastic_block_model(&[60, 60], 0.3, 0.01, 1.0, &mut rng);
        assert_eq!(g.num_nodes(), 120);
        assert_eq!(labels.iter().filter(|&&c| c == 0).count(), 60);
        let (mut within, mut across) = (0usize, 0usize);
        for (u, v, _) in g.edges() {
            if labels[u as usize] == labels[v as usize] {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > 10 * across, "within {within} across {across}");
    }

    #[test]
    fn sbm_extreme_probabilities() {
        let mut rng = StdRng::seed_from_u64(22);
        let (g, _) = stochastic_block_model(&[5, 5], 1.0, 0.0, 1.0, &mut rng);
        // Two disjoint 5-cliques: 2 * 5*4/2 undirected = 40 directed edges.
        assert_eq!(g.num_edges(), 40);
        let (empty, _) = stochastic_block_model(&[4], 0.0, 0.0, 1.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
    }

    #[test]
    fn orient_randomly_halves_edges() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = erdos_renyi(50, 100, 1.0, &mut rng);
        let d = orient_randomly(&g, &mut rng);
        assert_eq!(d.num_edges(), 100);
        assert_eq!(d.num_nodes(), 50);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g1 = holme_kim(300, 3, 0.5, 1.0, &mut StdRng::seed_from_u64(9));
        let g2 = holme_kim(300, 3, 0.5, 1.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
        let g3 = holme_kim(300, 3, 0.5, 1.0, &mut StdRng::seed_from_u64(10));
        assert_ne!(g1, g3);
    }

    #[test]
    fn edge_weights_are_propagated() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = barabasi_albert(50, 2, 0.25, &mut rng);
        assert!(g.edges().all(|(_, _, w)| w == 0.25));
    }
}
