//! Train/test node splits.
//!
//! The paper splits nodes 50/50 at random; training samples subgraphs
//! rooted at training nodes, and evaluation measures influence spread of
//! seeds selected on the full graph.

use rand::seq::SliceRandom;
use rand::Rng;

use privim_graph::{Graph, NodeId};

/// A random partition of the node set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSplit {
    /// Training node ids.
    pub train: Vec<NodeId>,
    /// Held-out node ids.
    pub test: Vec<NodeId>,
}

impl NodeSplit {
    /// Splits `g`'s nodes with `train_fraction` going to the training set,
    /// uniformly at random. The paper uses `0.5`.
    pub fn random<R: Rng + ?Sized>(g: &Graph, train_fraction: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train fraction must be a probability"
        );
        let mut nodes: Vec<NodeId> = g.nodes().collect();
        nodes.shuffle(rng);
        let cut = (nodes.len() as f64 * train_fraction).round() as usize;
        let test = nodes.split_off(cut);
        NodeSplit { train: nodes, test }
    }

    /// Number of training nodes (`|V_train|`, the δ denominator in the
    /// paper's privacy parameter choice `δ < 1/|V_train|`).
    pub fn num_train(&self) -> usize {
        self.train.len()
    }

    /// The paper's privacy δ for this split: `1 / (|V_train| + 1)`,
    /// satisfying `δ < 1/|V_train|`.
    pub fn delta(&self) -> f64 {
        1.0 / (self.num_train() as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph(n: usize) -> Graph {
        Graph::empty(n)
    }

    #[test]
    fn split_is_a_partition() {
        let g = graph(101);
        let mut rng = StdRng::seed_from_u64(1);
        let s = NodeSplit::random(&g, 0.5, &mut rng);
        assert_eq!(s.train.len() + s.test.len(), 101);
        let mut all: Vec<NodeId> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..101).collect::<Vec<_>>());
    }

    #[test]
    fn fraction_controls_sizes() {
        let g = graph(100);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(NodeSplit::random(&g, 0.5, &mut rng).num_train(), 50);
        assert_eq!(NodeSplit::random(&g, 0.0, &mut rng).num_train(), 0);
        assert_eq!(NodeSplit::random(&g, 1.0, &mut rng).test.len(), 0);
    }

    #[test]
    fn delta_is_below_inverse_train_count() {
        let g = graph(100);
        let mut rng = StdRng::seed_from_u64(3);
        let s = NodeSplit::random(&g, 0.5, &mut rng);
        assert!(s.delta() < 1.0 / s.num_train() as f64);
        assert!(s.delta() > 0.0);
    }

    #[test]
    fn split_is_random_but_seeded() {
        let g = graph(64);
        let a = NodeSplit::random(&g, 0.5, &mut StdRng::seed_from_u64(4));
        let b = NodeSplit::random(&g, 0.5, &mut StdRng::seed_from_u64(4));
        let c = NodeSplit::random(&g, 0.5, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    /// An RNG that always returns zero. Any uniform index sampler maps
    /// zero entropy to the range's low bound, so the shuffle's swap
    /// target is always index 0 — which makes the exact permutation a
    /// function of the shuffle contract (descending Fisher–Yates)
    /// alone, independent of the generator algorithm behind `StdRng`.
    struct ZeroRng;

    impl rand::RngCore for ZeroRng {
        fn next_u32(&mut self) -> u32 {
            0
        }

        fn next_u64(&mut self) -> u64 {
            0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            dest.fill(0);
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
            dest.fill(0);
            Ok(())
        }
    }

    /// Golden fixture: the exact partition for a fixed graph and a
    /// fixed RNG stream. Ten nodes shuffled with every swap target 0
    /// end as `[1..9, 0]`; a 0.6 fraction cuts after six. Checkpoint
    /// split provenance replays splits by re-drawing them, so any
    /// change to this mapping silently breaks membership-audit ground
    /// truth — this test makes such a change loud.
    #[test]
    fn golden_fixture_pins_the_exact_partition() {
        let g = graph(10);
        let s = NodeSplit::random(&g, 0.6, &mut ZeroRng);
        assert_eq!(s.train, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(s.test, vec![7, 8, 9, 0]);
    }

    /// The δ < 1/|V_train| contract must hold for every seed and every
    /// fraction that yields a nonempty training set, not just the
    /// paper's 0.5.
    #[test]
    fn delta_is_below_inverse_train_count_for_all_seeds_and_fractions() {
        for seed in 0..40 {
            for fraction in [0.1, 0.25, 0.5, 0.75, 0.9] {
                let n = 10 + (seed as usize % 7) * 13;
                let g = graph(n);
                let mut rng = StdRng::seed_from_u64(seed);
                let s = NodeSplit::random(&g, fraction, &mut rng);
                assert_eq!(s.train.len() + s.test.len(), n);
                if s.num_train() > 0 {
                    assert!(
                        s.delta() < 1.0 / s.num_train() as f64,
                        "delta contract violated: n={n} seed={seed} fraction={fraction}"
                    );
                }
                assert!(s.delta() > 0.0);
            }
        }
    }
}
