//! The paper's seven evaluation datasets, synthesized to Table I.
//!
//! The real SNAP datasets are not redistributable inside this repository,
//! so each is replaced by a synthetic graph matched on the statistics the
//! PrivIM algorithms actually depend on: node count, directedness, average
//! degree, a heavy-tailed degree distribution and social-network
//! clustering (see DESIGN.md §3). Every generator accepts a `scale` factor
//! so the benchmark harness can run laptop-sized replicas with the same
//! shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use privim_graph::{Graph, GraphStats};

use privim_graph::ops::shuffle_labels;

use crate::generators::{holme_kim, orient_randomly};

/// One of the paper's evaluation datasets (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Email-Eu-core: 1K nodes, 25.6K directed edges.
    Email,
    /// Bitcoin-OTC trust network: 5.9K nodes, 35.6K directed edges.
    Bitcoin,
    /// LastFM Asia: 7.6K nodes, 27.8K undirected edges.
    LastFm,
    /// HepPh citation collaboration: 12K nodes, 118.5K undirected edges.
    HepPh,
    /// Facebook pages: 22.5K nodes, 171K undirected edges.
    Facebook,
    /// Gowalla check-ins: 196K nodes, 950.3K undirected edges.
    Gowalla,
    /// Friendster: 65.6M nodes, 1.8B undirected edges (processed in
    /// partitions, as the paper does for memory reasons).
    Friendster,
}

/// Static description of a dataset: the Table I row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Display name.
    pub name: &'static str,
    /// Node count `|V|` at scale 1.0.
    pub num_nodes: usize,
    /// Average degree as Table I reports it (directed edge count / |V|).
    pub avg_degree: f64,
    /// Whether the original network is directed.
    pub directed: bool,
}

impl Dataset {
    /// The six standard datasets (Friendster is handled separately via
    /// [`Dataset::generate_partitions`]).
    pub const SIX: [Dataset; 6] = [
        Dataset::Email,
        Dataset::Bitcoin,
        Dataset::LastFm,
        Dataset::HepPh,
        Dataset::Facebook,
        Dataset::Gowalla,
    ];

    /// Table I row for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Email => DatasetSpec {
                name: "Email",
                num_nodes: 1_000,
                avg_degree: 25.44,
                directed: true,
            },
            Dataset::Bitcoin => DatasetSpec {
                name: "Bitcoin",
                num_nodes: 5_900,
                avg_degree: 6.05,
                directed: true,
            },
            Dataset::LastFm => DatasetSpec {
                name: "LastFM",
                num_nodes: 7_600,
                avg_degree: 7.29,
                directed: false,
            },
            Dataset::HepPh => DatasetSpec {
                name: "HepPh",
                num_nodes: 12_000,
                avg_degree: 19.74,
                directed: false,
            },
            Dataset::Facebook => DatasetSpec {
                name: "Facebook",
                num_nodes: 22_500,
                avg_degree: 15.22,
                directed: false,
            },
            Dataset::Gowalla => DatasetSpec {
                name: "Gowalla",
                num_nodes: 196_000,
                avg_degree: 9.67,
                directed: false,
            },
            Dataset::Friendster => DatasetSpec {
                name: "Friendster",
                num_nodes: 65_600_000,
                avg_degree: 55.06,
                directed: false,
            },
        }
    }

    /// Triad-closure probability used per dataset (social networks cluster
    /// more than citation networks).
    fn triad_probability(self) -> f64 {
        match self {
            Dataset::Email | Dataset::Facebook | Dataset::Friendster => 0.5,
            Dataset::LastFm | Dataset::Gowalla => 0.35,
            Dataset::HepPh => 0.6, // collaboration cliques
            Dataset::Bitcoin => 0.2,
        }
    }

    /// Generates the dataset at `scale ∈ (0, 1]` of its Table I node count
    /// (minimum 200 nodes), deterministically from `seed`. Edge weights are
    /// 1.0 per the paper's evaluation setting.
    ///
    /// # Panics
    /// If called on [`Dataset::Friendster`] with `scale` implying more than
    /// 2M nodes — use [`Dataset::generate_partitions`] for that regime.
    pub fn generate(self, scale: f64, seed: u64) -> Graph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let spec = self.spec();
        let n = ((spec.num_nodes as f64 * scale) as usize).max(200);
        assert!(
            n <= 2_000_000,
            "{} at scale {scale} is too large for single-graph generation; \
             use generate_partitions",
            spec.name
        );
        let mut rng = StdRng::seed_from_u64(seed ^ dataset_salt(self));
        let g = if spec.directed {
            // Directed average degree d means |E| = n·d directed edges;
            // generate an undirected HK graph with m = d per node, then
            // orient each pair once, halving to n·d.
            let m = spec.avg_degree.round() as usize;
            let und = holme_kim(n, m.max(1), self.triad_probability(), 1.0, &mut rng);
            orient_randomly(&und, &mut rng)
        } else {
            // Undirected avg degree d counts both directions: m = d/2.
            let m = (spec.avg_degree / 2.0).round() as usize;
            holme_kim(n, m.max(1), self.triad_probability(), 1.0, &mut rng)
        };
        // Destroy the id/degree correlation preferential attachment leaves
        // behind (old nodes = hubs), so id-based tie-breaks carry no signal.
        shuffle_labels(&g, &mut rng)
    }

    /// Generates a partitioned Friendster-like dataset: `parts` disjoint
    /// graphs of `nodes_per_part` nodes each, matching the paper's
    /// partition-then-process strategy for memory-bounded training.
    pub fn generate_partitions(self, nodes_per_part: usize, parts: usize, seed: u64) -> Vec<Graph> {
        let spec = self.spec();
        let m = (spec.avg_degree / 2.0).round() as usize;
        let mut rng = StdRng::seed_from_u64(seed ^ dataset_salt(self));
        (0..parts)
            .map(|p| {
                let mut part_rng = StdRng::seed_from_u64(rng.gen::<u64>() ^ p as u64);
                let g = holme_kim(
                    nodes_per_part.max(200),
                    m.max(1),
                    self.triad_probability(),
                    1.0,
                    &mut part_rng,
                );
                shuffle_labels(&g, &mut part_rng)
            })
            .collect()
    }

    /// Measured statistics of a generated replica (for Table I validation).
    pub fn replica_stats(self, scale: f64, seed: u64) -> GraphStats {
        privim_graph::stats::graph_stats(&self.generate(scale, seed))
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

fn dataset_salt(d: Dataset) -> u64 {
    let salt: u64 = match d {
        Dataset::Email => 0x01,
        Dataset::Bitcoin => 0x02,
        Dataset::LastFm => 0x03,
        Dataset::HepPh => 0x04,
        Dataset::Facebook => 0x05,
        Dataset::Gowalla => 0x06,
        Dataset::Friendster => 0x07,
    };
    salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::stats::graph_stats;

    #[test]
    fn email_replica_matches_table1_shape() {
        let g = Dataset::Email.generate(1.0, 7);
        let s = graph_stats(&g);
        assert_eq!(s.num_nodes, 1_000);
        // Directed avg degree within 15% of 25.44.
        assert!(
            (s.avg_degree - 25.44).abs() / 25.44 < 0.15,
            "avg {}",
            s.avg_degree
        );
    }

    #[test]
    fn undirected_replicas_match_avg_degree() {
        for d in [Dataset::LastFm, Dataset::HepPh] {
            let g = d.generate(0.5, 3);
            let s = graph_stats(&g);
            let want = d.spec().avg_degree;
            assert!(
                (s.avg_degree - want).abs() / want < 0.2,
                "{d}: avg {} want {want}",
                s.avg_degree
            );
            // Undirected storage: every edge has its reverse.
            for (u, v, _) in g.edges().take(50) {
                assert!(g.out_neighbors(v).contains(&u), "{d}: missing reverse edge");
            }
        }
    }

    #[test]
    fn scaling_shrinks_node_count_not_degree() {
        let full = Dataset::Bitcoin.generate(1.0, 1);
        let half = Dataset::Bitcoin.generate(0.5, 1);
        assert_eq!(full.num_nodes(), 5_900);
        assert_eq!(half.num_nodes(), 2_950);
        let d_full = graph_stats(&full).avg_degree;
        let d_half = graph_stats(&half).avg_degree;
        assert!(
            (d_full - d_half).abs() / d_full < 0.1,
            "{d_full} vs {d_half}"
        );
    }

    #[test]
    fn minimum_size_floor_applies() {
        let g = Dataset::Email.generate(0.01, 1);
        assert_eq!(g.num_nodes(), 200);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = Dataset::LastFm.generate(0.05, 11);
        let b = Dataset::LastFm.generate(0.05, 11);
        let c = Dataset::LastFm.generate(0.05, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn datasets_differ_from_each_other() {
        // Same seed, different salt.
        let a = Dataset::LastFm.generate(0.05, 5);
        let b = Dataset::Bitcoin.generate(0.05, 5);
        assert_ne!(a, b);
    }

    #[test]
    fn friendster_partitions_are_disjoint_graphs() {
        let parts = Dataset::Friendster.generate_partitions(300, 4, 2);
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert_eq!(p.num_nodes(), 300);
            assert!(p.num_edges() > 0);
        }
        assert_ne!(parts[0], parts[1]);
    }

    #[test]
    #[should_panic(expected = "generate_partitions")]
    fn friendster_full_scale_is_rejected() {
        Dataset::Friendster.generate(1.0, 0);
    }

    #[test]
    fn replicas_have_social_clustering() {
        let s = Dataset::Facebook.replica_stats(0.05, 9);
        assert!(
            s.avg_clustering > 0.05,
            "clustering {} too low",
            s.avg_clustering
        );
        let hubby = Dataset::Email.replica_stats(1.0, 9);
        assert!(
            hubby.max_in_degree > 3 * (hubby.avg_degree as usize),
            "no hubs"
        );
    }

    #[test]
    fn all_weights_are_unit() {
        let g = Dataset::Bitcoin.generate(0.1, 4);
        assert!(g.edges().all(|(_, _, w)| w == 1.0));
    }

    #[test]
    fn display_names_match_paper() {
        let names: Vec<&str> = Dataset::SIX.iter().map(|d| d.spec().name).collect();
        assert_eq!(
            names,
            ["Email", "Bitcoin", "LastFM", "HepPh", "Facebook", "Gowalla"]
        );
    }
}
