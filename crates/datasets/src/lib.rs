//! Synthetic datasets calibrated to the PrivIM paper's Table I.
//!
//! - [`generators`] — Erdős–Rényi, Barabási–Albert, Holme–Kim and
//!   Watts–Strogatz random graphs, plus random orientation.
//! - [`paper`] — the seven named evaluation datasets (Email, Bitcoin,
//!   LastFM, HepPh, Facebook, Gowalla, Friendster), each generated to its
//!   Table I statistics at a configurable scale.
//! - [`split`] — the 50/50 train/test node split and the derived privacy δ.
//!
//! # Example
//!
//! ```
//! use privim_datasets::paper::Dataset;
//! use privim_graph::stats::graph_stats;
//!
//! let g = Dataset::Email.generate(0.3, 42);
//! let s = graph_stats(&g);
//! assert_eq!(s.num_nodes, 300);
//! assert!(s.avg_degree > 20.0); // Email is dense (Table I: 25.44)
//! ```

pub mod generators;
pub mod paper;
pub mod split;

pub use generators::{
    barabasi_albert, erdos_renyi, holme_kim, orient_randomly, stochastic_block_model,
    watts_strogatz,
};
pub use paper::{Dataset, DatasetSpec};
pub use split::NodeSplit;
