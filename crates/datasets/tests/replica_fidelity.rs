//! Replica-fidelity tests: every generated dataset must match its Table I
//! row on the statistics the PrivIM algorithms depend on, at multiple
//! scales and seeds.

use privim_datasets::paper::Dataset;
use privim_graph::ops::weakly_connected_components;
use privim_graph::stats::graph_stats;

#[test]
fn all_six_datasets_match_their_average_degree() {
    for dataset in Dataset::SIX {
        let spec = dataset.spec();
        // A mid-size replica keeps generation fast while large enough for
        // the degree statistic to concentrate.
        let scale = (600.0 / spec.num_nodes as f64).min(1.0);
        let s = graph_stats(&dataset.generate(scale, 11));
        let rel = (s.avg_degree - spec.avg_degree).abs() / spec.avg_degree;
        assert!(
            rel < 0.2,
            "{dataset}: avg degree {} vs spec {} (rel err {rel:.2})",
            s.avg_degree,
            spec.avg_degree
        );
    }
}

#[test]
fn directedness_matches_spec() {
    for dataset in Dataset::SIX {
        let g = dataset.generate(0.05, 3);
        let spec = dataset.spec();
        // Undirected datasets store both directions: every edge must have
        // its reverse. Directed replicas must have at least some
        // unreciprocated edges.
        let mut reciprocated = 0usize;
        let mut total = 0usize;
        for (u, v, _) in g.edges() {
            total += 1;
            if g.has_edge(v, u) {
                reciprocated += 1;
            }
        }
        if spec.directed {
            assert!(
                reciprocated < total / 2,
                "{dataset}: directed replica looks symmetric ({reciprocated}/{total})"
            );
        } else {
            assert_eq!(
                reciprocated, total,
                "{dataset}: undirected replica broke symmetry"
            );
        }
    }
}

#[test]
fn replicas_are_dominated_by_one_component() {
    // Holme–Kim attachment graphs are connected before orientation; the
    // directed variants stay weakly connected.
    for dataset in [Dataset::Email, Dataset::LastFm, Dataset::Gowalla] {
        let g = dataset.generate(0.05, 7);
        let (labels, count) = weakly_connected_components(&g);
        let mut sizes = vec![0usize; count];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        let giant = sizes.iter().copied().max().unwrap();
        assert!(
            giant as f64 >= 0.99 * g.num_nodes() as f64,
            "{dataset}: giant component {giant}/{}",
            g.num_nodes()
        );
    }
}

#[test]
fn degree_distributions_are_heavy_tailed() {
    for dataset in [Dataset::LastFm, Dataset::Facebook, Dataset::Gowalla] {
        let g = dataset.generate(0.08, 5);
        let s = graph_stats(&g);
        // Heavy tail: the max degree is many multiples of the average.
        assert!(
            s.max_in_degree as f64 > 4.0 * s.avg_degree,
            "{dataset}: max {} vs avg {:.1}",
            s.max_in_degree,
            s.avg_degree
        );
    }
}

#[test]
fn scales_and_seeds_are_independent_axes() {
    let a = Dataset::HepPh.generate(0.03, 1);
    let b = Dataset::HepPh.generate(0.03, 2);
    let c = Dataset::HepPh.generate(0.06, 1);
    assert_eq!(a.num_nodes(), b.num_nodes());
    assert_ne!(a, b, "different seeds, same size");
    assert_eq!(c.num_nodes(), 2 * a.num_nodes());
}

#[test]
fn friendster_partitions_are_independent_and_uniform() {
    let parts = Dataset::Friendster.generate_partitions(250, 3, 9);
    assert_eq!(parts.len(), 3);
    for p in &parts {
        assert_eq!(p.num_nodes(), 250);
        let s = graph_stats(p);
        let spec = Dataset::Friendster.spec();
        // Small partitions saturate (250 nodes cannot host degree 55
        // without being half-complete); just require density in a sane band.
        assert!(s.avg_degree > 0.5 * spec.avg_degree, "{}", s.avg_degree);
    }
    assert_ne!(parts[0], parts[1]);
    assert_ne!(parts[1], parts[2]);
}
